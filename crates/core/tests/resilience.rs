//! Fault-tolerance tests: execution deadlines, per-function circuit
//! breakers, graceful drain, and the deterministic fault-injection chaos
//! harness.

use sledge_core::{BreakerConfig, FaultPlan, FunctionConfig, Outcome, Runtime, RuntimeConfig};
use sledge_guestc::dsl::*;
use sledge_guestc::{FuncBuilder, ModuleBuilder, Scalar};
use sledge_wasm::module::Module;
use sledge_wasm::types::ValType;
use std::io::{Read, Write};
use std::time::{Duration, Instant};

mod guests {
    use super::*;

    /// Echo the request body.
    pub fn echo() -> Module {
        let mut mb = ModuleBuilder::new("echo");
        mb.memory(2, Some(64));
        let req_len = mb.import_func("env", "request_len", &[], Some(ValType::I32));
        let req_read = mb.import_func(
            "env",
            "request_read",
            &[ValType::I32, ValType::I32, ValType::I32],
            Some(ValType::I32),
        );
        let resp_write = mb.import_func(
            "env",
            "response_write",
            &[ValType::I32, ValType::I32],
            Some(ValType::I32),
        );
        let mut f = FuncBuilder::new(&[], Some(ValType::I32));
        let n = f.local(ValType::I32);
        f.extend([
            set(n, call(req_len, vec![])),
            exec(call(req_read, vec![i32c(0), local(n), i32c(0)])),
            exec(call(resp_write, vec![i32c(0), local(n)])),
            ret(Some(i32c(0))),
        ]);
        let main = mb.add_func("main", f);
        mb.export_func(main, "main");
        mb.build().unwrap()
    }

    /// Run forever (runaway guest).
    pub fn infinite() -> Module {
        let mut mb = ModuleBuilder::new("infinite");
        mb.memory(1, Some(1));
        let mut f = FuncBuilder::new(&[], Some(ValType::I32));
        let i = f.local(ValType::I32);
        f.extend([
            while_(i32c(1), vec![set(i, add(local(i), i32c(1)))]),
            ret(Some(local(i))),
        ]);
        let main = mb.add_func("main", f);
        mb.export_func(main, "main");
        mb.build().unwrap()
    }

    /// Spin for `iters` (first 4 body bytes, LE), then respond "done".
    pub fn spin() -> Module {
        let mut mb = ModuleBuilder::new("spin");
        mb.memory(1, Some(1));
        let req_read = mb.import_func(
            "env",
            "request_read",
            &[ValType::I32, ValType::I32, ValType::I32],
            Some(ValType::I32),
        );
        let resp_write = mb.import_func(
            "env",
            "response_write",
            &[ValType::I32, ValType::I32],
            Some(ValType::I32),
        );
        let mut f = FuncBuilder::new(&[], Some(ValType::I32));
        let iters = f.local(ValType::I32);
        let i = f.local(ValType::I32);
        let acc = f.local(ValType::I32);
        f.extend([
            exec(call(req_read, vec![i32c(0), i32c(4), i32c(0)])),
            set(iters, load(Scalar::I32, i32c(0), 0)),
            for_loop(
                i,
                i32c(0),
                lt_u(local(i), local(iters)),
                1,
                vec![set(acc, add(mul(local(acc), i32c(31)), local(i)))],
            ),
            store(Scalar::I32, i32c(8), 0, local(acc)),
            store(Scalar::U8, i32c(16), 0, i32c('d' as i32)),
            exec(call(resp_write, vec![i32c(16), i32c(1)])),
            ret(Some(i32c(0))),
        ]);
        let main = mb.add_func("main", f);
        mb.export_func(main, "main");
        mb.build().unwrap()
    }

    /// Block on emulated async I/O for N microseconds (first 4 body bytes).
    pub fn io_sleeper() -> Module {
        let mut mb = ModuleBuilder::new("sleeper");
        mb.memory(1, Some(1));
        let req_read = mb.import_func(
            "env",
            "request_read",
            &[ValType::I32, ValType::I32, ValType::I32],
            Some(ValType::I32),
        );
        let io_delay = mb.import_func("env", "io_delay", &[ValType::I32], Some(ValType::I32));
        let resp_write = mb.import_func(
            "env",
            "response_write",
            &[ValType::I32, ValType::I32],
            Some(ValType::I32),
        );
        let mut f = FuncBuilder::new(&[], Some(ValType::I32));
        f.extend([
            exec(call(req_read, vec![i32c(0), i32c(4), i32c(0)])),
            exec(call(io_delay, vec![load(Scalar::I32, i32c(0), 0)])),
            store(Scalar::U8, i32c(16), 0, i32c('w' as i32)),
            exec(call(resp_write, vec![i32c(16), i32c(1)])),
            ret(Some(i32c(0))),
        ]);
        let main = mb.add_func("main", f);
        mb.export_func(main, "main");
        mb.build().unwrap()
    }

    /// Trap (division by zero) iff the first body byte is 1, else reply "ok".
    /// Gives tests input-controlled failures for the breaker lifecycle.
    pub fn picky() -> Module {
        let mut mb = ModuleBuilder::new("picky");
        mb.memory(1, Some(1));
        let req_read = mb.import_func(
            "env",
            "request_read",
            &[ValType::I32, ValType::I32, ValType::I32],
            Some(ValType::I32),
        );
        let resp_write = mb.import_func(
            "env",
            "response_write",
            &[ValType::I32, ValType::I32],
            Some(ValType::I32),
        );
        let mut f = FuncBuilder::new(&[], Some(ValType::I32));
        f.extend([
            exec(call(req_read, vec![i32c(0), i32c(1), i32c(0)])),
            if_(
                eq(load(Scalar::U8, i32c(0), 0), i32c(1)),
                vec![store(Scalar::I32, i32c(8), 0, div(i32c(1), i32c(0)))],
            ),
            store(Scalar::U8, i32c(16), 0, i32c('o' as i32)),
            store(Scalar::U8, i32c(17), 0, i32c('k' as i32)),
            exec(call(resp_write, vec![i32c(16), i32c(2)])),
            ret(Some(i32c(0))),
        ]);
        let main = mb.add_func("main", f);
        mb.export_func(main, "main");
        mb.build().unwrap()
    }

    /// A module whose data segment lands outside its one-page memory, so
    /// registration succeeds but per-request instantiation fails.
    pub fn bad_instantiation() -> Module {
        let mut mb = ModuleBuilder::new("bad");
        mb.memory(1, Some(1));
        mb.data(65_534, vec![0xAA; 8]);
        let mut f = FuncBuilder::new(&[], Some(ValType::I32));
        f.push(ret(Some(i32c(0))));
        let main = mb.add_func("main", f);
        mb.export_func(main, "main");
        mb.build().unwrap()
    }
}

fn kind(outcome: &Outcome) -> &'static str {
    match outcome {
        Outcome::Success(_) => "success",
        Outcome::Trapped(_) => "trapped",
        Outcome::Rejected(_) => "rejected",
        Outcome::TimedOut => "timed_out",
        Outcome::CircuitOpen { .. } => "circuit_open",
        Outcome::Throttled { .. } => "throttled",
    }
}

// ---------------------------------------------------------------------------
// Deadlines
// ---------------------------------------------------------------------------

#[test]
fn deadline_kills_runaway_guest() {
    let rt = Runtime::new(RuntimeConfig {
        workers: 1,
        quantum: Duration::from_millis(2),
        quantum_fuel: Some(200_000),
        deadline: Some(Duration::from_millis(100)),
        ..Default::default()
    });
    let inf = rt
        .register_module(FunctionConfig::new("infinite"), &guests::infinite())
        .unwrap();
    let start = Instant::now();
    let done = rt
        .invoke(inf, Vec::new())
        .wait_timeout(Duration::from_secs(10))
        .expect("runaway guest must still complete (as TimedOut)");
    assert!(
        matches!(done.outcome, Outcome::TimedOut),
        "{:?}",
        done.outcome
    );
    assert!(
        start.elapsed() < Duration::from_secs(2),
        "deadline fired far too late: {:?}",
        start.elapsed()
    );
    assert_eq!(rt.stats().timed_out, 1);
    assert_eq!(rt.function_stats(inf).unwrap().timed_out, 1);
    rt.shutdown();
}

#[test]
fn per_function_deadline_overrides_runtime_default() {
    // Generous runtime-wide deadline, tight per-function override.
    let rt = Runtime::new(RuntimeConfig {
        workers: 2,
        quantum: Duration::from_millis(2),
        quantum_fuel: Some(200_000),
        deadline: Some(Duration::from_secs(30)),
        ..Default::default()
    });
    let mut cfg = FunctionConfig::new("infinite");
    cfg.deadline = Some(Duration::from_millis(80));
    let inf = rt.register_module(cfg, &guests::infinite()).unwrap();
    let echo = rt
        .register_module(FunctionConfig::new("echo"), &guests::echo())
        .unwrap();
    let start = Instant::now();
    let done = rt.invoke(inf, Vec::new()).wait().unwrap();
    assert!(
        matches!(done.outcome, Outcome::TimedOut),
        "{:?}",
        done.outcome
    );
    assert!(start.elapsed() < Duration::from_secs(2));
    // The sibling function is untouched by the override.
    let ok = rt.invoke(echo, &b"hi"[..]).wait().unwrap();
    assert!(matches!(ok.outcome, Outcome::Success(ref b) if b == b"hi"));
    rt.shutdown();
}

#[test]
fn deadline_applies_to_parked_io() {
    // A guest sleeping 10 s on emulated I/O with a 100 ms deadline must be
    // killed at the deadline, not when the I/O would have completed.
    let rt = Runtime::new(RuntimeConfig {
        workers: 1,
        quantum: Duration::from_millis(2),
        quantum_fuel: Some(200_000),
        deadline: Some(Duration::from_millis(100)),
        ..Default::default()
    });
    let sleeper = rt
        .register_module(FunctionConfig::new("sleeper"), &guests::io_sleeper())
        .unwrap();
    let start = Instant::now();
    let done = rt
        .invoke(sleeper, 10_000_000u32.to_le_bytes().to_vec())
        .wait()
        .unwrap();
    assert!(
        matches!(done.outcome, Outcome::TimedOut),
        "{:?}",
        done.outcome
    );
    assert!(
        start.elapsed() < Duration::from_secs(2),
        "parked sandbox overslept its deadline: {:?}",
        start.elapsed()
    );
    rt.shutdown();
}

#[test]
fn http_deadline_maps_to_504() {
    let rt = Runtime::with_http(
        RuntimeConfig {
            workers: 1,
            quantum: Duration::from_millis(2),
            quantum_fuel: Some(200_000),
            deadline: Some(Duration::from_millis(100)),
            ..Default::default()
        },
        "127.0.0.1:0".parse().unwrap(),
    )
    .unwrap();
    let _ = rt
        .register_module(FunctionConfig::new("infinite"), &guests::infinite())
        .unwrap();
    let addr = rt.http_addr().unwrap();
    let mut s = std::net::TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s.write_all(b"POST /infinite HTTP/1.1\r\nContent-Length: 0\r\nConnection: close\r\n\r\n")
        .unwrap();
    let mut resp = Vec::new();
    s.read_to_end(&mut resp).unwrap();
    let text = String::from_utf8(resp).unwrap();
    assert!(text.starts_with("HTTP/1.1 504"), "{text}");
    rt.shutdown();
}

// ---------------------------------------------------------------------------
// Circuit breakers
// ---------------------------------------------------------------------------

#[test]
fn breaker_trips_fast_rejects_and_recovers() {
    let rt = Runtime::new(RuntimeConfig {
        workers: 2,
        quantum: Duration::from_millis(2),
        quantum_fuel: Some(200_000),
        circuit_breaker: Some(BreakerConfig {
            threshold: 3,
            cooldown: Duration::from_millis(200),
        }),
        ..Default::default()
    });
    let picky = rt
        .register_module(FunctionConfig::new("picky"), &guests::picky())
        .unwrap();

    // Three consecutive traps trip the breaker.
    for _ in 0..3 {
        let done = rt.invoke(picky, vec![1u8]).wait().unwrap();
        assert!(
            matches!(done.outcome, Outcome::Trapped(_)),
            "{:?}",
            done.outcome
        );
    }
    // Now fast-rejected without execution.
    let rejected = rt.invoke(picky, vec![0u8]).wait().unwrap();
    match rejected.outcome {
        Outcome::CircuitOpen { retry_after } => {
            assert!(retry_after > Duration::ZERO);
            assert!(retry_after <= Duration::from_millis(200));
        }
        other => panic!("expected CircuitOpen, got {other:?}"),
    }
    assert!(rt.stats().breaker_rejected >= 1);
    assert_eq!(rt.function_stats(picky).unwrap().breaker_trips, 1);

    // After the cooldown a half-open probe is admitted; its success closes
    // the breaker and traffic flows again.
    std::thread::sleep(Duration::from_millis(250));
    let probe = rt.invoke(picky, vec![0u8]).wait().unwrap();
    assert!(
        matches!(probe.outcome, Outcome::Success(ref b) if b == b"ok"),
        "probe should run and succeed: {:?}",
        probe.outcome
    );
    for _ in 0..5 {
        let done = rt.invoke(picky, vec![0u8]).wait().unwrap();
        assert!(
            matches!(done.outcome, Outcome::Success(_)),
            "{:?}",
            done.outcome
        );
    }
    assert_eq!(rt.function_stats(picky).unwrap().breaker_trips, 1);
    rt.shutdown();
}

#[test]
fn breaker_failed_probe_reopens() {
    let rt = Runtime::new(RuntimeConfig {
        workers: 1,
        quantum: Duration::from_millis(2),
        quantum_fuel: Some(200_000),
        circuit_breaker: Some(BreakerConfig {
            threshold: 2,
            cooldown: Duration::from_millis(150),
        }),
        ..Default::default()
    });
    let picky = rt
        .register_module(FunctionConfig::new("picky"), &guests::picky())
        .unwrap();
    for _ in 0..2 {
        let done = rt.invoke(picky, vec![1u8]).wait().unwrap();
        assert!(matches!(done.outcome, Outcome::Trapped(_)));
    }
    std::thread::sleep(Duration::from_millis(200));
    // The probe itself fails → breaker re-opens immediately.
    let probe = rt.invoke(picky, vec![1u8]).wait().unwrap();
    assert!(
        matches!(probe.outcome, Outcome::Trapped(_)),
        "{:?}",
        probe.outcome
    );
    let rejected = rt.invoke(picky, vec![0u8]).wait().unwrap();
    assert!(
        matches!(rejected.outcome, Outcome::CircuitOpen { .. }),
        "{:?}",
        rejected.outcome
    );
    assert_eq!(rt.function_stats(picky).unwrap().breaker_trips, 2);
    rt.shutdown();
}

#[test]
fn breaker_is_per_function() {
    let rt = Runtime::new(RuntimeConfig {
        workers: 2,
        quantum: Duration::from_millis(2),
        quantum_fuel: Some(200_000),
        circuit_breaker: Some(BreakerConfig {
            threshold: 2,
            cooldown: Duration::from_secs(30),
        }),
        ..Default::default()
    });
    let picky = rt
        .register_module(FunctionConfig::new("picky"), &guests::picky())
        .unwrap();
    let echo = rt
        .register_module(FunctionConfig::new("echo"), &guests::echo())
        .unwrap();
    for _ in 0..2 {
        rt.invoke(picky, vec![1u8]).wait().unwrap();
    }
    assert!(matches!(
        rt.invoke(picky, vec![0u8]).wait().unwrap().outcome,
        Outcome::CircuitOpen { .. }
    ));
    // The healthy function is unaffected.
    let ok = rt.invoke(echo, &b"fine"[..]).wait().unwrap();
    assert!(matches!(ok.outcome, Outcome::Success(ref b) if b == b"fine"));
    rt.shutdown();
}

#[test]
fn http_breaker_maps_to_503_with_retry_after() {
    let rt = Runtime::with_http(
        RuntimeConfig {
            workers: 1,
            quantum: Duration::from_millis(2),
            quantum_fuel: Some(200_000),
            circuit_breaker: Some(BreakerConfig {
                threshold: 2,
                cooldown: Duration::from_secs(30),
            }),
            ..Default::default()
        },
        "127.0.0.1:0".parse().unwrap(),
    )
    .unwrap();
    let _ = rt
        .register_module(FunctionConfig::new("picky"), &guests::picky())
        .unwrap();
    let addr = rt.http_addr().unwrap();

    let post = |body: &[u8]| -> String {
        let mut s = std::net::TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let head = format!(
            "POST /picky HTTP/1.1\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            body.len()
        );
        s.write_all(head.as_bytes()).unwrap();
        s.write_all(body).unwrap();
        let mut resp = Vec::new();
        s.read_to_end(&mut resp).unwrap();
        String::from_utf8(resp).unwrap()
    };

    assert!(post(&[1]).starts_with("HTTP/1.1 500"));
    assert!(post(&[1]).starts_with("HTTP/1.1 500"));
    let tripped = post(&[0]);
    assert!(tripped.starts_with("HTTP/1.1 503"), "{tripped}");
    assert!(tripped.contains("Retry-After: "), "{tripped}");
    rt.shutdown();
}

// ---------------------------------------------------------------------------
// Instantiation failures (the dropped-responder bug)
// ---------------------------------------------------------------------------

#[test]
fn failed_instantiation_still_answers_the_client() {
    // Before the fix, a Sandbox::new error silently dropped the responder
    // and the invoker hung forever.
    let rt = Runtime::new(RuntimeConfig {
        workers: 1,
        ..Default::default()
    });
    let bad = rt
        .register_module(FunctionConfig::new("bad"), &guests::bad_instantiation())
        .unwrap();
    let done = rt
        .invoke(bad, Vec::new())
        .wait_timeout(Duration::from_secs(5))
        .expect("instantiation failure must deliver a completion, not hang");
    assert!(
        matches!(done.outcome, Outcome::Rejected("instantiation failed")),
        "{:?}",
        done.outcome
    );
    assert_eq!(rt.stats().rejected, 1);
    rt.shutdown();
}

// ---------------------------------------------------------------------------
// Graceful drain and shutdown
// ---------------------------------------------------------------------------

#[test]
fn shutdown_drain_completes_queued_work() {
    let rt = Runtime::new(RuntimeConfig {
        workers: 2,
        quantum: Duration::from_millis(2),
        quantum_fuel: Some(200_000),
        ..Default::default()
    });
    let spin = rt
        .register_module(FunctionConfig::new("spin"), &guests::spin())
        .unwrap();
    let handles: Vec<_> = (0..50)
        .map(|_| rt.invoke(spin, 200_000u32.to_le_bytes().to_vec()))
        .collect();
    // Wait until the listener has accepted everything — the drain stops
    // intake immediately, and this test is about the accepted backlog.
    while rt.stats().admitted < 50 {
        std::thread::sleep(Duration::from_millis(1));
    }
    let drained = rt.shutdown_drain(Duration::from_secs(30));
    assert!(drained, "backlog should drain well within the timeout");
    for h in handles {
        let done = h
            .wait_timeout(Duration::from_secs(1))
            .expect("drained invocation must have delivered its completion");
        assert!(
            matches!(done.outcome, Outcome::Success(_)),
            "{:?}",
            done.outcome
        );
    }
}

#[test]
fn drain_rejects_new_work() {
    let rt = Runtime::new(RuntimeConfig {
        workers: 1,
        ..Default::default()
    });
    let echo = rt
        .register_module(FunctionConfig::new("echo"), &guests::echo())
        .unwrap();
    rt.begin_drain();
    // The flag is checked at admission on the listener thread, which
    // processes this invoke strictly after the flag was set.
    let done = rt
        .invoke(echo, &b"late"[..])
        .wait_timeout(Duration::from_secs(5))
        .expect("rejected intake still gets a completion");
    assert!(
        matches!(done.outcome, Outcome::Rejected("draining")),
        "{:?}",
        done.outcome
    );
    assert!(rt.shutdown_drain(Duration::from_secs(5)));
}

#[test]
fn shutdown_drain_force_kills_runaways_and_reports_timeout() {
    // No deadline: only the drain's own timeout bounds the runaway. The
    // drain must return false but every invocation still completes.
    let rt = Runtime::new(RuntimeConfig {
        workers: 2,
        quantum: Duration::from_millis(2),
        quantum_fuel: Some(200_000),
        ..Default::default()
    });
    let inf = rt
        .register_module(FunctionConfig::new("infinite"), &guests::infinite())
        .unwrap();
    let handles: Vec<_> = (0..4).map(|_| rt.invoke(inf, Vec::new())).collect();
    std::thread::sleep(Duration::from_millis(30));
    let start = Instant::now();
    let drained = rt.shutdown_drain(Duration::from_millis(300));
    assert!(!drained, "runaways cannot drain");
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "force-kill drain took {:?}",
        start.elapsed()
    );
    for h in handles {
        let done = h
            .wait_timeout(Duration::from_secs(1))
            .expect("force-killed invocation must still complete");
        assert!(
            matches!(done.outcome, Outcome::TimedOut),
            "{:?}",
            done.outcome
        );
    }
}

#[test]
fn plain_shutdown_returns_promptly_with_runaway_guest() {
    let rt = Runtime::new(RuntimeConfig {
        workers: 1,
        quantum: Duration::from_millis(2),
        quantum_fuel: Some(200_000),
        ..Default::default()
    });
    let inf = rt
        .register_module(FunctionConfig::new("infinite"), &guests::infinite())
        .unwrap();
    let h = rt.invoke(inf, Vec::new());
    std::thread::sleep(Duration::from_millis(20));
    let start = Instant::now();
    rt.shutdown();
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "shutdown wedged behind a runaway guest: {:?}",
        start.elapsed()
    );
    // Dropped work: the invoker observes the channel closing, not a hang.
    assert!(h.wait_timeout(Duration::from_secs(1)).is_none());
}

// ---------------------------------------------------------------------------
// Deterministic fault injection
// ---------------------------------------------------------------------------

#[test]
fn fault_injection_is_deterministic_across_runs() {
    let run = || -> Vec<&'static str> {
        let rt = Runtime::new(RuntimeConfig {
            workers: 1,
            quantum: Duration::from_millis(2),
            quantum_fuel: Some(200_000),
            fault_plan: Some(FaultPlan {
                seed: 7,
                instantiation_failure_pct: 20.0,
                host_trap_pct: 15.0,
                host_latency_pct: 20.0,
                host_latency: Duration::from_micros(200),
                ..Default::default()
            }),
            ..Default::default()
        });
        let echo = rt
            .register_module(FunctionConfig::new("echo"), &guests::echo())
            .unwrap();
        // Sequential invocations pin the admission order, so the decision
        // stream depends only on the seed.
        let kinds: Vec<_> = (0..100)
            .map(|i| {
                let done = rt
                    .invoke(echo, format!("r{i}").into_bytes())
                    .wait()
                    .unwrap();
                kind(&done.outcome)
            })
            .collect();
        rt.shutdown();
        kinds
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "same seed must give identical outcome sequences");
    // The plan actually exercised every fault class.
    assert!(a.contains(&"success"));
    assert!(a.contains(&"trapped"));
    assert!(a.contains(&"rejected"));
}

// ---------------------------------------------------------------------------
// The chaos test: everything at once
// ---------------------------------------------------------------------------

#[test]
fn chaos_every_accepted_invocation_completes_exactly_once() {
    const N: usize = 600;
    let rt = Runtime::new(RuntimeConfig {
        workers: 4,
        quantum: Duration::from_millis(1),
        quantum_fuel: Some(150_000),
        deadline: Some(Duration::from_millis(400)),
        circuit_breaker: Some(BreakerConfig {
            threshold: 3,
            cooldown: Duration::from_millis(200),
        }),
        fault_plan: Some(FaultPlan {
            seed: 42,
            instantiation_failure_pct: 5.0,
            host_trap_pct: 2.0,
            host_latency_pct: 5.0,
            host_latency: Duration::from_millis(1),
            ..Default::default()
        }),
        ..Default::default()
    });
    let echo = rt
        .register_module(FunctionConfig::new("echo"), &guests::echo())
        .unwrap();
    let spin = rt
        .register_module(FunctionConfig::new("spin"), &guests::spin())
        .unwrap();
    let sleeper = rt
        .register_module(FunctionConfig::new("sleeper"), &guests::io_sleeper())
        .unwrap();
    let inf = rt
        .register_module(FunctionConfig::new("infinite"), &guests::infinite())
        .unwrap();

    // Mixed workload: mostly healthy, some blocking, some runaway.
    let handles: Vec<_> = (0..N)
        .map(|i| match i % 40 {
            39 => rt.invoke(inf, Vec::new()),
            n if n % 7 == 3 => rt.invoke(sleeper, 2_000u32.to_le_bytes().to_vec()),
            n if n % 5 == 1 => rt.invoke(spin, 50_000u32.to_le_bytes().to_vec()),
            _ => rt.invoke(echo, format!("c{i}").into_bytes()),
        })
        .collect();

    // INVARIANT 1: exactly one completion per invocation — nothing hangs,
    // nothing is double-delivered (the bounded(1) channel would panic the
    // worker on a second send; a hang would trip the timeout).
    let mut counts = std::collections::HashMap::new();
    for (i, h) in handles.into_iter().enumerate() {
        let done = h
            .wait_timeout(Duration::from_secs(60))
            .unwrap_or_else(|| panic!("invocation {i} never completed"));
        *counts.entry(kind(&done.outcome)).or_insert(0u64) += 1;
    }
    let delivered: u64 = counts.values().sum();
    assert_eq!(delivered, N as u64);

    // INVARIANT 2: the runtime's books balance. Every submission was either
    // admitted (then completed/trapped/timed out) or rejected at the door.
    let stats = rt.stats();
    assert_eq!(
        stats.completed + stats.trapped + stats.timed_out,
        stats.admitted,
        "admitted work must finish one of the three ways: {stats:?}"
    );
    assert_eq!(
        stats.admitted + stats.rejected + stats.breaker_rejected,
        N as u64,
        "every submission accounted for: {stats:?}"
    );

    // INVARIANT 3: the fault classes and the deadline actually fired.
    assert!(stats.timed_out >= 10, "runaways must be killed: {stats:?}");
    assert!(stats.trapped >= 1, "injected traps must fire: {stats:?}");
    assert!(
        stats.rejected >= 1,
        "injected instantiation failures: {stats:?}"
    );
    assert!(stats.preemptions > 0, "RR must have preempted: {stats:?}");

    // INVARIANT 4: after the storm, a graceful drain finishes in bounded
    // time (everything left is deadline-bounded).
    let start = Instant::now();
    let drained = rt.shutdown_drain(Duration::from_secs(30));
    assert!(drained, "deadline-bounded backlog must drain");
    assert!(start.elapsed() < Duration::from_secs(30));
}

#[test]
fn chaos_with_breaker_recovery_probe() {
    // Drive one function through trip → cooldown → probe → recovery while a
    // healthy function keeps serving, under injected faults.
    let rt = Runtime::new(RuntimeConfig {
        workers: 4,
        quantum: Duration::from_millis(1),
        quantum_fuel: Some(150_000),
        deadline: Some(Duration::from_millis(400)),
        circuit_breaker: Some(BreakerConfig {
            threshold: 3,
            cooldown: Duration::from_millis(150),
        }),
        fault_plan: Some(FaultPlan {
            seed: 1234,
            instantiation_failure_pct: 0.0,
            host_trap_pct: 0.0,
            host_latency_pct: 10.0,
            host_latency: Duration::from_micros(500),
            ..Default::default()
        }),
        ..Default::default()
    });
    let picky = rt
        .register_module(FunctionConfig::new("picky"), &guests::picky())
        .unwrap();
    let echo = rt
        .register_module(FunctionConfig::new("echo"), &guests::echo())
        .unwrap();

    // Trip picky's breaker.
    for _ in 0..3 {
        let done = rt.invoke(picky, vec![1u8]).wait().unwrap();
        assert!(matches!(done.outcome, Outcome::Trapped(_)));
    }
    // While open: picky fast-rejects, echo is untouched.
    let mut saw_circuit_open = false;
    for i in 0..20 {
        if matches!(
            rt.invoke(picky, vec![0u8]).wait().unwrap().outcome,
            Outcome::CircuitOpen { .. }
        ) {
            saw_circuit_open = true;
        }
        let ok = rt
            .invoke(echo, format!("e{i}").into_bytes())
            .wait()
            .unwrap();
        assert!(matches!(ok.outcome, Outcome::Success(_)));
    }
    assert!(saw_circuit_open);
    // Past the cooldown, healthy probes close the breaker again.
    std::thread::sleep(Duration::from_millis(200));
    let mut recovered = false;
    for _ in 0..10 {
        if matches!(
            rt.invoke(picky, vec![0u8]).wait().unwrap().outcome,
            Outcome::Success(_)
        ) {
            recovered = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    assert!(recovered, "breaker must recover via the half-open probe");
    assert!(rt.stats().breaker_rejected >= 1);
    assert!(rt.function_stats(picky).unwrap().breaker_trips >= 1);
    assert!(rt.shutdown_drain(Duration::from_secs(10)));
}
