//! Warm-pool integration tests: recycling counters through real invocations,
//! state isolation across reuse, pre-warming, drain interaction, the
//! phase-accounting contract for pool hits, chaos pool-poisoning, and the
//! disabled-pool "byte-for-byte identical" rendering guarantee.

use sledge_core::{FaultPlan, FunctionConfig, Outcome, PoolStatsSnapshot, Runtime, RuntimeConfig};
use sledge_guestc::dsl::*;
use sledge_guestc::{FuncBuilder, ModuleBuilder, Scalar};
use sledge_wasm::module::Module;
use sledge_wasm::types::ValType;
use std::io::{Read, Write};
use std::time::{Duration, Instant};

mod guests {
    use super::*;

    /// Echo the request body.
    pub fn echo() -> Module {
        let mut mb = ModuleBuilder::new("echo");
        mb.memory(2, Some(64));
        let req_len = mb.import_func("env", "request_len", &[], Some(ValType::I32));
        let req_read = mb.import_func(
            "env",
            "request_read",
            &[ValType::I32, ValType::I32, ValType::I32],
            Some(ValType::I32),
        );
        let resp_write = mb.import_func(
            "env",
            "response_write",
            &[ValType::I32, ValType::I32],
            Some(ValType::I32),
        );
        let mut f = FuncBuilder::new(&[], Some(ValType::I32));
        let n = f.local(ValType::I32);
        f.extend([
            set(n, call(req_len, vec![])),
            exec(call(req_read, vec![i32c(0), local(n), i32c(0)])),
            exec(call(resp_write, vec![i32c(0), local(n)])),
            ret(Some(i32c(0))),
        ]);
        let main = mb.add_func("main", f);
        mb.export_func(main, "main");
        mb.build().unwrap()
    }

    /// Respond with the byte at address 64 *then* scribble 0xAA over it. A
    /// recycled sandbox that leaks state answers 0xAA instead of 0.
    pub fn peek_poke() -> Module {
        let mut mb = ModuleBuilder::new("peek");
        mb.memory(1, Some(1));
        let resp_write = mb.import_func(
            "env",
            "response_write",
            &[ValType::I32, ValType::I32],
            Some(ValType::I32),
        );
        let mut f = FuncBuilder::new(&[], Some(ValType::I32));
        f.extend([
            exec(call(resp_write, vec![i32c(64), i32c(1)])),
            store(Scalar::U8, i32c(64), 0, i32c(0xAA)),
            ret(Some(i32c(0))),
        ]);
        let main = mb.add_func("main", f);
        mb.export_func(main, "main");
        mb.build().unwrap()
    }

    /// Trap (division by zero) whenever the first body byte is 1; the
    /// data dependency keeps the load-time analyzer from rejecting it.
    pub fn picky() -> Module {
        let mut mb = ModuleBuilder::new("picky");
        mb.memory(1, Some(1));
        let req_read = mb.import_func(
            "env",
            "request_read",
            &[ValType::I32, ValType::I32, ValType::I32],
            Some(ValType::I32),
        );
        let mut f = FuncBuilder::new(&[], Some(ValType::I32));
        f.extend([
            exec(call(req_read, vec![i32c(0), i32c(1), i32c(0)])),
            if_(
                eq(load(Scalar::U8, i32c(0), 0), i32c(1)),
                vec![store(Scalar::I32, i32c(8), 0, div(i32c(1), i32c(0)))],
            ),
            ret(Some(i32c(0))),
        ]);
        let main = mb.add_func("main", f);
        mb.export_func(main, "main");
        mb.build().unwrap()
    }

    /// Performs no guest store at all: responds with the byte at 64 and
    /// returns. Its effect certificate is `Pure`, so the pool may skip the
    /// memory reset entirely when recycling it.
    pub fn pure_reader() -> Module {
        let mut mb = ModuleBuilder::new("pure");
        mb.memory(1, Some(1));
        let resp_write = mb.import_func(
            "env",
            "response_write",
            &[ValType::I32, ValType::I32],
            Some(ValType::I32),
        );
        let mut f = FuncBuilder::new(&[], Some(ValType::I32));
        f.extend([
            exec(call(resp_write, vec![i32c(64), i32c(1)])),
            ret(Some(i32c(0))),
        ]);
        let main = mb.add_func("main", f);
        mb.export_func(main, "main");
        mb.build().unwrap()
    }

    /// Responds with the byte at 0x8000 *then* scribbles 0xBB over it — the
    /// same leak detector as `peek_poke`, but with a store footprint the
    /// analyzer certifies to a static span, so the pool resets only the
    /// certified tail instead of the whole high-water range.
    pub fn span_writer() -> Module {
        let mut mb = ModuleBuilder::new("span");
        mb.memory(1, Some(1));
        let resp_write = mb.import_func(
            "env",
            "response_write",
            &[ValType::I32, ValType::I32],
            Some(ValType::I32),
        );
        let mut f = FuncBuilder::new(&[], Some(ValType::I32));
        f.extend([
            exec(call(resp_write, vec![i32c(0x8000), i32c(1)])),
            store(Scalar::U8, i32c(0x8000), 0, i32c(0xBB)),
            ret(Some(i32c(0))),
        ]);
        let main = mb.add_func("main", f);
        mb.export_func(main, "main");
        mb.build().unwrap()
    }
}

/// Every test pins the three pool knobs explicitly so the suite passes
/// unchanged under the CI leg that enables pooling via `SLEDGE_*` env vars.
fn config(pool_size: usize, prewarm: usize, recycle: bool) -> RuntimeConfig {
    RuntimeConfig {
        workers: 1,
        pool_size,
        prewarm,
        recycle,
        ..Default::default()
    }
}

// ---------------------------------------------------------------------------
// Recycling counters and reuse
// ---------------------------------------------------------------------------

#[test]
fn sequential_invocations_recycle_one_sandbox() {
    let rt = Runtime::new(config(2, 0, true));
    let echo = rt
        .register_module(FunctionConfig::new("echo"), &guests::echo())
        .unwrap();
    for i in 0..10 {
        let done = rt.invoke(echo, &b"hi"[..]).wait().unwrap();
        match done.outcome {
            Outcome::Success(body) => assert_eq!(&body[..], b"hi", "#{i}"),
            other => panic!("#{i}: {other:?}"),
        }
    }
    let pool = rt.pool_stats();
    rt.shutdown();
    // One cold miss, then nine warm hits on the same recycled instance.
    assert_eq!(pool.misses, 1, "{pool:?}");
    assert_eq!(pool.hits, 9, "{pool:?}");
    assert_eq!(pool.recycled, 10, "{pool:?}");
    assert_eq!(pool.discarded, 0, "{pool:?}");
    assert_eq!(pool.poisoned, 0, "{pool:?}");
    assert_eq!(pool.size, 1, "{pool:?}");
}

#[test]
fn recycled_sandboxes_leak_no_state() {
    let rt = Runtime::new(config(1, 0, true));
    let peek = rt
        .register_module(FunctionConfig::new("peek"), &guests::peek_poke())
        .unwrap();
    for i in 0..6 {
        let done = rt.invoke(peek, Vec::new()).wait().unwrap();
        match done.outcome {
            // Every run answers the *template* byte (0), never the 0xAA the
            // previous invocation scribbled.
            Outcome::Success(body) => assert_eq!(&body[..], &[0u8], "#{i}"),
            other => panic!("#{i}: {other:?}"),
        }
    }
    let pool = rt.pool_stats();
    rt.shutdown();
    assert!(pool.hits >= 5, "no reuse actually happened: {pool:?}");
}

#[test]
fn recycle_knob_off_discards_everything() {
    let rt = Runtime::new(config(2, 0, false));
    let echo = rt
        .register_module(FunctionConfig::new("echo"), &guests::echo())
        .unwrap();
    for _ in 0..4 {
        let done = rt.invoke(echo, &b"x"[..]).wait().unwrap();
        assert!(matches!(done.outcome, Outcome::Success(_)));
    }
    let pool = rt.pool_stats();
    rt.shutdown();
    assert_eq!(pool.recycled, 0, "{pool:?}");
    assert_eq!(pool.hits, 0, "{pool:?}");
    assert_eq!(pool.misses, 4, "{pool:?}");
    assert_eq!(pool.discarded, 4, "{pool:?}");
    assert_eq!(pool.size, 0, "{pool:?}");
}

#[test]
fn trapped_invocations_are_never_recycled() {
    let rt = Runtime::new(config(2, 0, true));
    let picky = rt
        .register_module(FunctionConfig::new("picky"), &guests::picky())
        .unwrap();
    for _ in 0..3 {
        let done = rt.invoke(picky, vec![1u8]).wait().unwrap();
        assert!(matches!(done.outcome, Outcome::Trapped(_)));
    }
    let pool = rt.pool_stats();
    rt.shutdown();
    assert_eq!(pool.recycled, 0, "{pool:?}");
    assert_eq!(pool.hits, 0, "{pool:?}");
    assert_eq!(pool.misses, 3, "{pool:?}");
    assert_eq!(pool.discarded, 3, "{pool:?}");
    assert_eq!(pool.size, 0, "{pool:?}");
}

// ---------------------------------------------------------------------------
// Static-footprint and elided resets (derived from the effect certificate)
// ---------------------------------------------------------------------------

#[test]
fn pure_function_recycles_with_elided_resets() {
    let rt = Runtime::new(config(1, 0, true));
    let pure = rt
        .register_module(FunctionConfig::new("pure"), &guests::pure_reader())
        .unwrap();
    for i in 0..6 {
        let done = rt.invoke(pure, Vec::new()).wait().unwrap();
        match done.outcome {
            Outcome::Success(body) => assert_eq!(&body[..], &[0u8], "#{i}"),
            other => panic!("#{i}: {other:?}"),
        }
    }
    let pool = rt.pool_stats();
    rt.shutdown();
    // Every recycle skipped the memory reset: the certificate proves the
    // guest never stores, and no host write dirtied the instance.
    assert_eq!(pool.recycled, 6, "{pool:?}");
    assert_eq!(pool.resets_elided, 6, "{pool:?}");
    assert_eq!(pool.resets_static, 0, "{pool:?}");
}

#[test]
fn span_writer_recycles_with_static_resets_and_leaks_nothing() {
    let rt = Runtime::new(config(1, 0, true));
    let span = rt
        .register_module(FunctionConfig::new("span"), &guests::span_writer())
        .unwrap();
    for i in 0..6 {
        let done = rt.invoke(span, Vec::new()).wait().unwrap();
        match done.outcome {
            // Every run answers the pristine byte (0), never the 0xBB the
            // previous invocation scribbled into its certified span.
            Outcome::Success(body) => assert_eq!(&body[..], &[0u8], "#{i}"),
            other => panic!("#{i}: {other:?}"),
        }
    }
    let pool = rt.pool_stats();
    rt.shutdown();
    assert_eq!(pool.recycled, 6, "{pool:?}");
    assert_eq!(pool.resets_static, 6, "{pool:?}");
    assert_eq!(pool.resets_elided, 0, "{pool:?}");
}

#[test]
fn request_reading_function_falls_back_to_full_resets() {
    // `echo` calls `request_read`, which writes guest memory from the host
    // side; its footprint is also input-dependent. Both gates force the
    // classic high-water reset — the new counters must stay zero.
    let rt = Runtime::new(config(1, 0, true));
    let echo = rt
        .register_module(FunctionConfig::new("echo"), &guests::echo())
        .unwrap();
    for _ in 0..4 {
        let done = rt.invoke(echo, &b"hi"[..]).wait().unwrap();
        assert!(matches!(done.outcome, Outcome::Success(_)));
    }
    let pool = rt.pool_stats();
    rt.shutdown();
    assert_eq!(pool.recycled, 4, "{pool:?}");
    assert_eq!(pool.resets_static, 0, "{pool:?}");
    assert_eq!(pool.resets_elided, 0, "{pool:?}");
}

// ---------------------------------------------------------------------------
// Pre-warming and drain
// ---------------------------------------------------------------------------

#[test]
fn prewarmer_fills_pool_before_first_request() {
    let rt = Runtime::new(config(4, 2, true));
    let echo = rt
        .register_module(FunctionConfig::new("echo"), &guests::echo())
        .unwrap();
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let pool = rt.pool_stats();
        if pool.size >= 2 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "prewarmer never filled: {pool:?}"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
    let done = rt.invoke(echo, &b"warm"[..]).wait().unwrap();
    assert!(matches!(done.outcome, Outcome::Success(_)));
    let pool = rt.pool_stats();
    rt.shutdown();
    // The very first request was served from a pre-warmed instance.
    assert_eq!(pool.misses, 0, "{pool:?}");
    assert_eq!(pool.hits, 1, "{pool:?}");
    assert!(pool.prewarmed >= 2, "{pool:?}");
}

#[test]
fn drain_empties_pools_and_keeps_them_empty() {
    let rt = Runtime::new(config(4, 0, true));
    let echo = rt
        .register_module(FunctionConfig::new("echo"), &guests::echo())
        .unwrap();
    for _ in 0..6 {
        let done = rt.invoke(echo, &b"x"[..]).wait().unwrap();
        assert!(matches!(done.outcome, Outcome::Success(_)));
    }
    assert!(rt.pool_stats().size > 0, "pool never filled");
    rt.begin_drain();
    let pool = rt.pool_stats();
    assert_eq!(pool.size, 0, "drained pool still holds instances: {pool:?}");
    rt.shutdown();
}

// ---------------------------------------------------------------------------
// Phase accounting on the warm path (satellite: pool hits charge
// `instantiation`, never `queue`; the phase-sum invariant survives pooling)
// ---------------------------------------------------------------------------

#[test]
fn pool_hits_keep_phase_accounting_sound() {
    let rt = Runtime::new(config(2, 0, true));
    let echo = rt
        .register_module(FunctionConfig::new("echo"), &guests::echo())
        .unwrap();
    const N: u64 = 20;
    for i in 0..N {
        let done = rt.invoke(echo, &b"ping"[..]).wait().unwrap();
        assert!(matches!(done.outcome, Outcome::Success(_)), "#{i}");
        let t = &done.timings;
        // The acquire (warm or cold) happens inside the measured
        // instantiation window, so the disjoint-phase invariant holds for
        // pool hits exactly as it does for cold starts.
        let sum = t.instantiation + t.queue_delay + t.execution + t.preempted + t.blocked;
        assert!(sum <= t.total, "#{i}: phase sum {sum:?} exceeds {t:?}");
    }
    let report = rt.latency_report();
    let pool = rt.pool_stats();
    rt.shutdown();
    assert_eq!(pool.hits, N - 1, "{pool:?}");
    // Warm invocations still record exactly one sample per phase: nothing
    // about a pool hit is smeared into `queue` or dropped.
    assert_eq!(report.global.count(), N);
    for (phase, h) in report.global.phases() {
        assert_eq!(h.count(), N, "phase {phase} lost warm-path samples");
    }
    // The report carries the merged pool snapshot for rendering.
    assert_eq!(report.pool.hits, N - 1);
    assert!(report.pool.capacity > 0);
}

// ---------------------------------------------------------------------------
// Chaos: pool poisoning
// ---------------------------------------------------------------------------

#[test]
fn poisoned_sandboxes_never_reenter_the_pool() {
    let rt = Runtime::new(RuntimeConfig {
        fault_plan: Some(FaultPlan {
            seed: 11,
            pool_poison_pct: 100.0,
            ..Default::default()
        }),
        ..config(4, 0, true)
    });
    let echo = rt
        .register_module(FunctionConfig::new("echo"), &guests::echo())
        .unwrap();
    const N: u64 = 30;
    for i in 0..N {
        // Exactly-one-completion: poisoning is invisible to the client — the
        // invocation succeeds, only the sandbox's afterlife changes.
        let done = rt.invoke(echo, &b"hi"[..]).wait().unwrap();
        match done.outcome {
            Outcome::Success(body) => assert_eq!(&body[..], b"hi", "#{i}"),
            other => panic!("#{i}: {other:?}"),
        }
    }
    let pool = rt.pool_stats();
    rt.shutdown();
    // Every completion was poisoned, so the pool never serves a reused
    // instance: all acquires miss, nothing is ever recycled.
    assert_eq!(pool.poisoned, N, "{pool:?}");
    assert_eq!(pool.discarded, N, "{pool:?}");
    assert_eq!(pool.recycled, 0, "{pool:?}");
    assert_eq!(pool.hits, 0, "{pool:?}");
    assert_eq!(pool.size, 0, "{pool:?}");
}

#[test]
fn partial_poisoning_accounts_for_every_retirement() {
    let rt = Runtime::new(RuntimeConfig {
        fault_plan: Some(FaultPlan {
            seed: 42,
            pool_poison_pct: 35.0,
            ..Default::default()
        }),
        ..config(4, 0, true)
    });
    let echo = rt
        .register_module(FunctionConfig::new("echo"), &guests::echo())
        .unwrap();
    const N: u64 = 60;
    for _ in 0..N {
        let done = rt.invoke(echo, &b"hi"[..]).wait().unwrap();
        assert!(matches!(done.outcome, Outcome::Success(_)));
    }
    let pool = rt.pool_stats();
    rt.shutdown();
    assert!(pool.poisoned > 0, "35% plan never fired: {pool:?}");
    assert!(pool.recycled > 0, "35% plan poisoned everything: {pool:?}");
    // Every successful retirement is counted exactly once: recycled into the
    // pool, discarded (poisoned), or evicted from a full pool.
    assert_eq!(pool.discarded, pool.poisoned, "{pool:?}");
    assert_eq!(pool.recycled + pool.discarded + pool.evicted, N, "{pool:?}");
}

// ---------------------------------------------------------------------------
// Disabled pool: invisible end to end
// ---------------------------------------------------------------------------

fn http_get(addr: std::net::SocketAddr, path: &str) -> (u16, String) {
    let mut s = std::net::TcpStream::connect(addr).unwrap();
    s.write_all(format!("GET {path} HTTP/1.1\r\nConnection: close\r\n\r\n").as_bytes())
        .unwrap();
    let mut buf = Vec::new();
    s.read_to_end(&mut buf).unwrap();
    let text = String::from_utf8_lossy(&buf).into_owned();
    let status: u16 = text
        .split_whitespace()
        .nth(1)
        .and_then(|c| c.parse().ok())
        .expect("status code");
    let body = text
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

#[test]
fn disabled_pool_is_invisible_in_every_surface() {
    let rt = Runtime::with_http(config(0, 0, true), "127.0.0.1:0".parse().unwrap()).unwrap();
    let addr = rt.http_addr().unwrap();
    let echo = rt
        .register_module(FunctionConfig::new("echo"), &guests::echo())
        .unwrap();
    for _ in 0..5 {
        let done = rt.invoke(echo, &b"ping"[..]).wait().unwrap();
        assert!(matches!(done.outcome, Outcome::Success(_)));
    }

    // No counter moves, no metric renders, no JSON key appears: with
    // `pool_size = 0` the output is exactly the pre-pool runtime's.
    assert_eq!(rt.pool_stats(), PoolStatsSnapshot::default());
    assert_eq!(rt.registry_stats().pool, PoolStatsSnapshot::default());
    let (status, metrics) = http_get(addr, "/metrics");
    assert_eq!(status, 200);
    assert!(!metrics.contains("sledge_pool"), "{metrics}");
    let (status, stats) = http_get(addr, "/stats");
    assert_eq!(status, 200);
    assert!(!stats.contains("\"pool\""), "{stats}");
    let line = sledge_core::summary_line(&rt.latency_report(), &rt.stats());
    assert!(!line.contains("pool"), "{line}");
    rt.shutdown();
}

#[test]
fn enabled_pool_surfaces_in_metrics_and_stats() {
    let rt = Runtime::with_http(config(2, 0, true), "127.0.0.1:0".parse().unwrap()).unwrap();
    let addr = rt.http_addr().unwrap();
    let echo = rt
        .register_module(FunctionConfig::new("echo"), &guests::echo())
        .unwrap();
    for _ in 0..5 {
        let done = rt.invoke(echo, &b"ping"[..]).wait().unwrap();
        assert!(matches!(done.outcome, Outcome::Success(_)));
    }

    let (status, metrics) = http_get(addr, "/metrics");
    assert_eq!(status, 200);
    for event in ["hit", "miss", "recycled", "prewarmed"] {
        let series = format!("sledge_pool_events_total{{event=\"{event}\"}} ");
        assert!(metrics.contains(&series), "missing {series}\n{metrics}");
    }
    assert!(metrics.contains("sledge_pool_size{} "), "{metrics}");
    assert!(metrics.contains("sledge_pool_capacity{} "), "{metrics}");
    let (status, stats) = http_get(addr, "/stats");
    assert_eq!(status, 200);
    assert!(stats.contains("\"pool\""), "{stats}");
    assert!(stats.contains("\"recycled\""), "{stats}");
    let line = sledge_core::summary_line(&rt.latency_report(), &rt.stats());
    assert!(line.contains("pool hit="), "{line}");
    rt.shutdown();
}
