//! Property tests for the work-budget token bucket: refill monotonicity,
//! balance bounds under arbitrary charge/true-up interleavings, and
//! charge/true-up conservation.

use proptest::prelude::*;
use sledge_core::TokenBucket;

/// One step of an arbitrary client interaction with a bucket.
#[derive(Debug, Clone)]
enum Op {
    /// Advance the clock by this many nanoseconds, then attempt a charge.
    Charge { dt_ns: u64, cost: u64 },
    /// Advance the clock, then true a prior charge up against actual use.
    TrueUp { dt_ns: u64, charged: u64, used: u64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..2_000_000_000, 0u64..5_000).prop_map(|(dt_ns, cost)| Op::Charge { dt_ns, cost }),
        (0u64..2_000_000_000, 0u64..5_000, 0u64..5_000).prop_map(|(dt_ns, charged, used)| {
            Op::TrueUp {
                dt_ns,
                charged,
                used,
            }
        }),
    ]
}

proptest! {
    /// With no charges, the balance is non-decreasing in time and never
    /// exceeds the configured capacity, regardless of how the observation
    /// instants are spaced.
    #[test]
    fn refill_is_monotone_and_capped(
        rate in 1u64..1_000_000,
        capacity in 1u64..1_000_000,
        drain in 0u64..1_000_000,
        steps in proptest::collection::vec(0u64..10_000_000_000u64, 1..40),
    ) {
        let b = TokenBucket::new(rate, capacity);
        // Start from an arbitrary partial balance.
        let _ = b.try_charge(drain.min(capacity), 0);
        let mut now = 0u64;
        let mut prev = b.balance(now);
        for dt in steps {
            now = now.saturating_add(dt);
            let cur = b.balance(now);
            prop_assert!(cur >= prev, "balance fell {prev} -> {cur} with no charge");
            prop_assert!(cur <= b.capacity(), "balance {cur} above capacity");
            prev = cur;
        }
    }

    /// Under any interleaving of charges and true-ups at non-decreasing
    /// times, the balance stays within [0, capacity] — the nano-token
    /// arithmetic never goes negative and never overshoots the burst cap.
    #[test]
    fn balance_stays_in_bounds(
        rate in 1u64..100_000,
        capacity in 1u64..100_000,
        ops in proptest::collection::vec(op_strategy(), 1..60),
    ) {
        let b = TokenBucket::new(rate, capacity);
        let mut now = 0u64;
        for op in ops {
            match op {
                Op::Charge { dt_ns, cost } => {
                    now = now.saturating_add(dt_ns);
                    let before = b.balance(now);
                    match b.try_charge(cost, now) {
                        Ok(()) => prop_assert!(before >= cost || cost == 0),
                        Err(wait) => {
                            // The hint is honest: after waiting it out, the
                            // same charge must succeed (nothing else drains
                            // the bucket in between). A cost above the burst
                            // capacity can never be admitted, so only the
                            // feasible case is retried.
                            prop_assert!(wait.as_nanos() > 0);
                            if cost <= b.capacity() {
                                let later = now.saturating_add(wait.as_nanos() as u64);
                                prop_assert!(
                                    b.try_charge(cost, later).is_ok(),
                                    "charge of {cost} still failing after hinted wait"
                                );
                                now = later;
                            }
                        }
                    }
                }
                Op::TrueUp { dt_ns, charged, used } => {
                    now = now.saturating_add(dt_ns);
                    b.true_up(charged, used, now);
                }
            }
            let bal = b.balance(now);
            prop_assert!(bal <= b.capacity(), "balance {bal} above capacity");
        }
    }

    /// Conservation: admission-charging the certificate and then truing up
    /// against actual fuel burned is equivalent to charging the actual fuel
    /// directly — provided the credit doesn't hit the capacity cap and no
    /// time passes (so refill is out of the picture).
    #[test]
    fn charge_then_true_up_nets_to_actual_use(
        rate in 1u64..100_000,
        charged in 0u64..40_000,
        used_frac in 0u64..=100,
    ) {
        let used = charged * used_frac / 100; // used <= charged
        let capacity = 100_000u64; // roomy: the credit can't hit the cap
        let a = TokenBucket::new(rate, capacity);
        let b = TokenBucket::new(rate, capacity);
        prop_assert!(a.try_charge(charged, 0).is_ok());
        a.true_up(charged, used, 0);
        prop_assert!(b.try_charge(used, 0).is_ok());
        prop_assert_eq!(a.balance(0), b.balance(0));
        prop_assert_eq!(a.balance(0), capacity - used);
    }

    /// Over-run true-ups (used > charged) debit exactly the difference,
    /// saturating at an empty bucket rather than going negative.
    #[test]
    fn overrun_debits_difference(
        charged in 0u64..10_000,
        overrun in 1u64..200_000,
    ) {
        let capacity = 50_000u64;
        let b = TokenBucket::new(1, capacity);
        prop_assert!(b.try_charge(charged, 0).is_ok());
        b.true_up(charged, charged + overrun, 0);
        let expect = (capacity - charged).saturating_sub(overrun);
        prop_assert_eq!(b.balance(0), expect);
    }
}
