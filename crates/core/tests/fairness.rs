//! End-to-end tests for multi-tenant fairness and admission control: work
//! budgets (429 + Retry-After over HTTP), priority-class shedding under an
//! in-flight cap, queue-SLO rejection, DWRR scheduling, burst-antagonist
//! fault injection, and the defaults-off guarantee.

use sledge_core::{FaultPlan, FunctionConfig, Outcome, Runtime, RuntimeConfig};
use sledge_guestc::dsl::*;
use sledge_guestc::{FuncBuilder, ModuleBuilder, Scalar};
use sledge_wasm::module::Module;
use sledge_wasm::types::ValType;
use std::io::{Read, Write};
use std::time::{Duration, Instant};

mod guests {
    use super::*;

    /// Echo the request body.
    pub fn echo() -> Module {
        let mut mb = ModuleBuilder::new("echo");
        mb.memory(2, Some(64));
        let req_len = mb.import_func("env", "request_len", &[], Some(ValType::I32));
        let req_read = mb.import_func(
            "env",
            "request_read",
            &[ValType::I32, ValType::I32, ValType::I32],
            Some(ValType::I32),
        );
        let resp_write = mb.import_func(
            "env",
            "response_write",
            &[ValType::I32, ValType::I32],
            Some(ValType::I32),
        );
        let mut f = FuncBuilder::new(&[], Some(ValType::I32));
        let n = f.local(ValType::I32);
        f.extend([
            set(n, call(req_len, vec![])),
            exec(call(req_read, vec![i32c(0), local(n), i32c(0)])),
            exec(call(resp_write, vec![i32c(0), local(n)])),
            ret(Some(i32c(0))),
        ]);
        let main = mb.add_func("main", f);
        mb.export_func(main, "main");
        mb.build().unwrap()
    }

    /// Spin for `iters` (first 4 body bytes, LE), then respond "done".
    pub fn spin() -> Module {
        let mut mb = ModuleBuilder::new("spin");
        mb.memory(1, Some(1));
        let req_read = mb.import_func(
            "env",
            "request_read",
            &[ValType::I32, ValType::I32, ValType::I32],
            Some(ValType::I32),
        );
        let resp_write = mb.import_func(
            "env",
            "response_write",
            &[ValType::I32, ValType::I32],
            Some(ValType::I32),
        );
        let mut f = FuncBuilder::new(&[], Some(ValType::I32));
        let iters = f.local(ValType::I32);
        let i = f.local(ValType::I32);
        let acc = f.local(ValType::I32);
        f.extend([
            exec(call(req_read, vec![i32c(0), i32c(4), i32c(0)])),
            set(iters, load(Scalar::I32, i32c(0), 0)),
            for_loop(
                i,
                i32c(0),
                lt_u(local(i), local(iters)),
                1,
                vec![set(acc, add(mul(local(acc), i32c(31)), local(i)))],
            ),
            store(Scalar::I32, i32c(8), 0, local(acc)),
            store(Scalar::U8, i32c(16), 0, i32c('d' as i32)),
            exec(call(resp_write, vec![i32c(16), i32c(1)])),
            ret(Some(i32c(0))),
        ]);
        let main = mb.add_func("main", f);
        mb.export_func(main, "main");
        mb.build().unwrap()
    }

    /// Block on emulated async I/O for N microseconds (first 4 body bytes).
    pub fn io_sleeper() -> Module {
        let mut mb = ModuleBuilder::new("sleeper");
        mb.memory(1, Some(1));
        let req_read = mb.import_func(
            "env",
            "request_read",
            &[ValType::I32, ValType::I32, ValType::I32],
            Some(ValType::I32),
        );
        let io_delay = mb.import_func("env", "io_delay", &[ValType::I32], Some(ValType::I32));
        let resp_write = mb.import_func(
            "env",
            "response_write",
            &[ValType::I32, ValType::I32],
            Some(ValType::I32),
        );
        let mut f = FuncBuilder::new(&[], Some(ValType::I32));
        f.extend([
            exec(call(req_read, vec![i32c(0), i32c(4), i32c(0)])),
            exec(call(io_delay, vec![load(Scalar::I32, i32c(0), 0)])),
            store(Scalar::U8, i32c(16), 0, i32c('w' as i32)),
            exec(call(resp_write, vec![i32c(16), i32c(1)])),
            ret(Some(i32c(0))),
        ]);
        let main = mb.add_func("main", f);
        mb.export_func(main, "main");
        mb.build().unwrap()
    }
}

// ---------------------------------------------------------------------------
// Work budgets
// ---------------------------------------------------------------------------

#[test]
fn http_budget_exhaustion_answers_429_with_retry_after() {
    let rt = Runtime::with_http(
        RuntimeConfig {
            workers: 1,
            ..Default::default()
        },
        "127.0.0.1:0".parse().unwrap(),
    )
    .unwrap();
    let addr = rt.http_addr().unwrap();
    let mut cfg = FunctionConfig::new("echo");
    // The full bucket covers about one admission charge.
    cfg.budget_us_per_s = Some(1);
    rt.register_module(cfg, &guests::echo()).unwrap();

    let post = |body: &str| -> String {
        let mut s = std::net::TcpStream::connect(addr).unwrap();
        s.write_all(
            format!(
                "POST /echo HTTP/1.1\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
                body.len()
            )
            .as_bytes(),
        )
        .unwrap();
        let mut buf = Vec::new();
        s.read_to_end(&mut buf).unwrap();
        String::from_utf8_lossy(&buf).into_owned()
    };

    let first = post("hi");
    assert!(first.starts_with("HTTP/1.1 200"), "{first}");

    // Burn through the remaining balance; one of the follow-ups must hit the
    // empty bucket and come back 429 with a concrete Retry-After.
    let mut saw_429 = false;
    for _ in 0..8 {
        let resp = post("again");
        if resp.starts_with("HTTP/1.1 429") {
            assert!(resp.contains("Retry-After: "), "429 without hint: {resp}");
            let secs: u64 = resp
                .lines()
                .find_map(|l| l.strip_prefix("Retry-After: "))
                .and_then(|v| v.trim().parse().ok())
                .expect("integer Retry-After");
            assert!(secs >= 1, "Retry-After must round up to at least 1 s");
            saw_429 = true;
            break;
        }
    }
    assert!(saw_429, "budget never rejected over HTTP");

    let stats = rt.stats();
    assert!(stats.budget_rejected > 0);
    rt.shutdown();
}

// ---------------------------------------------------------------------------
// Priority classes under the in-flight cap
// ---------------------------------------------------------------------------

#[test]
fn low_priority_is_shed_before_high_priority() {
    let rt = Runtime::new(RuntimeConfig {
        workers: 2,
        max_inflight: 4,
        ..Default::default()
    });
    // Background tenants that hold in-flight slots on the I/O wait list.
    let mut sleepy_cfg = FunctionConfig::new("sleepy");
    sleepy_cfg.priority = 3;
    let sleepy = rt
        .register_module(sleepy_cfg, &guests::io_sleeper())
        .unwrap();
    let mut low_cfg = FunctionConfig::new("low");
    low_cfg.priority = 0;
    let low = rt.register_module(low_cfg, &guests::echo()).unwrap();
    let mut high_cfg = FunctionConfig::new("high");
    high_cfg.priority = 3;
    let high = rt.register_module(high_cfg, &guests::echo()).unwrap();

    // Occupy half the cap (inflight = 2): priority 0 sheds at 1/4 of the
    // cap (threshold 1), priority 3 keeps flowing until the full cap (4).
    let parked: Vec<_> = (0..2)
        .map(|_| rt.invoke(sleepy, 500_000u32.to_le_bytes().to_vec()))
        .collect();
    let t0 = Instant::now();
    while rt.inflight() < 2 {
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "sleepers never became in-flight"
        );
        std::thread::yield_now();
    }

    let shed = rt.invoke(low, &b"x"[..]).wait().expect("completion");
    match shed.outcome {
        Outcome::Throttled { why, retry_after } => {
            assert!(why.contains("shed"), "{why}");
            assert!(retry_after > Duration::ZERO);
        }
        other => panic!("low-priority request not shed: {other:?}"),
    }

    let served = rt.invoke(high, &b"x"[..]).wait().expect("completion");
    assert!(
        matches!(served.outcome, Outcome::Success(_)),
        "high-priority request rejected under partial load: {:?}",
        served.outcome
    );

    for h in parked {
        let done = h.wait().expect("completion");
        assert!(
            matches!(done.outcome, Outcome::Success(_)),
            "{:?}",
            done.outcome
        );
    }

    let stats = rt.stats();
    assert!(stats.shed >= 1);
    let low_stats = rt.function_stats(low).unwrap();
    assert!(low_stats.shed >= 1);
    assert_eq!(low_stats.completed, 0);
    rt.shutdown();
}

// ---------------------------------------------------------------------------
// Queue-SLO gate
// ---------------------------------------------------------------------------

#[test]
fn queue_slo_gate_rejects_when_p99_is_blown() {
    let rt = Runtime::new(RuntimeConfig {
        workers: 1,
        ..Default::default()
    });
    let mut cfg = FunctionConfig::new("spin");
    // Any real queue wait (tens of ns at minimum) blows a 1 ns SLO, so the
    // gate closes as soon as the function has queue-phase history.
    cfg.queue_slo = Some(Duration::from_nanos(1));
    let spin = rt.register_module(cfg, &guests::spin()).unwrap();

    // Build queue-phase history. The first requests are admitted: the p99
    // cache starts empty, and an empty histogram reads as zero.
    let mut admitted = 0;
    for _ in 0..4 {
        let done = rt
            .invoke(spin, 50_000u32.to_le_bytes().to_vec())
            .wait()
            .expect("completion");
        if matches!(done.outcome, Outcome::Success(_)) {
            admitted += 1;
        }
    }
    assert!(admitted >= 1, "gate closed before any history existed");

    // Let the 5 ms p99 cache expire, then the gate must reject.
    std::thread::sleep(Duration::from_millis(10));
    let done = rt
        .invoke(spin, 50_000u32.to_le_bytes().to_vec())
        .wait()
        .expect("completion");
    match done.outcome {
        Outcome::Throttled { why, retry_after } => {
            assert!(why.contains("SLO"), "{why}");
            // The back-off hint is the SLO span.
            assert_eq!(retry_after, Duration::from_nanos(1));
        }
        other => panic!("blown SLO not rejected: {other:?}"),
    }
    let stats = rt.stats();
    assert!(stats.slo_rejected >= 1);
    rt.shutdown();
}

// ---------------------------------------------------------------------------
// DWRR scheduling end to end
// ---------------------------------------------------------------------------

#[test]
fn dwrr_contended_tenants_all_complete() {
    let rt = Runtime::new(RuntimeConfig {
        workers: 2,
        fairness: true,
        quantum: Duration::from_millis(1),
        quantum_fuel: Some(50_000),
        ..Default::default()
    });
    let mut heavy_cfg = FunctionConfig::new("heavy");
    heavy_cfg.weight = 8;
    let heavy = rt.register_module(heavy_cfg, &guests::spin()).unwrap();
    let mut light_cfg = FunctionConfig::new("light");
    light_cfg.weight = 1;
    let light = rt.register_module(light_cfg, &guests::spin()).unwrap();

    // Two tenants flood the same workers; DWRR interleaves their lanes.
    // Nothing is lost, nothing deadlocks, and every invocation succeeds.
    let handles: Vec<_> = (0..40u32)
        .map(|i| {
            let id = if i % 2 == 0 { heavy } else { light };
            rt.invoke(id, 300_000u32.to_le_bytes().to_vec())
        })
        .collect();
    for (i, h) in handles.into_iter().enumerate() {
        let done = h.wait().expect("completion");
        assert!(
            matches!(done.outcome, Outcome::Success(_)),
            "#{i}: {:?}",
            done.outcome
        );
    }

    let stats = rt.stats();
    assert_eq!(stats.completed, 40);
    // Fairness arms the admission report even with no budgets configured.
    let report = rt.latency_report();
    let adm = report
        .admission
        .expect("fairness arms the admission report");
    assert!(adm.fairness);
    assert_eq!(adm.per_function.len(), 2);
    rt.shutdown();
}

// ---------------------------------------------------------------------------
// Burst antagonist fault injection
// ---------------------------------------------------------------------------

#[test]
fn burst_faults_still_deliver_exactly_one_completion_each() {
    // Burst windows force worst-case host latency onto whole stretches of
    // arrivals. Robustness invariant: every invocation still gets exactly
    // one completion and the books balance.
    let rt = Runtime::new(RuntimeConfig {
        workers: 2,
        quantum: Duration::from_millis(1),
        quantum_fuel: Some(50_000),
        fault_plan: Some(FaultPlan {
            seed: 11,
            burst_pct: 50.0,
            burst_latency: Duration::from_millis(2),
            ..Default::default()
        }),
        ..Default::default()
    });
    let echo = rt
        .register_module(FunctionConfig::new("echo"), &guests::echo())
        .unwrap();
    let sleeper = rt
        .register_module(FunctionConfig::new("sleeper"), &guests::io_sleeper())
        .unwrap();

    const M: usize = 120;
    let outcomes: Vec<_> = std::thread::scope(|s| {
        let mut joins = Vec::new();
        for c in 0..3usize {
            let rt = &rt;
            joins.push(s.spawn(move || {
                (0..M / 3)
                    .map(|i| {
                        let h = if (c + i) % 2 == 0 {
                            rt.invoke(echo, &b"hello"[..])
                        } else {
                            rt.invoke(sleeper, 800u32.to_le_bytes().to_vec())
                        };
                        h.wait().expect("completion").outcome
                    })
                    .collect::<Vec<_>>()
            }));
        }
        joins
            .into_iter()
            .flat_map(|j| j.join().expect("client thread"))
            .collect()
    });
    assert_eq!(outcomes.len(), M);
    for (i, o) in outcomes.iter().enumerate() {
        assert!(matches!(o, Outcome::Success(_)), "#{i}: {o:?}");
    }

    let stats = rt.stats();
    let report = rt.latency_report();
    rt.shutdown();
    assert_eq!(stats.completed, M as u64);
    assert_eq!(report.global.count(), M as u64);
}

// ---------------------------------------------------------------------------
// Defaults off
// ---------------------------------------------------------------------------

#[test]
fn defaults_leave_admission_machinery_dark() {
    // Knobs pinned off explicitly (not via ..Default) so the test still
    // verifies the dark path when CI re-runs the suite with the
    // SLEDGE_FAIRNESS / SLEDGE_MAX_INFLIGHT env defaults armed.
    let rt = Runtime::new(RuntimeConfig {
        workers: 1,
        fairness: false,
        max_inflight: 0,
        ..Default::default()
    });
    let echo = rt
        .register_module(FunctionConfig::new("echo"), &guests::echo())
        .unwrap();
    for _ in 0..5 {
        let done = rt.invoke(echo, &b"ping"[..]).wait().unwrap();
        assert!(matches!(done.outcome, Outcome::Success(_)));
    }
    let stats = rt.stats();
    assert_eq!(stats.shed, 0);
    assert_eq!(stats.budget_rejected, 0);
    assert_eq!(stats.slo_rejected, 0);
    // No budgets, no SLOs, no fairness, no cap: the report section is
    // entirely absent, keeping /metrics and /stats byte-identical to a
    // build without this subsystem.
    assert!(rt.latency_report().admission.is_none());
    rt.shutdown();
}
