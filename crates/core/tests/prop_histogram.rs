//! Property tests for the lock-free latency histogram: bucket placement,
//! merge laws, and quantile bounds over arbitrary sample sets.

use proptest::prelude::*;
use sledge_core::{bucket_bounds, bucket_of, Histogram, HistogramSnapshot, BUCKETS};

fn record_all(values: &[u64]) -> HistogramSnapshot {
    let h = Histogram::default();
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

proptest! {
    /// Every u64 lands in exactly one bucket, and that bucket's bounds
    /// contain it.
    #[test]
    fn every_value_lands_in_its_bucket(v in any::<u64>()) {
        let b = bucket_of(v);
        prop_assert!(b < BUCKETS);
        let (lo, hi) = bucket_bounds(b);
        prop_assert!(lo <= v && v <= hi, "{v} outside [{lo}, {hi}] (bucket {b})");
    }

    /// The bucket upper bound over-estimates the true value by at most 25%
    /// (the log-bucketing resolution guarantee the quantiles rely on).
    #[test]
    fn bucket_relative_error_is_bounded(v in 16u64..u64::MAX) {
        let (_, hi) = bucket_bounds(bucket_of(v));
        let err = (hi - v) as f64 / v as f64;
        prop_assert!(err <= 0.25, "{v}: upper bound {hi} is {err:.3} rel error");
    }

    /// Merging snapshots is order-independent and lossless: any
    /// permutation of per-shard snapshots merges to the same totals as
    /// recording every sample into one histogram.
    #[test]
    fn merge_is_order_independent(
        // Values bounded so the summed total stays far from u64 overflow
        // (full-range bucket placement is covered above).
        shards in proptest::collection::vec(
            proptest::collection::vec(0u64..1 << 48, 0..64),
            1..6,
        ),
        seed in any::<u64>(),
    ) {
        let all: Vec<u64> = shards.iter().flatten().copied().collect();
        let reference = record_all(&all);

        let snaps: Vec<HistogramSnapshot> =
            shards.iter().map(|s| record_all(s)).collect();
        // Two deterministic permutations derived from the seed.
        let mut order: Vec<usize> = (0..snaps.len()).collect();
        let mut rot = (seed as usize) % snaps.len().max(1);
        order.rotate_left(rot);
        let mut merged_a = HistogramSnapshot::default();
        for &i in &order {
            merged_a.merge(&snaps[i]);
        }
        rot = (seed >> 32) as usize % snaps.len().max(1);
        order.reverse();
        order.rotate_left(rot);
        let mut merged_b = HistogramSnapshot::default();
        for &i in &order {
            merged_b.merge(&snaps[i]);
        }

        prop_assert_eq!(merged_a, reference);
        prop_assert_eq!(merged_b, reference);
        prop_assert_eq!(merged_a.count(), all.len() as u64);
    }

    /// Quantiles are bracketed by the recorded extremes, are monotone in q,
    /// and p50/p99 sit within the log-bucket error of a true percentile.
    #[test]
    fn quantiles_within_min_max(
        mut values in proptest::collection::vec(0u64..1u64 << 40, 1..200),
    ) {
        let snap = record_all(&values);
        values.sort_unstable();
        let min = values[0];
        let max = *values.last().unwrap();

        let p50 = snap.quantile(0.5);
        let p99 = snap.quantile(0.99);
        prop_assert!(min <= p50, "p50 {p50} below min {min}");
        prop_assert!(p50 <= p99, "p50 {p50} above p99 {p99}");
        prop_assert!(p99 <= max, "p99 {p99} above max {max}");

        // The reported p50 must not under-estimate the true median: it is
        // the upper bound of the median's bucket (clamped to max).
        let true_p50 = values[(values.len() - 1) / 2];
        let (_, hi) = bucket_bounds(bucket_of(true_p50));
        prop_assert!(p50 <= hi.min(max).max(min));
    }
}
