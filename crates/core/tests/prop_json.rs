//! Property tests for the configuration JSON parser: serializer-free
//! round-trips via generated documents and robustness against mutations.

use proptest::prelude::*;
use sledge_core::{parse_json, Json};

/// Serialize a Json value back to text (test-local; the runtime only
/// parses).
fn to_text(v: &Json) -> String {
    match v {
        Json::Null => "null".into(),
        Json::Bool(b) => b.to_string(),
        Json::Number(n) => {
            if n.fract() == 0.0 && n.abs() < 1e15 {
                format!("{}", *n as i64)
            } else {
                format!("{n:?}")
            }
        }
        Json::String(s) => format!(
            "\"{}\"",
            s.chars()
                .flat_map(|c| match c {
                    '"' => "\\\"".chars().collect::<Vec<_>>(),
                    '\\' => "\\\\".chars().collect(),
                    '\n' => "\\n".chars().collect(),
                    '\r' => "\\r".chars().collect(),
                    '\t' => "\\t".chars().collect(),
                    c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
                    c => vec![c],
                })
                .collect::<String>()
        ),
        Json::Array(items) => format!(
            "[{}]",
            items.iter().map(to_text).collect::<Vec<_>>().join(",")
        ),
        Json::Object(map) => format!(
            "{{{}}}",
            map.iter()
                .map(|(k, v)| format!("{}:{}", to_text(&Json::String(k.clone())), to_text(v)))
                .collect::<Vec<_>>()
                .join(",")
        ),
    }
}

fn json_strategy() -> impl Strategy<Value = Json> {
    let leaf = prop_oneof![
        Just(Json::Null),
        any::<bool>().prop_map(Json::Bool),
        (-1_000_000i64..1_000_000).prop_map(|n| Json::Number(n as f64)),
        "[ -~]{0,16}".prop_map(Json::String),
    ];
    leaf.prop_recursive(3, 48, 6, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..6).prop_map(Json::Array),
            proptest::collection::btree_map("[a-z_]{1,8}", inner, 0..6).prop_map(Json::Object),
        ]
    })
}

proptest! {
    #[test]
    fn generated_documents_roundtrip(v in json_strategy()) {
        let text = to_text(&v);
        let back = parse_json(&text).unwrap_or_else(|e| panic!("{text}: {e}"));
        prop_assert_eq!(back, v);
    }

    #[test]
    fn parser_never_panics_on_mutations(
        v in json_strategy(),
        at in 0usize..64,
        replacement in any::<u8>(),
    ) {
        let mut text = to_text(&v).into_bytes();
        if at < text.len() {
            text[at] = replacement;
        }
        if let Ok(s) = String::from_utf8(text) {
            let _ = parse_json(&s); // must not panic
        }
    }

    #[test]
    fn parser_never_panics_on_garbage(s in "[ -~]{0,64}") {
        let _ = parse_json(&s);
    }
}
