//! End-to-end runtime tests: scheduling, isolation, admission, blocking
//! I/O, and the HTTP front end.

use sledge_core::{FunctionConfig, Outcome, Runtime, RuntimeConfig};
use sledge_guestc::dsl::*;
use sledge_guestc::{FuncBuilder, ModuleBuilder, Scalar};
use sledge_wasm::module::Module;
use sledge_wasm::types::ValType;
use std::io::{Read, Write};
use std::time::Duration;

/// Guest module builders shared across tests. (The full application suite
/// lives in `sledge-apps`; these are purpose-built minimal guests.)
mod guests {
    use super::*;

    /// Echo the request body.
    pub fn echo() -> Module {
        let mut mb = ModuleBuilder::new("echo");
        mb.memory(2, Some(64));
        let req_len = mb.import_func("env", "request_len", &[], Some(ValType::I32));
        let req_read = mb.import_func(
            "env",
            "request_read",
            &[ValType::I32, ValType::I32, ValType::I32],
            Some(ValType::I32),
        );
        let resp_write = mb.import_func(
            "env",
            "response_write",
            &[ValType::I32, ValType::I32],
            Some(ValType::I32),
        );
        let mut f = FuncBuilder::new(&[], Some(ValType::I32));
        let n = f.local(ValType::I32);
        f.extend([
            set(n, call(req_len, vec![])),
            exec(call(req_read, vec![i32c(0), local(n), i32c(0)])),
            exec(call(resp_write, vec![i32c(0), local(n)])),
            ret(Some(i32c(0))),
        ]);
        let main = mb.add_func("main", f);
        mb.export_func(main, "main");
        mb.build().unwrap()
    }

    /// Spin for `iters` (first 4 bytes of the body, LE) loop iterations,
    /// then respond with "done".
    pub fn spin() -> Module {
        let mut mb = ModuleBuilder::new("spin");
        mb.memory(1, Some(1));
        let req_read = mb.import_func(
            "env",
            "request_read",
            &[ValType::I32, ValType::I32, ValType::I32],
            Some(ValType::I32),
        );
        let resp_write = mb.import_func(
            "env",
            "response_write",
            &[ValType::I32, ValType::I32],
            Some(ValType::I32),
        );
        let mut f = FuncBuilder::new(&[], Some(ValType::I32));
        let iters = f.local(ValType::I32);
        let i = f.local(ValType::I32);
        let acc = f.local(ValType::I32);
        f.extend([
            exec(call(req_read, vec![i32c(0), i32c(4), i32c(0)])),
            set(iters, load(Scalar::I32, i32c(0), 0)),
            for_loop(
                i,
                i32c(0),
                lt_u(local(i), local(iters)),
                1,
                vec![set(acc, add(mul(local(acc), i32c(31)), local(i)))],
            ),
            // Prevent the loop from being "optimized away" semantically;
            // store the accumulator then reply.
            store(Scalar::I32, i32c(8), 0, local(acc)),
            store(Scalar::U8, i32c(16), 0, i32c('d' as i32)),
            store(Scalar::U8, i32c(17), 0, i32c('o' as i32)),
            store(Scalar::U8, i32c(18), 0, i32c('n' as i32)),
            store(Scalar::U8, i32c(19), 0, i32c('e' as i32)),
            exec(call(resp_write, vec![i32c(16), i32c(4)])),
            ret(Some(i32c(0))),
        ]);
        let main = mb.add_func("main", f);
        mb.export_func(main, "main");
        mb.build().unwrap()
    }

    /// Run forever (for temporal-isolation tests).
    pub fn infinite() -> Module {
        let mut mb = ModuleBuilder::new("infinite");
        mb.memory(1, Some(1));
        let mut f = FuncBuilder::new(&[], Some(ValType::I32));
        let i = f.local(ValType::I32);
        f.extend([
            while_(i32c(1), vec![set(i, add(local(i), i32c(1)))]),
            ret(Some(local(i))),
        ]);
        let main = mb.add_func("main", f);
        mb.export_func(main, "main");
        mb.build().unwrap()
    }

    /// Trap with an out-of-bounds read under software bounds. The address is
    /// computed through a memory load (0 at runtime) so the load-time
    /// analyzer cannot prove it out of bounds and reject the module — the
    /// point of these tests is the *runtime* trap path.
    pub fn oob() -> Module {
        let mut mb = ModuleBuilder::new("oob");
        mb.memory(1, Some(1));
        let mut f = FuncBuilder::new(&[], Some(ValType::I32));
        f.push(ret(Some(load(
            Scalar::I32,
            add(load(Scalar::I32, i32c(0), 0), i32c(70000)),
            0,
        ))));
        let main = mb.add_func("main", f);
        mb.export_func(main, "main");
        mb.build().unwrap()
    }

    /// Block on emulated async I/O for N microseconds (first 4 body bytes),
    /// then echo "woke".
    pub fn io_sleeper() -> Module {
        let mut mb = ModuleBuilder::new("sleeper");
        mb.memory(1, Some(1));
        let req_read = mb.import_func(
            "env",
            "request_read",
            &[ValType::I32, ValType::I32, ValType::I32],
            Some(ValType::I32),
        );
        let io_delay = mb.import_func("env", "io_delay", &[ValType::I32], Some(ValType::I32));
        let resp_write = mb.import_func(
            "env",
            "response_write",
            &[ValType::I32, ValType::I32],
            Some(ValType::I32),
        );
        let mut f = FuncBuilder::new(&[], Some(ValType::I32));
        f.extend([
            exec(call(req_read, vec![i32c(0), i32c(4), i32c(0)])),
            exec(call(io_delay, vec![load(Scalar::I32, i32c(0), 0)])),
            store(Scalar::U8, i32c(16), 0, i32c('w' as i32)),
            store(Scalar::U8, i32c(17), 0, i32c('o' as i32)),
            store(Scalar::U8, i32c(18), 0, i32c('k' as i32)),
            store(Scalar::U8, i32c(19), 0, i32c('e' as i32)),
            exec(call(resp_write, vec![i32c(16), i32c(4)])),
            ret(Some(i32c(0))),
        ]);
        let main = mb.add_func("main", f);
        mb.export_func(main, "main");
        mb.build().unwrap()
    }
}

fn small_runtime(workers: usize) -> Runtime {
    Runtime::new(RuntimeConfig {
        workers,
        quantum: Duration::from_millis(2),
        quantum_fuel: Some(200_000),
        ..Default::default()
    })
}

#[test]
fn echo_end_to_end() {
    let rt = small_runtime(2);
    let id = rt
        .register_module(FunctionConfig::new("echo"), &guests::echo())
        .unwrap();
    let done = rt.invoke(id, &b"hello sledge"[..]).wait().unwrap();
    match done.outcome {
        Outcome::Success(body) => assert_eq!(body, b"hello sledge"),
        other => panic!("unexpected {other:?}"),
    }
    assert!(done.timings.instantiation < Duration::from_millis(50));
    let stats = rt.stats();
    assert_eq!(stats.completed, 1);
    assert_eq!(stats.admitted, 1);
    rt.shutdown();
}

#[test]
fn many_concurrent_requests_complete_exactly_once() {
    let rt = small_runtime(4);
    let id = rt
        .register_module(FunctionConfig::new("echo"), &guests::echo())
        .unwrap();
    const N: usize = 500;
    let handles: Vec<_> = (0..N)
        .map(|i| rt.invoke(id, format!("req-{i}").into_bytes()))
        .collect();
    for (i, h) in handles.into_iter().enumerate() {
        let done = h.wait().unwrap();
        match done.outcome {
            Outcome::Success(body) => assert_eq!(body, format!("req-{i}").as_bytes()),
            other => panic!("req {i}: {other:?}"),
        }
    }
    let stats = rt.stats();
    assert_eq!(stats.completed, N as u64);
    assert_eq!(stats.trapped, 0);
    assert_eq!(stats.rejected, 0);
    rt.shutdown();
}

#[test]
fn multi_tenant_functions_coexist() {
    let rt = small_runtime(3);
    let echo = rt
        .register_module(FunctionConfig::new("echo"), &guests::echo())
        .unwrap();
    let spin = rt
        .register_module(FunctionConfig::new("spin"), &guests::spin())
        .unwrap();
    let mut handles = Vec::new();
    for i in 0..50 {
        handles.push((0, rt.invoke(echo, format!("e{i}").into_bytes())));
        handles.push((1, rt.invoke(spin, 50_000u32.to_le_bytes().to_vec())));
    }
    for (kind, h) in handles {
        let done = h.wait().unwrap();
        match (kind, done.outcome) {
            (0, Outcome::Success(_)) | (1, Outcome::Success(_)) => {}
            (_, other) => panic!("unexpected {other:?}"),
        }
    }
    rt.shutdown();
}

#[test]
fn temporal_isolation_spinner_does_not_starve_short_requests() {
    // One worker. Start an infinite function, then a short echo: the echo
    // must still complete thanks to preemptive RR.
    let rt = Runtime::new(RuntimeConfig {
        workers: 1,
        quantum: Duration::from_millis(2),
        quantum_fuel: Some(500_000),
        ..Default::default()
    });
    let inf = rt
        .register_module(FunctionConfig::new("infinite"), &guests::infinite())
        .unwrap();
    let echo = rt
        .register_module(FunctionConfig::new("echo"), &guests::echo())
        .unwrap();
    rt.invoke_detached(inf, Vec::new());
    // Give the spinner time to get scheduled.
    std::thread::sleep(Duration::from_millis(20));
    let done = rt
        .invoke(echo, &b"alive"[..])
        .wait_timeout(Duration::from_secs(10))
        .expect("echo starved behind infinite function");
    assert!(matches!(done.outcome, Outcome::Success(ref b) if b == b"alive"));
    assert!(
        rt.stats().preemptions > 0,
        "RR must have preempted the spinner"
    );
    rt.shutdown();
}

#[test]
fn spatial_isolation_trap_does_not_kill_runtime() {
    // Software bounds so the out-of-bounds access traps (under the default
    // guard-region strategy it wraps — the documented substitution).
    let rt = Runtime::new(RuntimeConfig {
        workers: 2,
        quantum: Duration::from_millis(2),
        quantum_fuel: Some(200_000),
        bounds: awsm::BoundsStrategy::Software,
        ..Default::default()
    });
    let oob = rt
        .register_module(FunctionConfig::new("oob"), &guests::oob())
        .unwrap();
    let echo = rt
        .register_module(FunctionConfig::new("echo"), &guests::echo())
        .unwrap();
    let t = rt.invoke(oob, Vec::new()).wait().unwrap();
    assert!(matches!(t.outcome, Outcome::Trapped(_)), "{:?}", t.outcome);
    // The runtime keeps serving.
    for _ in 0..10 {
        let done = rt.invoke(echo, &b"still here"[..]).wait().unwrap();
        assert!(matches!(done.outcome, Outcome::Success(_)));
    }
    let stats = rt.stats();
    assert_eq!(stats.trapped, 1);
    assert_eq!(stats.completed, 10);
    rt.shutdown();
}

#[test]
fn blocked_io_overlaps_with_compute() {
    // 8 sleepers (5 ms each) + constant echo traffic on 2 workers: the
    // sleepers must not occupy workers while blocked.
    let rt = small_runtime(2);
    let sleeper = rt
        .register_module(FunctionConfig::new("sleeper"), &guests::io_sleeper())
        .unwrap();
    let echo = rt
        .register_module(FunctionConfig::new("echo"), &guests::echo())
        .unwrap();
    let start = std::time::Instant::now();
    let sleepers: Vec<_> = (0..8)
        .map(|_| rt.invoke(sleeper, 5000u32.to_le_bytes().to_vec()))
        .collect();
    let echoes: Vec<_> = (0..100).map(|_| rt.invoke(echo, &b"x"[..])).collect();
    for h in echoes {
        assert!(matches!(h.wait().unwrap().outcome, Outcome::Success(_)));
    }
    for h in sleepers {
        let done = h.wait().unwrap();
        assert!(matches!(done.outcome, Outcome::Success(ref b) if b == b"woke"));
    }
    // 8 x 5 ms of sleep on 2 workers must overlap: well under serial time.
    assert!(start.elapsed() < Duration::from_millis(2000));
    assert!(rt.stats().blocked >= 8);
    rt.shutdown();
}

#[test]
fn admission_control_rejects_overload() {
    // max_pending = 4 with a slow function and a single worker.
    let rt = Runtime::new(RuntimeConfig {
        workers: 1,
        max_pending: 4,
        quantum: Duration::from_millis(2),
        quantum_fuel: Some(100_000),
        ..Default::default()
    });
    let spin = rt
        .register_module(FunctionConfig::new("spin"), &guests::spin())
        .unwrap();
    let handles: Vec<_> = (0..200)
        .map(|_| rt.invoke(spin, 3_000_000u32.to_le_bytes().to_vec()))
        .collect();
    let mut rejected = 0;
    let mut succeeded = 0;
    for h in handles {
        match h.wait().unwrap().outcome {
            Outcome::Rejected(_) => rejected += 1,
            Outcome::Success(_) => succeeded += 1,
            other => panic!("unexpected {other:?}"),
        }
    }
    assert!(rejected > 0, "overload must reject");
    assert!(succeeded > 0, "some requests must be served");
    assert_eq!(rt.stats().rejected, rejected as u64);
    rt.shutdown();
}

#[test]
fn unknown_function_is_rejected() {
    let rt = small_runtime(1);
    let bogus = {
        // Register one real function so ids exist, then forge another id.
        let _ = rt
            .register_module(FunctionConfig::new("echo"), &guests::echo())
            .unwrap();
        // FunctionId is opaque; obtain an invalid one via name lookup miss.
        assert!(rt.function_by_name("nope").is_none());
        // Use the real one for the positive path.
        rt.function_by_name("echo").unwrap()
    };
    let ok = rt.invoke(bogus, &b"x"[..]).wait().unwrap();
    assert!(matches!(ok.outcome, Outcome::Success(_)));
    rt.shutdown();
}

#[test]
fn work_conservation_all_workers_participate() {
    let rt = small_runtime(4);
    let spin = rt
        .register_module(FunctionConfig::new("spin"), &guests::spin())
        .unwrap();
    let handles: Vec<_> = (0..64)
        .map(|_| rt.invoke(spin, 400_000u32.to_le_bytes().to_vec()))
        .collect();
    for h in handles {
        assert!(matches!(h.wait().unwrap().outcome, Outcome::Success(_)));
    }
    let stats = rt.stats();
    // All requests were stolen from the global deque by workers.
    assert_eq!(stats.steals, 64);
    assert_eq!(stats.completed, 64);
    rt.shutdown();
}

#[test]
fn http_front_end_serves_functions() {
    let rt = Runtime::with_http(
        RuntimeConfig {
            workers: 2,
            ..Default::default()
        },
        "127.0.0.1:0".parse().unwrap(),
    )
    .unwrap();
    let _ = rt
        .register_module(FunctionConfig::new("echo"), &guests::echo())
        .unwrap();
    let addr = rt.http_addr().unwrap();

    let mut s = std::net::TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s.write_all(b"POST /echo HTTP/1.1\r\nContent-Length: 9\r\nConnection: close\r\n\r\nedge-ping")
        .unwrap();
    let mut resp = Vec::new();
    s.read_to_end(&mut resp).unwrap();
    let text = String::from_utf8(resp).unwrap();
    assert!(text.starts_with("HTTP/1.1 200 OK"), "{text}");
    assert!(text.ends_with("edge-ping"), "{text}");

    // Unknown route → 404.
    let mut s = std::net::TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s.write_all(b"GET /missing HTTP/1.1\r\nConnection: close\r\n\r\n")
        .unwrap();
    let mut resp = Vec::new();
    s.read_to_end(&mut resp).unwrap();
    assert!(String::from_utf8(resp).unwrap().starts_with("HTTP/1.1 404"));
    rt.shutdown();
}

#[test]
fn http_trap_maps_to_500() {
    let rt = Runtime::with_http(
        RuntimeConfig {
            workers: 1,
            ..Default::default()
        },
        "127.0.0.1:0".parse().unwrap(),
    )
    .unwrap();
    // Use software bounds so OOB traps deterministically.
    drop(rt);
    let rt = Runtime::with_http(
        RuntimeConfig {
            workers: 1,
            bounds: awsm::BoundsStrategy::Software,
            ..Default::default()
        },
        "127.0.0.1:0".parse().unwrap(),
    )
    .unwrap();
    let _ = rt
        .register_module(FunctionConfig::new("oob"), &guests::oob())
        .unwrap();
    let addr = rt.http_addr().unwrap();
    let mut s = std::net::TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s.write_all(b"POST /oob HTTP/1.1\r\nContent-Length: 0\r\nConnection: close\r\n\r\n")
        .unwrap();
    let mut resp = Vec::new();
    s.read_to_end(&mut resp).unwrap();
    assert!(String::from_utf8(resp).unwrap().starts_with("HTTP/1.1 500"));
    rt.shutdown();
}

#[test]
fn instantiation_is_microsecond_scale() {
    // The headline claim behind Table 3: sandbox startup must be orders of
    // magnitude below process fork+exec (~500 µs in the paper). Allow a very
    // generous bound to keep CI stable.
    let rt = small_runtime(2);
    let id = rt
        .register_module(FunctionConfig::new("echo"), &guests::echo())
        .unwrap();
    // Warm up.
    for _ in 0..20 {
        rt.invoke(id, &b"w"[..]).wait().unwrap();
    }
    let mut total = Duration::ZERO;
    const N: u32 = 200;
    for _ in 0..N {
        let done = rt.invoke(id, &b"x"[..]).wait().unwrap();
        total += done.timings.instantiation;
    }
    let mean = total / N;
    assert!(
        mean < Duration::from_millis(2),
        "instantiation too slow: {mean:?}"
    );
    rt.shutdown();
}

#[test]
fn shutdown_is_clean_with_inflight_work() {
    let rt = small_runtime(2);
    let spin = rt
        .register_module(FunctionConfig::new("spin"), &guests::spin())
        .unwrap();
    for _ in 0..32 {
        rt.invoke_detached(spin, 10_000_000u32.to_le_bytes().to_vec());
    }
    std::thread::sleep(Duration::from_millis(10));
    rt.shutdown(); // must not hang or panic
}

#[test]
fn per_function_stats_are_tracked() {
    let rt = small_runtime(2);
    let echo = rt
        .register_module(FunctionConfig::new("echo"), &guests::echo())
        .unwrap();
    let spin = rt
        .register_module(FunctionConfig::new("spin"), &guests::spin())
        .unwrap();
    for _ in 0..5 {
        rt.invoke(echo, &b"x"[..]).wait().unwrap();
    }
    for _ in 0..3 {
        rt.invoke(spin, 10_000u32.to_le_bytes().to_vec())
            .wait()
            .unwrap();
    }
    let e = rt.function_stats(echo).unwrap();
    let s = rt.function_stats(spin).unwrap();
    assert_eq!(e.completed, 5);
    assert_eq!(s.completed, 3);
    assert_eq!(e.trapped + s.trapped, 0);
    assert!(s.mean_execution().unwrap() > std::time::Duration::ZERO);
    // Global equals sum of per-function.
    assert_eq!(rt.stats().completed, 8);
    rt.shutdown();
}
