//! Scheduler-policy ablation tests: the paper's preemptive round-robin vs.
//! the run-to-completion model it argues against (§3.4).

use sledge_core::{FunctionConfig, Outcome, Runtime, RuntimeConfig, SchedPolicy};
use sledge_guestc::dsl::*;
use sledge_guestc::{FuncBuilder, ModuleBuilder, Scalar};
use sledge_wasm::module::Module;
use sledge_wasm::types::ValType;
use std::time::{Duration, Instant};

/// A CPU hog: spins for the number of iterations in the request body.
fn spin_module() -> Module {
    let mut mb = ModuleBuilder::new("spin");
    mb.memory(1, Some(1));
    let req_read = mb.import_func(
        "env",
        "request_read",
        &[ValType::I32, ValType::I32, ValType::I32],
        Some(ValType::I32),
    );
    let resp_write = mb.import_func(
        "env",
        "response_write",
        &[ValType::I32, ValType::I32],
        Some(ValType::I32),
    );
    let mut f = FuncBuilder::new(&[], Some(ValType::I32));
    let iters = f.local(ValType::I32);
    let i = f.local(ValType::I32);
    let acc = f.local(ValType::I32);
    f.extend([
        exec(call(req_read, vec![i32c(0), i32c(4), i32c(0)])),
        set(iters, load(Scalar::I32, i32c(0), 0)),
        for_loop(
            i,
            i32c(0),
            lt_u(local(i), local(iters)),
            1,
            vec![set(acc, add(mul(local(acc), i32c(31)), local(i)))],
        ),
        store(Scalar::I32, i32c(8), 0, local(acc)),
        exec(call(resp_write, vec![i32c(8), i32c(4)])),
        ret(Some(i32c(0))),
    ]);
    let main = mb.add_func("main", f);
    mb.export_func(main, "main");
    mb.build().unwrap()
}

fn mixed_workload_short_latency(policy: SchedPolicy) -> Duration {
    let rt = Runtime::new(RuntimeConfig {
        workers: 1,
        quantum: Duration::from_millis(2),
        quantum_fuel: Some(200_000),
        policy,
        ..Default::default()
    });
    let spin = rt
        .register_module(FunctionConfig::new("spin"), &spin_module())
        .expect("register");
    // One long request (~hundreds of ms of interpretation), then a stream of
    // short ones behind it.
    rt.invoke_detached(spin, 60_000_000u32.to_le_bytes().to_vec());
    std::thread::sleep(Duration::from_millis(10)); // let it start
    let mut worst = Duration::ZERO;
    for _ in 0..5 {
        let t0 = Instant::now();
        let done = rt
            .invoke(spin, 1_000u32.to_le_bytes().to_vec())
            .wait()
            .expect("completion");
        assert!(matches!(done.outcome, Outcome::Success(_)));
        worst = worst.max(t0.elapsed());
    }
    rt.shutdown();
    worst
}

#[test]
fn preemptive_rr_bounds_short_request_latency_behind_a_hog() {
    let worst = mixed_workload_short_latency(SchedPolicy::PreemptiveRr);
    // 5 short requests behind one hog on one core: each RR cycle is two
    // quanta (hog + short), so even generously this stays well under the
    // hog's total runtime.
    assert!(
        worst < Duration::from_millis(250),
        "preemptive RR worst-case short latency: {worst:?}"
    );
}

#[test]
fn run_to_completion_exhibits_head_of_line_blocking() {
    let worst = mixed_workload_short_latency(SchedPolicy::RunToCompletion);
    // Under run-to-completion the short requests wait for the entire hog:
    // the head-of-line blocking the paper's design eliminates.
    assert!(
        worst > Duration::from_millis(100),
        "expected head-of-line blocking, got {worst:?}"
    );
}

#[test]
fn run_to_completion_shutdown_interrupts_runaway_guest() {
    // Even with an unbounded guest, shutdown must complete (the timer fires
    // a final preemption broadcast).
    let rt = Runtime::new(RuntimeConfig {
        workers: 1,
        quantum: Duration::from_millis(2),
        policy: SchedPolicy::RunToCompletion,
        ..Default::default()
    });
    let spin = rt
        .register_module(FunctionConfig::new("spin"), &spin_module())
        .expect("register");
    rt.invoke_detached(spin, u32::MAX.to_le_bytes().to_vec());
    std::thread::sleep(Duration::from_millis(20));
    let t0 = Instant::now();
    rt.shutdown();
    assert!(t0.elapsed() < Duration::from_secs(5), "shutdown hung");
}

#[test]
fn policies_parse_from_json() {
    let (cfg, _) = RuntimeConfig::from_json(r#"{"policy": "run-to-completion"}"#).unwrap();
    assert_eq!(cfg.policy, SchedPolicy::RunToCompletion);
    let (cfg, _) = RuntimeConfig::from_json(r#"{"policy": "preemptive-rr"}"#).unwrap();
    assert_eq!(cfg.policy, SchedPolicy::PreemptiveRr);
    assert!(RuntimeConfig::from_json(r#"{"policy": "bogus"}"#).is_err());
}
