//! Connection-churn chaos: a deterministic [`FaultPlan`] decides which
//! client connections abort mid-read (half a request, then a hard close)
//! or mid-write (full request sent, socket closed before the response),
//! while well-behaved clients share the same listener. The runtime must
//! deliver exactly one completion per surfaced request, lose no phase
//! samples, and account for every connection it accepted.

use sledge_core::{FaultPlan, FunctionConfig, Runtime, RuntimeConfig};
use sledge_guestc::dsl::*;
use sledge_guestc::{FuncBuilder, ModuleBuilder};
use sledge_wasm::module::Module;
use sledge_wasm::types::ValType;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Echo the request body (same guest the resilience suite uses).
fn echo_guest() -> Module {
    let mut mb = ModuleBuilder::new("echo");
    mb.memory(2, Some(64));
    let req_len = mb.import_func("env", "request_len", &[], Some(ValType::I32));
    let req_read = mb.import_func(
        "env",
        "request_read",
        &[ValType::I32, ValType::I32, ValType::I32],
        Some(ValType::I32),
    );
    let resp_write = mb.import_func(
        "env",
        "response_write",
        &[ValType::I32, ValType::I32],
        Some(ValType::I32),
    );
    let mut f = FuncBuilder::new(&[], Some(ValType::I32));
    let n = f.local(ValType::I32);
    f.extend([
        set(n, call(req_len, vec![])),
        exec(call(req_read, vec![i32c(0), local(n), i32c(0)])),
        exec(call(resp_write, vec![i32c(0), local(n)])),
        ret(Some(i32c(0))),
    ]);
    let main = mb.add_func("main", f);
    mb.export_func(main, "main");
    mb.build().unwrap()
}

#[test]
fn connection_churn_loses_no_completions_or_samples() {
    const CONNS: u64 = 64;
    const THREADS: u64 = 4;

    // The same plan drives the clients and documents the config knob: a
    // deployment would set `"fault_plan": {"seed": 7, "conn_reset_pct": 35}`.
    let plan = FaultPlan {
        seed: 7,
        conn_reset_pct: 35.0,
        ..Default::default()
    };

    let rt = Runtime::with_http(
        RuntimeConfig {
            workers: 4,
            quantum: Duration::from_millis(2),
            quantum_fuel: Some(200_000),
            conn_idle: Duration::from_secs(5),
            ..Default::default()
        },
        "127.0.0.1:0".parse().unwrap(),
    )
    .unwrap();
    let _ = rt
        .register_module(FunctionConfig::new("echo"), &echo_guest())
        .unwrap();
    let addr = rt.http_addr().unwrap();

    // Predict the churn schedule up front so the assertions are exact.
    let mut expect_good = 0u64;
    let mut expect_mid_read = 0u64;
    let mut expect_mid_write = 0u64;
    for i in 0..CONNS {
        if plan.reset_connection(i) {
            if plan.reset_mid_read(i) {
                expect_mid_read += 1;
            } else {
                expect_mid_write += 1;
            }
        } else {
            expect_good += 1;
        }
    }
    assert!(expect_good > 0, "plan sheds everything; lower the pct");
    assert!(
        expect_mid_read > 0 && expect_mid_write > 0,
        "plan must exercise both abort shapes \
         (mid-read {expect_mid_read}, mid-write {expect_mid_write})"
    );

    // Four client threads interleave good traffic with plan-driven aborts.
    let mut handles = Vec::new();
    for t in 0..THREADS {
        handles.push(std::thread::spawn(move || {
            let mut good_ok = 0u64;
            for i in (t..CONNS).step_by(THREADS as usize) {
                let body = format!("churn-{i}");
                let head = format!(
                    "POST /echo HTTP/1.1\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
                    body.len()
                );
                let mut s = TcpStream::connect(addr).unwrap();
                if plan.reset_connection(i) {
                    if plan.reset_mid_read(i) {
                        // Abort mid-read: half the head, then a hard close.
                        let _ = s.write_all(&head.as_bytes()[..head.len() / 2]);
                    } else {
                        // Abort mid-write: full request, then close without
                        // ever reading the response.
                        let _ = s.write_all(head.as_bytes());
                        let _ = s.write_all(body.as_bytes());
                    }
                    drop(s);
                    continue;
                }
                s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
                s.write_all(head.as_bytes()).unwrap();
                s.write_all(body.as_bytes()).unwrap();
                let mut resp = Vec::new();
                s.read_to_end(&mut resp).unwrap();
                let text = String::from_utf8_lossy(&resp);
                assert!(text.starts_with("HTTP/1.1 200"), "conn {i}: {text}");
                assert!(text.ends_with(&body), "conn {i}: {text}");
                good_ok += 1;
            }
            good_ok
        }));
    }
    let good_ok: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    assert_eq!(
        good_ok, expect_good,
        "every good request answered exactly once"
    );

    // Mid-write aborts still surface a request (the abort hits the response
    // path); mid-read aborts never complete a parse, so no request exists.
    let surfaced = expect_good + expect_mid_write;

    // Wait for the listener to retire every churned socket.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let conns = rt.connection_stats();
        let stats = rt.stats();
        if conns.active() == 0 && stats.completed == surfaced {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "churn never settled: active {} completed {} (want 0 / {surfaced})",
            conns.active(),
            stats.completed
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    // Exactly-one-completion: every surfaced request ran to completion,
    // none duplicated, none stranded by a dead client socket.
    let stats = rt.stats();
    assert_eq!(stats.admitted, surfaced);
    assert_eq!(stats.completed, surfaced);
    assert_eq!(stats.trapped, 0);
    assert_eq!(stats.timed_out, 0);

    // No phase-sample loss: the latency pipeline recorded every completion
    // even when the response write found a reset socket.
    let report = rt.latency_report();
    assert_eq!(report.global.count(), surfaced, "phase samples lost");

    // Connection accounting closes the books.
    let conns = rt.connection_stats();
    assert_eq!(conns.accepted, CONNS);
    assert_eq!(conns.closed, CONNS);
    assert_eq!(conns.requests, surfaced);

    rt.shutdown();
}
