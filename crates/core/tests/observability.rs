//! Invocation-lifecycle observability tests: phase accounting invariants,
//! shard merge completeness under multi-worker chaos, and the `/metrics` /
//! `/stats` endpoints.

use sledge_core::{
    Completion, FaultPlan, FunctionConfig, Outcome, Runtime, RuntimeConfig, Timings,
};
use sledge_guestc::dsl::*;
use sledge_guestc::{FuncBuilder, ModuleBuilder, Scalar};
use sledge_wasm::module::Module;
use sledge_wasm::types::ValType;
use std::io::{Read, Write};
use std::time::Duration;

mod guests {
    use super::*;

    /// Echo the request body.
    pub fn echo() -> Module {
        let mut mb = ModuleBuilder::new("echo");
        mb.memory(2, Some(64));
        let req_len = mb.import_func("env", "request_len", &[], Some(ValType::I32));
        let req_read = mb.import_func(
            "env",
            "request_read",
            &[ValType::I32, ValType::I32, ValType::I32],
            Some(ValType::I32),
        );
        let resp_write = mb.import_func(
            "env",
            "response_write",
            &[ValType::I32, ValType::I32],
            Some(ValType::I32),
        );
        let mut f = FuncBuilder::new(&[], Some(ValType::I32));
        let n = f.local(ValType::I32);
        f.extend([
            set(n, call(req_len, vec![])),
            exec(call(req_read, vec![i32c(0), local(n), i32c(0)])),
            exec(call(resp_write, vec![i32c(0), local(n)])),
            ret(Some(i32c(0))),
        ]);
        let main = mb.add_func("main", f);
        mb.export_func(main, "main");
        mb.build().unwrap()
    }

    /// Spin for `iters` (first 4 body bytes, LE), then respond "done".
    pub fn spin() -> Module {
        let mut mb = ModuleBuilder::new("spin");
        mb.memory(1, Some(1));
        let req_read = mb.import_func(
            "env",
            "request_read",
            &[ValType::I32, ValType::I32, ValType::I32],
            Some(ValType::I32),
        );
        let resp_write = mb.import_func(
            "env",
            "response_write",
            &[ValType::I32, ValType::I32],
            Some(ValType::I32),
        );
        let mut f = FuncBuilder::new(&[], Some(ValType::I32));
        let iters = f.local(ValType::I32);
        let i = f.local(ValType::I32);
        let acc = f.local(ValType::I32);
        f.extend([
            exec(call(req_read, vec![i32c(0), i32c(4), i32c(0)])),
            set(iters, load(Scalar::I32, i32c(0), 0)),
            for_loop(
                i,
                i32c(0),
                lt_u(local(i), local(iters)),
                1,
                vec![set(acc, add(mul(local(acc), i32c(31)), local(i)))],
            ),
            store(Scalar::I32, i32c(8), 0, local(acc)),
            store(Scalar::U8, i32c(16), 0, i32c('d' as i32)),
            exec(call(resp_write, vec![i32c(16), i32c(1)])),
            ret(Some(i32c(0))),
        ]);
        let main = mb.add_func("main", f);
        mb.export_func(main, "main");
        mb.build().unwrap()
    }

    /// Block on emulated async I/O for N microseconds (first 4 body bytes).
    pub fn io_sleeper() -> Module {
        let mut mb = ModuleBuilder::new("sleeper");
        mb.memory(1, Some(1));
        let req_read = mb.import_func(
            "env",
            "request_read",
            &[ValType::I32, ValType::I32, ValType::I32],
            Some(ValType::I32),
        );
        let io_delay = mb.import_func("env", "io_delay", &[ValType::I32], Some(ValType::I32));
        let resp_write = mb.import_func(
            "env",
            "response_write",
            &[ValType::I32, ValType::I32],
            Some(ValType::I32),
        );
        let mut f = FuncBuilder::new(&[], Some(ValType::I32));
        f.extend([
            exec(call(req_read, vec![i32c(0), i32c(4), i32c(0)])),
            exec(call(io_delay, vec![load(Scalar::I32, i32c(0), 0)])),
            store(Scalar::U8, i32c(16), 0, i32c('w' as i32)),
            exec(call(resp_write, vec![i32c(16), i32c(1)])),
            ret(Some(i32c(0))),
        ]);
        let main = mb.add_func("main", f);
        mb.export_func(main, "main");
        mb.build().unwrap()
    }

    /// Run forever (runaway guest).
    pub fn infinite() -> Module {
        let mut mb = ModuleBuilder::new("infinite");
        mb.memory(1, Some(1));
        let mut f = FuncBuilder::new(&[], Some(ValType::I32));
        let i = f.local(ValType::I32);
        f.extend([
            while_(i32c(1), vec![set(i, add(local(i), i32c(1)))]),
            ret(Some(local(i))),
        ]);
        let main = mb.add_func("main", f);
        mb.export_func(main, "main");
        mb.build().unwrap()
    }
}

/// The core accounting invariant: the per-phase durations are disjoint
/// sub-intervals of [arrival, delivery], so their sum can never exceed the
/// end-to-end wall time.
fn assert_accounted(t: &Timings, ctx: &str) {
    let sum = t.instantiation + t.queue_delay + t.execution + t.preempted + t.blocked;
    assert!(
        sum <= t.total,
        "{ctx}: phase sum {sum:?} exceeds total {t:?}"
    );
}

// ---------------------------------------------------------------------------
// Accounting invariants
// ---------------------------------------------------------------------------

#[test]
fn phase_sum_bounded_by_wall_time() {
    let rt = Runtime::new(RuntimeConfig {
        workers: 2,
        quantum: Duration::from_millis(1),
        quantum_fuel: Some(50_000),
        ..Default::default()
    });
    let echo = rt
        .register_module(FunctionConfig::new("echo"), &guests::echo())
        .unwrap();
    let spin = rt
        .register_module(FunctionConfig::new("spin"), &guests::spin())
        .unwrap();
    let sleeper = rt
        .register_module(FunctionConfig::new("sleeper"), &guests::io_sleeper())
        .unwrap();

    let mut handles = Vec::new();
    for i in 0..60u32 {
        handles.push(match i % 3 {
            0 => rt.invoke(echo, &b"hello"[..]),
            // Spins long enough to be preempted at least once under the
            // small fuel budget.
            1 => rt.invoke(spin, 400_000u32.to_le_bytes().to_vec()),
            // Parks on emulated I/O for 3 ms.
            _ => rt.invoke(sleeper, 3000u32.to_le_bytes().to_vec()),
        });
    }
    let mut preempted_seen = false;
    let mut blocked_seen = false;
    for (i, h) in handles.into_iter().enumerate() {
        let done = h.wait().expect("completion");
        assert!(
            matches!(done.outcome, Outcome::Success(_)),
            "#{i}: {:?}",
            done.outcome
        );
        assert_accounted(&done.timings, &format!("invocation {i}"));
        assert!(
            done.timings.execution > Duration::ZERO,
            "#{i}: no exec time"
        );
        preempted_seen |= done.timings.preempted > Duration::ZERO;
        blocked_seen |= done.timings.blocked > Duration::ZERO;
    }
    assert!(preempted_seen, "no invocation accumulated preempted time");
    assert!(blocked_seen, "no invocation accumulated blocked time");
    rt.shutdown();
}

#[test]
fn phase_counters_match_outcome() {
    // TimedOut implies the deadline genuinely elapsed: end-to-end wall time
    // must be at least the configured deadline.
    let deadline = Duration::from_millis(60);
    let rt = Runtime::new(RuntimeConfig {
        workers: 1,
        quantum: Duration::from_millis(2),
        quantum_fuel: Some(100_000),
        deadline: Some(deadline),
        ..Default::default()
    });
    let inf = rt
        .register_module(FunctionConfig::new("infinite"), &guests::infinite())
        .unwrap();
    let echo = rt
        .register_module(FunctionConfig::new("echo"), &guests::echo())
        .unwrap();

    let killed = rt.invoke(inf, Vec::new()).wait().expect("completion");
    assert!(
        matches!(killed.outcome, Outcome::TimedOut),
        "{:?}",
        killed.outcome
    );
    assert_accounted(&killed.timings, "timed-out invocation");
    assert!(
        killed.timings.total >= deadline,
        "TimedOut but total {:?} < deadline {:?}",
        killed.timings.total,
        deadline
    );
    // A runaway guest burns its whole life executing or waiting to be
    // rescheduled; it must have accumulated real execution time.
    assert!(killed.timings.execution > Duration::ZERO);

    let ok = rt.invoke(echo, &b"x"[..]).wait().expect("completion");
    assert!(matches!(ok.outcome, Outcome::Success(_)));
    assert!(ok.timings.total < deadline, "success outlived its deadline");
    rt.shutdown();
}

// ---------------------------------------------------------------------------
// Shard completeness under multi-worker chaos
// ---------------------------------------------------------------------------

#[test]
fn stress_loses_no_samples() {
    // 4 workers × 300 invocations with preemption, blocking I/O, traps,
    // injected instantiation failures, and deadline kills. Every executed
    // invocation must land in exactly one worker shard: the merged
    // histogram count equals completed + trapped + timed_out.
    let rt = Runtime::new(RuntimeConfig {
        workers: 4,
        quantum: Duration::from_millis(1),
        quantum_fuel: Some(50_000),
        deadline: Some(Duration::from_millis(250)),
        fault_plan: Some(FaultPlan {
            seed: 7,
            instantiation_failure_pct: 10.0,
            host_trap_pct: 10.0,
            host_latency_pct: 10.0,
            host_latency: Duration::from_millis(2),
            ..Default::default()
        }),
        ..Default::default()
    });
    let echo = rt
        .register_module(FunctionConfig::new("echo"), &guests::echo())
        .unwrap();
    let spin = rt
        .register_module(FunctionConfig::new("spin"), &guests::spin())
        .unwrap();
    let sleeper = rt
        .register_module(FunctionConfig::new("sleeper"), &guests::io_sleeper())
        .unwrap();

    const M: usize = 300;
    let completions: Vec<Completion> = std::thread::scope(|s| {
        let mut handles = Vec::new();
        for c in 0..4usize {
            let rt = &rt;
            handles.push(s.spawn(move || {
                let mut done = Vec::new();
                for i in 0..M / 4 {
                    let h = match (c + i) % 3 {
                        0 => rt.invoke(echo, &b"hello"[..]),
                        1 => rt.invoke(spin, 200_000u32.to_le_bytes().to_vec()),
                        _ => rt.invoke(sleeper, 1500u32.to_le_bytes().to_vec()),
                    };
                    done.push(h.wait().expect("completion"));
                }
                done
            }));
        }
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    });
    assert_eq!(completions.len(), M);

    let stats = rt.stats();
    let report = rt.latency_report();
    rt.shutdown();

    let executed = stats.completed + stats.trapped + stats.timed_out;
    assert!(executed > 0, "chaos run executed nothing");
    assert!(stats.rejected > 0, "fault plan injected no rejections");
    assert_eq!(
        report.global.count(),
        executed,
        "merged histogram lost samples: {} recorded vs {} executed",
        report.global.count(),
        executed
    );
    // Every phase histogram carries the full sample count — one record per
    // phase per invocation.
    for (phase, h) in report.global.phases() {
        assert_eq!(h.count(), executed, "phase {phase} lost samples");
    }
    // Per-function shards partition the global count.
    let per_fn_total: u64 = report.per_function.iter().map(|(_, p)| p.count()).sum();
    assert_eq!(per_fn_total, executed);
    // And the accounting invariant held for every delivered completion.
    for (i, c) in completions.iter().enumerate() {
        if matches!(
            c.outcome,
            Outcome::Success(_) | Outcome::Trapped(_) | Outcome::TimedOut
        ) {
            assert_accounted(&c.timings, &format!("chaos invocation {i}"));
        }
    }
}

// ---------------------------------------------------------------------------
// Admission rejections and phase accounting
// ---------------------------------------------------------------------------

#[test]
fn rejected_requests_record_no_phase_samples() {
    // A throttled request never reaches a worker, so it must not land in any
    // phase histogram: the merged count stays completed + trapped + timed_out
    // even when admission control is rejecting most of the offered load.
    let rt = Runtime::new(RuntimeConfig {
        workers: 2,
        ..Default::default()
    });
    let mut cfg = FunctionConfig::new("echo");
    // ~150 cost units/s of budget: the full bucket covers roughly one
    // admission charge, so sequential requests drain it immediately and the
    // trickle refill cannot keep up.
    cfg.budget_us_per_s = Some(1);
    let echo = rt.register_module(cfg, &guests::echo()).unwrap();

    let mut succeeded = 0u64;
    let mut throttled = 0u64;
    for i in 0..24 {
        let done = rt.invoke(echo, &b"hi"[..]).wait().expect("completion");
        match done.outcome {
            Outcome::Success(_) => succeeded += 1,
            Outcome::Throttled { retry_after, why } => {
                assert!(retry_after > Duration::ZERO, "#{i}: empty back-off hint");
                assert!(why.contains("budget"), "#{i}: {why}");
                throttled += 1;
            }
            other => panic!("#{i}: unexpected outcome {other:?}"),
        }
    }
    assert!(succeeded >= 1, "bucket never admitted anything");
    assert!(throttled > 0, "tiny budget produced no throttles");

    let stats = rt.stats();
    let report = rt.latency_report();
    rt.shutdown();

    assert_eq!(stats.completed, succeeded);
    assert_eq!(stats.budget_rejected, throttled);
    let executed = stats.completed + stats.trapped + stats.timed_out;
    assert_eq!(
        report.global.count(),
        executed,
        "throttled requests leaked histogram samples"
    );
    for (phase, h) in report.global.phases() {
        assert_eq!(
            h.count(),
            executed,
            "phase {phase} counted a rejected request"
        );
    }
    let per_fn_total: u64 = report.per_function.iter().map(|(_, p)| p.count()).sum();
    assert_eq!(per_fn_total, executed);
    // The admission report is armed (a budget is set) and agrees.
    let adm = report.admission.expect("admission report armed");
    let (_, snap) = adm
        .per_function
        .iter()
        .find(|(name, _)| name == "echo")
        .expect("echo snapshot");
    assert_eq!(snap.admitted, succeeded);
    assert_eq!(snap.budget_rejected, throttled);
}

// ---------------------------------------------------------------------------
// HTTP endpoints
// ---------------------------------------------------------------------------

fn http_get(addr: std::net::SocketAddr, path: &str) -> (u16, String) {
    let mut s = std::net::TcpStream::connect(addr).unwrap();
    s.write_all(format!("GET {path} HTTP/1.1\r\nConnection: close\r\n\r\n").as_bytes())
        .unwrap();
    let mut buf = Vec::new();
    s.read_to_end(&mut buf).unwrap();
    let text = String::from_utf8_lossy(&buf).into_owned();
    let status: u16 = text
        .split_whitespace()
        .nth(1)
        .and_then(|c| c.parse().ok())
        .expect("status code");
    let body = text
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

#[test]
fn metrics_and_stats_endpoints() {
    let rt = Runtime::with_http(
        RuntimeConfig {
            workers: 2,
            ..Default::default()
        },
        "127.0.0.1:0".parse().unwrap(),
    )
    .unwrap();
    let addr = rt.http_addr().unwrap();
    let echo = rt
        .register_module(FunctionConfig::new("echo"), &guests::echo())
        .unwrap();
    for _ in 0..20 {
        let done = rt.invoke(echo, &b"ping"[..]).wait().unwrap();
        assert!(matches!(done.outcome, Outcome::Success(_)));
    }

    // Prometheus text: global and per-function p50/p99 for the queue,
    // instantiation, and execution phases.
    let (status, metrics) = http_get(addr, "/metrics");
    assert_eq!(status, 200, "{metrics}");
    for phase in ["queue", "instantiation", "execution"] {
        for q in ["0.5", "0.99"] {
            let global =
                format!("sledge_phase_latency_seconds{{phase=\"{phase}\",quantile=\"{q}\"}} ");
            let per_fn = format!(
                "sledge_phase_latency_seconds{{function=\"echo\",phase=\"{phase}\",quantile=\"{q}\"}} "
            );
            assert!(metrics.contains(&global), "missing {global}\n{metrics}");
            assert!(metrics.contains(&per_fn), "missing {per_fn}\n{metrics}");
        }
    }
    assert!(metrics.contains("sledge_phase_latency_seconds_count{phase=\"total\"} 20"));
    assert!(metrics.contains("sledge_invocations_total{outcome=\"completed\"} 20"));

    // JSON stats: parse and check the same data structurally.
    let (status, stats) = http_get(addr, "/stats");
    assert_eq!(status, 200, "{stats}");
    let doc = sledge_core::parse_json(&stats).expect("valid JSON");
    assert_eq!(
        doc.get("counters")
            .unwrap()
            .get("completed")
            .unwrap()
            .as_u64(),
        Some(20)
    );
    for scope in [
        doc.get("global").unwrap(),
        doc.get("functions").unwrap().get("echo").unwrap(),
    ] {
        for phase in ["queue", "instantiation", "execution", "total"] {
            let p = scope.get(phase).unwrap_or_else(|| panic!("phase {phase}"));
            assert_eq!(p.get("count").unwrap().as_u64(), Some(20), "{phase}");
            let min = p.get("min_ns").unwrap().as_u64().unwrap();
            let max = p.get("max_ns").unwrap().as_u64().unwrap();
            let p50 = p.get("p50_ns").unwrap().as_u64().unwrap();
            let p99 = p.get("p99_ns").unwrap().as_u64().unwrap();
            assert!(min <= p50 && p50 <= p99 && p99 <= max, "{phase}");
        }
    }

    // Function routes still work alongside the metrics routes.
    let mut s = std::net::TcpStream::connect(addr).unwrap();
    s.write_all(b"POST /echo HTTP/1.1\r\nContent-Length: 2\r\nConnection: close\r\n\r\nhi")
        .unwrap();
    let mut buf = Vec::new();
    s.read_to_end(&mut buf).unwrap();
    let text = String::from_utf8_lossy(&buf);
    assert!(text.starts_with("HTTP/1.1 200"), "{text}");
    assert!(text.ends_with("hi"), "{text}");

    // Unknown paths still 404.
    let (status, _) = http_get(addr, "/nope");
    assert_eq!(status, 404);
    rt.shutdown();
}

#[test]
fn metrics_routes_can_be_disabled() {
    let rt = Runtime::with_http(
        RuntimeConfig {
            workers: 1,
            metrics_routes: false,
            ..Default::default()
        },
        "127.0.0.1:0".parse().unwrap(),
    )
    .unwrap();
    let addr = rt.http_addr().unwrap();
    let (status, _) = http_get(addr, "/metrics");
    assert_eq!(status, 404);
    let (status, _) = http_get(addr, "/stats");
    assert_eq!(status, 404);
    rt.shutdown();
}
