//! The WebAssembly MVP instruction set, plus the sign-extension operators.
//!
//! Function bodies are represented as *flat* instruction sequences, exactly
//! as in the binary format: structured constructs (`block`/`loop`/`if`) are
//! opened by their instruction and closed by an explicit [`Instr::End`], with
//! [`Instr::Else`] separating `if` arms. The `awsm` engine later resolves
//! this structure into direct jumps.

use crate::types::ValType;

/// The result type annotation of a `block`, `loop`, or `if`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BlockType {
    /// No result value.
    Empty,
    /// A single result value.
    Value(ValType),
}

impl BlockType {
    /// The single result type, if any.
    pub fn result(self) -> Option<ValType> {
        match self {
            BlockType::Empty => None,
            BlockType::Value(v) => Some(v),
        }
    }
}

/// Alignment/offset immediate of a memory access instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct MemArg {
    /// Expected alignment, as log2 of the byte alignment (a hint only).
    pub align: u32,
    /// Constant byte offset added to the dynamic address.
    pub offset: u32,
}

impl MemArg {
    /// A memarg with the given constant offset and natural alignment hint.
    pub fn offset(offset: u32) -> Self {
        MemArg { align: 0, offset }
    }
}

/// One WebAssembly instruction.
///
/// Variant order follows the numeric opcode space of the spec.
#[derive(Debug, Clone, PartialEq)]
pub enum Instr {
    // Control.
    Unreachable,
    Nop,
    Block(BlockType),
    Loop(BlockType),
    If(BlockType),
    Else,
    End,
    Br(u32),
    BrIf(u32),
    /// Targets followed by the default target.
    BrTable(Vec<u32>, u32),
    Return,
    Call(u32),
    /// Type index of the callee signature (table index is always 0 in MVP).
    CallIndirect(u32),

    // Parametric.
    Drop,
    Select,

    // Variables.
    LocalGet(u32),
    LocalSet(u32),
    LocalTee(u32),
    GlobalGet(u32),
    GlobalSet(u32),

    // Memory loads.
    I32Load(MemArg),
    I64Load(MemArg),
    F32Load(MemArg),
    F64Load(MemArg),
    I32Load8S(MemArg),
    I32Load8U(MemArg),
    I32Load16S(MemArg),
    I32Load16U(MemArg),
    I64Load8S(MemArg),
    I64Load8U(MemArg),
    I64Load16S(MemArg),
    I64Load16U(MemArg),
    I64Load32S(MemArg),
    I64Load32U(MemArg),

    // Memory stores.
    I32Store(MemArg),
    I64Store(MemArg),
    F32Store(MemArg),
    F64Store(MemArg),
    I32Store8(MemArg),
    I32Store16(MemArg),
    I64Store8(MemArg),
    I64Store16(MemArg),
    I64Store32(MemArg),

    MemorySize,
    MemoryGrow,

    // Constants.
    I32Const(i32),
    I64Const(i64),
    F32Const(f32),
    F64Const(f64),

    // i32 comparisons.
    I32Eqz,
    I32Eq,
    I32Ne,
    I32LtS,
    I32LtU,
    I32GtS,
    I32GtU,
    I32LeS,
    I32LeU,
    I32GeS,
    I32GeU,

    // i64 comparisons.
    I64Eqz,
    I64Eq,
    I64Ne,
    I64LtS,
    I64LtU,
    I64GtS,
    I64GtU,
    I64LeS,
    I64LeU,
    I64GeS,
    I64GeU,

    // f32 comparisons.
    F32Eq,
    F32Ne,
    F32Lt,
    F32Gt,
    F32Le,
    F32Ge,

    // f64 comparisons.
    F64Eq,
    F64Ne,
    F64Lt,
    F64Gt,
    F64Le,
    F64Ge,

    // i32 arithmetic.
    I32Clz,
    I32Ctz,
    I32Popcnt,
    I32Add,
    I32Sub,
    I32Mul,
    I32DivS,
    I32DivU,
    I32RemS,
    I32RemU,
    I32And,
    I32Or,
    I32Xor,
    I32Shl,
    I32ShrS,
    I32ShrU,
    I32Rotl,
    I32Rotr,

    // i64 arithmetic.
    I64Clz,
    I64Ctz,
    I64Popcnt,
    I64Add,
    I64Sub,
    I64Mul,
    I64DivS,
    I64DivU,
    I64RemS,
    I64RemU,
    I64And,
    I64Or,
    I64Xor,
    I64Shl,
    I64ShrS,
    I64ShrU,
    I64Rotl,
    I64Rotr,

    // f32 arithmetic.
    F32Abs,
    F32Neg,
    F32Ceil,
    F32Floor,
    F32Trunc,
    F32Nearest,
    F32Sqrt,
    F32Add,
    F32Sub,
    F32Mul,
    F32Div,
    F32Min,
    F32Max,
    F32Copysign,

    // f64 arithmetic.
    F64Abs,
    F64Neg,
    F64Ceil,
    F64Floor,
    F64Trunc,
    F64Nearest,
    F64Sqrt,
    F64Add,
    F64Sub,
    F64Mul,
    F64Div,
    F64Min,
    F64Max,
    F64Copysign,

    // Conversions.
    I32WrapI64,
    I32TruncF32S,
    I32TruncF32U,
    I32TruncF64S,
    I32TruncF64U,
    I64ExtendI32S,
    I64ExtendI32U,
    I64TruncF32S,
    I64TruncF32U,
    I64TruncF64S,
    I64TruncF64U,
    F32ConvertI32S,
    F32ConvertI32U,
    F32ConvertI64S,
    F32ConvertI64U,
    F32DemoteF64,
    F64ConvertI32S,
    F64ConvertI32U,
    F64ConvertI64S,
    F64ConvertI64U,
    F64PromoteF32,
    I32ReinterpretF32,
    I64ReinterpretF64,
    F32ReinterpretI32,
    F64ReinterpretI64,

    // Sign-extension operators (post-MVP but universally supported).
    I32Extend8S,
    I32Extend16S,
    I64Extend8S,
    I64Extend16S,
    I64Extend32S,
}

impl Instr {
    /// `true` for instructions that open a new structured control frame.
    pub fn opens_block(&self) -> bool {
        matches!(self, Instr::Block(_) | Instr::Loop(_) | Instr::If(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_type_result() {
        assert_eq!(BlockType::Empty.result(), None);
        assert_eq!(BlockType::Value(ValType::F64).result(), Some(ValType::F64));
    }

    #[test]
    fn opens_block_classification() {
        assert!(Instr::Block(BlockType::Empty).opens_block());
        assert!(Instr::Loop(BlockType::Empty).opens_block());
        assert!(Instr::If(BlockType::Empty).opens_block());
        assert!(!Instr::End.opens_block());
        assert!(!Instr::I32Add.opens_block());
    }
}
