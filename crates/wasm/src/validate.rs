//! Module validation: the WebAssembly type-checking algorithm.
//!
//! Follows the validation algorithm from the spec appendix: an operand stack
//! of (possibly unknown) value types plus a control stack of frames, with
//! stack-polymorphic typing after unconditional control transfers.

use crate::instr::Instr;
use crate::module::{ConstExpr, ImportKind, Module};
use crate::types::{FuncType, ValType};
use crate::ValidateError;

/// Maximum number of linear-memory pages addressable with 32-bit offsets.
pub const MAX_PAGES: u32 = 65536;

/// Validate a whole module.
///
/// Checks index spaces, limits, constant expressions, export uniqueness, and
/// type-checks every function body.
///
/// # Errors
///
/// Returns the first [`ValidateError`] found.
pub fn validate_module(m: &Module) -> Result<(), ValidateError> {
    // MVP: single-value result types.
    for (i, t) in m.types.iter().enumerate() {
        if t.results.len() > 1 {
            return Err(ValidateError::module(format!(
                "type {i} has {} results; MVP allows at most 1",
                t.results.len()
            )));
        }
    }

    // Import type indices must exist.
    for imp in &m.imports {
        if let ImportKind::Func(t) = imp.kind {
            if t as usize >= m.types.len() {
                return Err(ValidateError::module(format!(
                    "import {}.{} references unknown type {t}",
                    imp.module, imp.name
                )));
            }
        }
    }

    // Function section type indices must exist.
    for (i, t) in m.functions.iter().enumerate() {
        if *t as usize >= m.types.len() {
            return Err(ValidateError::module(format!(
                "function {i} references unknown type {t}"
            )));
        }
    }

    // At most one memory / table; limits well-formed.
    let num_mem = m.memories.len()
        + m.imports
            .iter()
            .filter(|i| matches!(i.kind, ImportKind::Memory(_)))
            .count();
    if num_mem > 1 {
        return Err(ValidateError::module("multiple memories"));
    }
    let num_tab = m.tables.len()
        + m.imports
            .iter()
            .filter(|i| matches!(i.kind, ImportKind::Table(_)))
            .count();
    if num_tab > 1 {
        return Err(ValidateError::module("multiple tables"));
    }
    if let Some(mem) = m.memory() {
        if !mem.limits.is_well_formed() {
            return Err(ValidateError::module("memory limits min > max"));
        }
        if mem.limits.min > MAX_PAGES || mem.limits.max.is_some_and(|x| x > MAX_PAGES) {
            return Err(ValidateError::module("memory limits exceed 4GiB"));
        }
    }
    if let Some(tab) = m.table() {
        if !tab.limits.is_well_formed() {
            return Err(ValidateError::module("table limits min > max"));
        }
    }

    // Globals: initializers must be const and type-correct, and may only
    // reference imported immutable globals.
    let num_imported_globals = m.num_imported_globals();
    for (i, g) in m.globals.iter().enumerate() {
        let init_ty = match g.init {
            ConstExpr::GlobalGet(idx) => {
                if idx >= num_imported_globals {
                    return Err(ValidateError::module(format!(
                        "global {i} initializer references non-imported global {idx}"
                    )));
                }
                let gt = m.global_type(idx).expect("checked above");
                if gt.mutable {
                    return Err(ValidateError::module(format!(
                        "global {i} initializer references mutable global {idx}"
                    )));
                }
                gt.value
            }
            _ => g.init.ty().expect("non-global-get const has a type"),
        };
        if init_ty != g.ty.value {
            return Err(ValidateError::module(format!(
                "global {i} initializer type {init_ty} != declared {}",
                g.ty.value
            )));
        }
    }

    // Exports: unique names, valid indices.
    let mut names = std::collections::HashSet::new();
    for e in &m.exports {
        if !names.insert(e.name.as_str()) {
            return Err(ValidateError::module(format!(
                "duplicate export name {:?}",
                e.name
            )));
        }
        let ok = match e.kind {
            crate::module::ExportKind::Func(i) => i < m.num_funcs(),
            crate::module::ExportKind::Table(i) => i == 0 && num_tab == 1,
            crate::module::ExportKind::Memory(i) => i == 0 && num_mem == 1,
            crate::module::ExportKind::Global(i) => m.global_type(i).is_some(),
        };
        if !ok {
            return Err(ValidateError::module(format!(
                "export {:?} references unknown entity",
                e.name
            )));
        }
    }

    // Start function: must exist with type [] -> [].
    if let Some(s) = m.start {
        let ty = m
            .func_type(s)
            .ok_or_else(|| ValidateError::module(format!("start function {s} unknown")))?;
        if !ty.params.is_empty() || !ty.results.is_empty() {
            return Err(ValidateError::module("start function must be [] -> []"));
        }
    }

    // Element segments.
    for (i, e) in m.elements.iter().enumerate() {
        if num_tab == 0 {
            return Err(ValidateError::module(format!(
                "element segment {i} but no table"
            )));
        }
        check_offset_expr(m, &e.offset, num_imported_globals)
            .map_err(|msg| ValidateError::module(format!("element segment {i}: {msg}")))?;
        for f in &e.funcs {
            if *f >= m.num_funcs() {
                return Err(ValidateError::module(format!(
                    "element segment {i} references unknown function {f}"
                )));
            }
        }
    }

    // Data segments.
    for (i, d) in m.data.iter().enumerate() {
        if num_mem == 0 {
            return Err(ValidateError::module(format!(
                "data segment {i} but no memory"
            )));
        }
        check_offset_expr(m, &d.offset, num_imported_globals)
            .map_err(|msg| ValidateError::module(format!("data segment {i}: {msg}")))?;
    }

    // Function bodies.
    if m.functions.len() != m.code.len() {
        return Err(ValidateError::module(
            "function and code section lengths differ",
        ));
    }
    for (local_idx, (ty_idx, body)) in m.functions.iter().zip(&m.code).enumerate() {
        let func_idx = m.num_imported_funcs() + local_idx as u32;
        let ty = &m.types[*ty_idx as usize];
        validate_body(m, func_idx, ty, body)?;
    }
    Ok(())
}

fn check_offset_expr(m: &Module, e: &ConstExpr, num_imported_globals: u32) -> Result<(), String> {
    let ty = match e {
        ConstExpr::GlobalGet(idx) => {
            if *idx >= num_imported_globals {
                return Err(format!("offset references non-imported global {idx}"));
            }
            let gt = m.global_type(*idx).expect("checked above");
            if gt.mutable {
                return Err(format!("offset references mutable global {idx}"));
            }
            gt.value
        }
        _ => e.ty().expect("const has type"),
    };
    if ty != ValType::I32 {
        return Err(format!("offset type {ty} != i32"));
    }
    Ok(())
}

/// One entry of the control stack.
#[derive(Debug)]
struct Frame {
    /// Result type of the frame.
    result: Option<ValType>,
    /// Branch-target type: what a `br` to this label must provide
    /// (the result for blocks/ifs, nothing for loops).
    label_ty: Option<ValType>,
    /// Operand-stack height at frame entry.
    height: usize,
    /// Whether the rest of the frame is unreachable.
    unreachable: bool,
    /// Whether this frame is an `if` awaiting its `else`.
    is_if: bool,
}

/// The type-checker for one function body.
struct Checker<'m> {
    module: &'m Module,
    func: u32,
    /// `None` entries represent the unknown type (after `unreachable`).
    stack: Vec<Option<ValType>>,
    ctrl: Vec<Frame>,
    locals: Vec<ValType>,
}

impl<'m> Checker<'m> {
    fn err(&self, msg: impl Into<String>) -> ValidateError {
        ValidateError::in_func(self.func, msg)
    }

    fn push(&mut self, t: ValType) {
        self.stack.push(Some(t));
    }

    fn push_unknown(&mut self) {
        self.stack.push(None);
    }

    fn pop_any(&mut self) -> Result<Option<ValType>, ValidateError> {
        let frame = self.ctrl.last().expect("control stack never empty");
        if self.stack.len() == frame.height {
            if frame.unreachable {
                return Ok(None);
            }
            return Err(self.err("operand stack underflow"));
        }
        Ok(self.stack.pop().expect("checked non-empty"))
    }

    fn pop_expect(&mut self, want: ValType) -> Result<(), ValidateError> {
        match self.pop_any()? {
            None => Ok(()),
            Some(got) if got == want => Ok(()),
            Some(got) => Err(self.err(format!("expected {want}, found {got}"))),
        }
    }

    fn set_unreachable(&mut self) {
        let frame = self.ctrl.last_mut().expect("control stack never empty");
        frame.unreachable = true;
        let h = frame.height;
        self.stack.truncate(h);
    }

    fn label_ty(&self, depth: u32) -> Result<Option<ValType>, ValidateError> {
        let idx = self
            .ctrl
            .len()
            .checked_sub(1 + depth as usize)
            .ok_or_else(|| self.err(format!("branch depth {depth} out of range")))?;
        Ok(self.ctrl[idx].label_ty)
    }

    fn local_ty(&self, idx: u32) -> Result<ValType, ValidateError> {
        self.locals
            .get(idx as usize)
            .copied()
            .ok_or_else(|| self.err(format!("unknown local {idx}")))
    }

    fn branch_to(&mut self, depth: u32) -> Result<(), ValidateError> {
        if let Some(t) = self.label_ty(depth)? {
            self.pop_expect(t)?;
        }
        Ok(())
    }

    fn require_memory(&self) -> Result<(), ValidateError> {
        if self.module.memory().is_none() {
            return Err(self.err("memory instruction without memory"));
        }
        Ok(())
    }
}

fn validate_body(
    m: &Module,
    func: u32,
    ty: &FuncType,
    body: &crate::module::FuncBody,
) -> Result<(), ValidateError> {
    let mut locals = ty.params.clone();
    locals.extend_from_slice(&body.locals);
    let mut c = Checker {
        module: m,
        func,
        stack: Vec::new(),
        ctrl: vec![Frame {
            result: ty.result(),
            label_ty: ty.result(),
            height: 0,
            unreachable: false,
            is_if: false,
        }],
        locals,
    };

    use Instr::*;
    for (pc, ins) in body.instrs.iter().enumerate() {
        match ins {
            Unreachable => c.set_unreachable(),
            Nop => {}
            Block(bt) => {
                let h = c.stack.len();
                c.ctrl.push(Frame {
                    result: bt.result(),
                    label_ty: bt.result(),
                    height: h,
                    unreachable: false,
                    is_if: false,
                });
            }
            Loop(bt) => {
                let h = c.stack.len();
                c.ctrl.push(Frame {
                    result: bt.result(),
                    // Branching to a loop label targets the loop *head*,
                    // which takes no values in the MVP.
                    label_ty: None,
                    height: h,
                    unreachable: false,
                    is_if: false,
                });
            }
            If(bt) => {
                c.pop_expect(ValType::I32)?;
                let h = c.stack.len();
                c.ctrl.push(Frame {
                    result: bt.result(),
                    label_ty: bt.result(),
                    height: h,
                    unreachable: false,
                    is_if: true,
                });
            }
            Else => {
                let frame = c.ctrl.last().ok_or_else(|| c.err("else without if"))?;
                if !frame.is_if {
                    return Err(c.err("else without if"));
                }
                let (result, height) = (frame.result, frame.height);
                // The then-arm must end having produced the result.
                if !frame.unreachable {
                    if let Some(t) = result {
                        c.pop_expect(t)?;
                    }
                    if c.stack.len() != height {
                        return Err(c.err(format!("then-arm leaves extra operands at pc {pc}")));
                    }
                } else {
                    c.stack.truncate(height);
                }
                let frame = c.ctrl.last_mut().expect("just checked");
                frame.unreachable = false;
                frame.is_if = false;
            }
            End => {
                let frame = c.ctrl.last().expect("control stack never empty");
                let (result, height, unreachable, is_if) =
                    (frame.result, frame.height, frame.unreachable, frame.is_if);
                // `if` without `else` must have an empty result type.
                if is_if && result.is_some() {
                    return Err(c.err("if with result type but no else"));
                }
                if !unreachable {
                    if let Some(t) = result {
                        c.pop_expect(t)?;
                    }
                    if c.stack.len() != height {
                        return Err(c.err(format!(
                            "block leaves {} extra operands at pc {pc}",
                            c.stack.len() - height
                        )));
                    }
                } else {
                    c.stack.truncate(height);
                }
                c.ctrl.pop();
                if c.ctrl.is_empty() {
                    // Function-level end: the result (if any) was popped.
                    if pc + 1 != body.instrs.len() {
                        return Err(c.err("instructions after function end"));
                    }
                    return Ok(());
                }
                if let Some(t) = result {
                    c.push(t);
                }
            }
            Br(depth) => {
                c.branch_to(*depth)?;
                c.set_unreachable();
            }
            BrIf(depth) => {
                c.pop_expect(ValType::I32)?;
                if let Some(t) = c.label_ty(*depth)? {
                    c.pop_expect(t)?;
                    c.push(t);
                }
            }
            BrTable(targets, default) => {
                c.pop_expect(ValType::I32)?;
                let want = c.label_ty(*default)?;
                for t in targets {
                    if c.label_ty(*t)? != want {
                        return Err(c.err("br_table arms have mismatched label types"));
                    }
                }
                if let Some(t) = want {
                    c.pop_expect(t)?;
                }
                c.set_unreachable();
            }
            Return => {
                if let Some(t) = ty.result() {
                    c.pop_expect(t)?;
                }
                c.set_unreachable();
            }
            Call(f) => {
                let callee = m
                    .func_type(*f)
                    .ok_or_else(|| c.err(format!("call to unknown function {f}")))?
                    .clone();
                for p in callee.params.iter().rev() {
                    c.pop_expect(*p)?;
                }
                if let Some(r) = callee.result() {
                    c.push(r);
                }
            }
            CallIndirect(t) => {
                if m.table().is_none() {
                    return Err(c.err("call_indirect without table"));
                }
                let callee = m
                    .types
                    .get(*t as usize)
                    .ok_or_else(|| c.err(format!("call_indirect to unknown type {t}")))?
                    .clone();
                c.pop_expect(ValType::I32)?;
                for p in callee.params.iter().rev() {
                    c.pop_expect(*p)?;
                }
                if let Some(r) = callee.result() {
                    c.push(r);
                }
            }
            Drop => {
                c.pop_any()?;
            }
            Select => {
                c.pop_expect(ValType::I32)?;
                let a = c.pop_any()?;
                let b = c.pop_any()?;
                match (a, b) {
                    (Some(x), Some(y)) if x != y => {
                        return Err(c.err("select arms have different types"))
                    }
                    (Some(x), _) | (_, Some(x)) => c.push(x),
                    (None, None) => c.push_unknown(),
                }
            }
            LocalGet(i) => {
                let t = c.local_ty(*i)?;
                c.push(t);
            }
            LocalSet(i) => {
                let t = c.local_ty(*i)?;
                c.pop_expect(t)?;
            }
            LocalTee(i) => {
                let t = c.local_ty(*i)?;
                c.pop_expect(t)?;
                c.push(t);
            }
            GlobalGet(i) => {
                let g = c
                    .module
                    .global_type(*i)
                    .ok_or_else(|| c.err(format!("unknown global {i}")))?;
                c.push(g.value);
            }
            GlobalSet(i) => {
                let g = c
                    .module
                    .global_type(*i)
                    .ok_or_else(|| c.err(format!("unknown global {i}")))?;
                if !g.mutable {
                    return Err(c.err(format!("global.set of immutable global {i}")));
                }
                c.pop_expect(g.value)?;
            }
            I32Load(a) | I32Load8S(a) | I32Load8U(a) | I32Load16S(a) | I32Load16U(a) => {
                c.require_memory()?;
                check_align(&c, a.align, natural_align(ins))?;
                c.pop_expect(ValType::I32)?;
                c.push(ValType::I32);
            }
            I64Load(a) | I64Load8S(a) | I64Load8U(a) | I64Load16S(a) | I64Load16U(a)
            | I64Load32S(a) | I64Load32U(a) => {
                c.require_memory()?;
                check_align(&c, a.align, natural_align(ins))?;
                c.pop_expect(ValType::I32)?;
                c.push(ValType::I64);
            }
            F32Load(a) => {
                c.require_memory()?;
                check_align(&c, a.align, 2)?;
                c.pop_expect(ValType::I32)?;
                c.push(ValType::F32);
            }
            F64Load(a) => {
                c.require_memory()?;
                check_align(&c, a.align, 3)?;
                c.pop_expect(ValType::I32)?;
                c.push(ValType::F64);
            }
            I32Store(a) | I32Store8(a) | I32Store16(a) => {
                c.require_memory()?;
                check_align(&c, a.align, natural_align(ins))?;
                c.pop_expect(ValType::I32)?;
                c.pop_expect(ValType::I32)?;
            }
            I64Store(a) | I64Store8(a) | I64Store16(a) | I64Store32(a) => {
                c.require_memory()?;
                check_align(&c, a.align, natural_align(ins))?;
                c.pop_expect(ValType::I64)?;
                c.pop_expect(ValType::I32)?;
            }
            F32Store(a) => {
                c.require_memory()?;
                check_align(&c, a.align, 2)?;
                c.pop_expect(ValType::F32)?;
                c.pop_expect(ValType::I32)?;
            }
            F64Store(a) => {
                c.require_memory()?;
                check_align(&c, a.align, 3)?;
                c.pop_expect(ValType::F64)?;
                c.pop_expect(ValType::I32)?;
            }
            MemorySize => {
                c.require_memory()?;
                c.push(ValType::I32);
            }
            MemoryGrow => {
                c.require_memory()?;
                c.pop_expect(ValType::I32)?;
                c.push(ValType::I32);
            }
            I32Const(_) => c.push(ValType::I32),
            I64Const(_) => c.push(ValType::I64),
            F32Const(_) => c.push(ValType::F32),
            F64Const(_) => c.push(ValType::F64),
            _ => {
                // Pure numeric instructions, described by signature.
                let (params, result) = numeric_signature(ins)
                    .ok_or_else(|| c.err(format!("unhandled instruction {ins:?}")))?;
                for p in params.iter().rev() {
                    c.pop_expect(*p)?;
                }
                c.push(result);
            }
        }
    }
    Err(ValidateError::in_func(
        func,
        "function body not terminated by end",
    ))
}

fn check_align(c: &Checker<'_>, align: u32, natural: u32) -> Result<(), ValidateError> {
    if align > natural {
        return Err(c.err(format!(
            "alignment 2^{align} exceeds natural alignment 2^{natural}"
        )));
    }
    Ok(())
}

fn natural_align(ins: &Instr) -> u32 {
    use Instr::*;
    match ins {
        I32Load8S(_) | I32Load8U(_) | I64Load8S(_) | I64Load8U(_) | I32Store8(_) | I64Store8(_) => {
            0
        }
        I32Load16S(_) | I32Load16U(_) | I64Load16S(_) | I64Load16U(_) | I32Store16(_)
        | I64Store16(_) => 1,
        I32Load(_) | F32Load(_) | I64Load32S(_) | I64Load32U(_) | I32Store(_) | F32Store(_)
        | I64Store32(_) => 2,
        I64Load(_) | F64Load(_) | I64Store(_) | F64Store(_) => 3,
        _ => 0,
    }
}

/// Signature of a pure numeric instruction: `(params, result)`.
fn numeric_signature(ins: &Instr) -> Option<(Vec<ValType>, ValType)> {
    use Instr::*;
    use ValType::*;
    Some(match ins {
        I32Eqz => (vec![I32], I32),
        I64Eqz => (vec![I64], I32),
        I32Eq | I32Ne | I32LtS | I32LtU | I32GtS | I32GtU | I32LeS | I32LeU | I32GeS | I32GeU => {
            (vec![I32, I32], I32)
        }
        I64Eq | I64Ne | I64LtS | I64LtU | I64GtS | I64GtU | I64LeS | I64LeU | I64GeS | I64GeU => {
            (vec![I64, I64], I32)
        }
        F32Eq | F32Ne | F32Lt | F32Gt | F32Le | F32Ge => (vec![F32, F32], I32),
        F64Eq | F64Ne | F64Lt | F64Gt | F64Le | F64Ge => (vec![F64, F64], I32),
        I32Clz | I32Ctz | I32Popcnt | I32Extend8S | I32Extend16S => (vec![I32], I32),
        I32Add | I32Sub | I32Mul | I32DivS | I32DivU | I32RemS | I32RemU | I32And | I32Or
        | I32Xor | I32Shl | I32ShrS | I32ShrU | I32Rotl | I32Rotr => (vec![I32, I32], I32),
        I64Clz | I64Ctz | I64Popcnt | I64Extend8S | I64Extend16S | I64Extend32S => (vec![I64], I64),
        I64Add | I64Sub | I64Mul | I64DivS | I64DivU | I64RemS | I64RemU | I64And | I64Or
        | I64Xor | I64Shl | I64ShrS | I64ShrU | I64Rotl | I64Rotr => (vec![I64, I64], I64),
        F32Abs | F32Neg | F32Ceil | F32Floor | F32Trunc | F32Nearest | F32Sqrt => (vec![F32], F32),
        F32Add | F32Sub | F32Mul | F32Div | F32Min | F32Max | F32Copysign => (vec![F32, F32], F32),
        F64Abs | F64Neg | F64Ceil | F64Floor | F64Trunc | F64Nearest | F64Sqrt => (vec![F64], F64),
        F64Add | F64Sub | F64Mul | F64Div | F64Min | F64Max | F64Copysign => (vec![F64, F64], F64),
        I32WrapI64 => (vec![I64], I32),
        I32TruncF32S | I32TruncF32U | I32ReinterpretF32 => (vec![F32], I32),
        I32TruncF64S | I32TruncF64U => (vec![F64], I32),
        I64ExtendI32S | I64ExtendI32U => (vec![I32], I64),
        I64TruncF32S | I64TruncF32U => (vec![F32], I64),
        I64TruncF64S | I64TruncF64U | I64ReinterpretF64 => (vec![F64], I64),
        F32ConvertI32S | F32ConvertI32U | F32ReinterpretI32 => (vec![I32], F32),
        F32ConvertI64S | F32ConvertI64U => (vec![I64], F32),
        F32DemoteF64 => (vec![F64], F32),
        F64ConvertI32S | F64ConvertI32U => (vec![I32], F64),
        F64ConvertI64S | F64ConvertI64U => (vec![I64], F64),
        F64PromoteF32 => (vec![F32], F64),
        F64ReinterpretI64 => (vec![I64], F64),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::MemArg;
    use crate::module::{Export, FuncBody};
    use crate::types::{FuncType, Limits, MemoryType};

    fn module_with_body(
        params: Vec<ValType>,
        results: Vec<ValType>,
        locals: Vec<ValType>,
        instrs: Vec<Instr>,
    ) -> Module {
        let mut m = Module::new();
        m.memories.push(MemoryType {
            limits: Limits::at_least(1),
        });
        let t = m.push_type(FuncType::new(params, results));
        let f = m.push_function(t, FuncBody::new(locals, instrs));
        m.exports.push(Export::func("main", f));
        m
    }

    #[test]
    fn accepts_simple_arithmetic() {
        use Instr::*;
        let m = module_with_body(
            vec![ValType::I32, ValType::I32],
            vec![ValType::I32],
            vec![],
            vec![LocalGet(0), LocalGet(1), I32Add, End],
        );
        validate_module(&m).unwrap();
    }

    #[test]
    fn rejects_type_mismatch() {
        use Instr::*;
        let m = module_with_body(vec![], vec![ValType::I32], vec![], vec![F64Const(1.0), End]);
        assert!(validate_module(&m).is_err());
    }

    #[test]
    fn rejects_stack_underflow() {
        use Instr::*;
        let m = module_with_body(vec![], vec![ValType::I32], vec![], vec![I32Add, End]);
        assert!(validate_module(&m).is_err());
    }

    #[test]
    fn rejects_unknown_local() {
        use Instr::*;
        let m = module_with_body(vec![], vec![], vec![], vec![LocalGet(3), Drop, End]);
        assert!(validate_module(&m).is_err());
    }

    #[test]
    fn accepts_unreachable_polymorphism() {
        use Instr::*;
        // After `unreachable`, any operands may be conjured.
        let m = module_with_body(
            vec![],
            vec![ValType::I32],
            vec![],
            vec![Unreachable, I32Add, End],
        );
        validate_module(&m).unwrap();
    }

    #[test]
    fn accepts_if_else_with_result() {
        use crate::instr::BlockType;
        use Instr::*;
        let m = module_with_body(
            vec![ValType::I32],
            vec![ValType::I32],
            vec![],
            vec![
                LocalGet(0),
                If(BlockType::Value(ValType::I32)),
                I32Const(1),
                Else,
                I32Const(2),
                End,
                End,
            ],
        );
        validate_module(&m).unwrap();
    }

    #[test]
    fn rejects_if_with_result_but_no_else() {
        use crate::instr::BlockType;
        use Instr::*;
        let m = module_with_body(
            vec![ValType::I32],
            vec![ValType::I32],
            vec![],
            vec![
                LocalGet(0),
                If(BlockType::Value(ValType::I32)),
                I32Const(1),
                End,
                End,
            ],
        );
        assert!(validate_module(&m).is_err());
    }

    #[test]
    fn loop_label_takes_no_values() {
        use crate::instr::BlockType;
        use Instr::*;
        // `br 0` inside a loop targets the loop head: no value expected even
        // though the loop produces one.
        let m = module_with_body(
            vec![],
            vec![ValType::I32],
            vec![],
            vec![Loop(BlockType::Value(ValType::I32)), Br(0), End, End],
        );
        validate_module(&m).unwrap();
    }

    #[test]
    fn rejects_branch_depth_out_of_range() {
        use Instr::*;
        let m = module_with_body(vec![], vec![], vec![], vec![Br(5), End]);
        assert!(validate_module(&m).is_err());
    }

    #[test]
    fn rejects_memory_op_without_memory() {
        use Instr::*;
        let mut m = module_with_body(
            vec![],
            vec![ValType::I32],
            vec![],
            vec![I32Const(0), I32Load(MemArg::default()), End],
        );
        m.memories.clear();
        assert!(validate_module(&m).is_err());
    }

    #[test]
    fn rejects_overaligned_access() {
        use Instr::*;
        let m = module_with_body(
            vec![],
            vec![ValType::I32],
            vec![],
            vec![
                I32Const(0),
                I32Load(MemArg {
                    align: 3,
                    offset: 0,
                }),
                End,
            ],
        );
        assert!(validate_module(&m).is_err());
    }

    #[test]
    fn rejects_duplicate_export_names() {
        let mut m = module_with_body(vec![], vec![], vec![], vec![Instr::End]);
        m.exports.push(Export::func("main", 0));
        assert!(validate_module(&m).is_err());
    }

    #[test]
    fn rejects_global_set_immutable() {
        use Instr::*;
        let mut m = module_with_body(vec![], vec![], vec![], vec![I32Const(1), GlobalSet(0), End]);
        m.globals.push(crate::module::Global {
            ty: crate::types::GlobalType {
                value: ValType::I32,
                mutable: false,
            },
            init: ConstExpr::I32(0),
        });
        assert!(validate_module(&m).is_err());
    }

    #[test]
    fn rejects_multiple_memories() {
        let mut m = module_with_body(vec![], vec![], vec![], vec![Instr::End]);
        m.memories.push(MemoryType {
            limits: Limits::at_least(1),
        });
        assert!(validate_module(&m).is_err());
    }

    #[test]
    fn rejects_unterminated_body() {
        let m = module_with_body(vec![], vec![], vec![], vec![Instr::Nop]);
        assert!(validate_module(&m).is_err());
    }

    #[test]
    fn rejects_select_type_mismatch() {
        use Instr::*;
        let m = module_with_body(
            vec![],
            vec![],
            vec![],
            vec![I32Const(1), F64Const(2.0), I32Const(0), Select, Drop, End],
        );
        assert!(validate_module(&m).is_err());
    }

    #[test]
    fn br_table_checks_all_arms() {
        use crate::instr::BlockType;
        use Instr::*;
        // Outer block yields i32, inner yields nothing: arms disagree.
        let m = module_with_body(
            vec![ValType::I32],
            vec![ValType::I32],
            vec![],
            vec![
                Block(BlockType::Value(ValType::I32)),
                Block(BlockType::Empty),
                LocalGet(0),
                BrTable(vec![0], 1),
                End,
                I32Const(1),
                End,
                End,
            ],
        );
        assert!(validate_module(&m).is_err());
    }
}
