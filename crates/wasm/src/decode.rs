//! Parse the WebAssembly binary format back into a [`Module`].

use crate::instr::{BlockType, Instr, MemArg};
use crate::leb128;
use crate::module::{
    ConstExpr, DataSegment, ElementSegment, Export, ExportKind, FuncBody, Import, ImportKind,
    Module,
};
use crate::types::{GlobalType, Limits, MemoryType, TableType, ValType};
use crate::DecodeError;

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    fn err(&self, msg: impl Into<String>) -> DecodeError {
        DecodeError::new(self.pos, msg)
    }

    fn done(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    fn byte(&mut self) -> Result<u8, DecodeError> {
        let b = *self
            .bytes
            .get(self.pos)
            .ok_or_else(|| self.err("unexpected end of input"))?;
        self.pos += 1;
        Ok(b)
    }

    fn slice(&mut self, len: usize) -> Result<&'a [u8], DecodeError> {
        let end = self
            .pos
            .checked_add(len)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| self.err("slice past end of input"))?;
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        let (v, n) = leb128::read_u32(self.bytes, self.pos)?;
        self.pos += n;
        Ok(v)
    }

    fn i32(&mut self) -> Result<i32, DecodeError> {
        let (v, n) = leb128::read_i32(self.bytes, self.pos)?;
        self.pos += n;
        Ok(v)
    }

    fn i64(&mut self) -> Result<i64, DecodeError> {
        let (v, n) = leb128::read_i64(self.bytes, self.pos)?;
        self.pos += n;
        Ok(v)
    }

    fn f32(&mut self) -> Result<f32, DecodeError> {
        let s = self.slice(4)?;
        Ok(f32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }

    fn f64(&mut self) -> Result<f64, DecodeError> {
        let s = self.slice(8)?;
        Ok(f64::from_le_bytes([
            s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7],
        ]))
    }

    fn name(&mut self) -> Result<String, DecodeError> {
        let len = self.u32()? as usize;
        let pos = self.pos;
        let bytes = self.slice(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| DecodeError::new(pos, "name is not valid UTF-8"))
    }

    fn valtype(&mut self) -> Result<ValType, DecodeError> {
        let b = self.byte()?;
        ValType::from_byte(b).ok_or_else(|| self.err(format!("invalid value type 0x{b:02x}")))
    }

    fn limits(&mut self) -> Result<Limits, DecodeError> {
        match self.byte()? {
            0x00 => Ok(Limits::at_least(self.u32()?)),
            0x01 => {
                let min = self.u32()?;
                let max = self.u32()?;
                Ok(Limits::bounded(min, max))
            }
            f => Err(self.err(format!("invalid limits flag 0x{f:02x}"))),
        }
    }

    fn global_type(&mut self) -> Result<GlobalType, DecodeError> {
        let value = self.valtype()?;
        let mutable = match self.byte()? {
            0 => false,
            1 => true,
            m => return Err(self.err(format!("invalid mutability flag 0x{m:02x}"))),
        };
        Ok(GlobalType { value, mutable })
    }

    fn const_expr(&mut self) -> Result<ConstExpr, DecodeError> {
        let e = match self.byte()? {
            0x41 => ConstExpr::I32(self.i32()?),
            0x42 => ConstExpr::I64(self.i64()?),
            0x43 => ConstExpr::F32(self.f32()?),
            0x44 => ConstExpr::F64(self.f64()?),
            0x23 => ConstExpr::GlobalGet(self.u32()?),
            op => return Err(self.err(format!("invalid const expr opcode 0x{op:02x}"))),
        };
        match self.byte()? {
            0x0B => Ok(e),
            _ => Err(self.err("const expr not terminated by end")),
        }
    }

    fn block_type(&mut self) -> Result<BlockType, DecodeError> {
        let b = self.byte()?;
        if b == 0x40 {
            return Ok(BlockType::Empty);
        }
        ValType::from_byte(b)
            .map(BlockType::Value)
            .ok_or_else(|| self.err(format!("invalid block type 0x{b:02x}")))
    }

    fn memarg(&mut self) -> Result<MemArg, DecodeError> {
        let align = self.u32()?;
        let offset = self.u32()?;
        Ok(MemArg { align, offset })
    }
}

/// Decode a complete `.wasm` binary into a [`Module`].
///
/// # Errors
///
/// Returns [`DecodeError`] for any structural problem: bad magic, truncated
/// sections, unknown opcodes, malformed LEB128, out-of-order sections, etc.
/// Type errors are *not* detected here; run
/// [`validate_module`](crate::validate::validate_module) afterwards.
pub fn decode_module(bytes: &[u8]) -> Result<Module, DecodeError> {
    let mut r = Reader::new(bytes);
    if r.slice(4)? != b"\0asm" {
        return Err(DecodeError::new(0, "bad magic number"));
    }
    if r.slice(4)? != [1, 0, 0, 0] {
        return Err(DecodeError::new(4, "unsupported version"));
    }

    let mut m = Module::new();
    let mut last_section = 0u8;
    while !r.done() {
        let id = r.byte()?;
        let size = r.u32()? as usize;
        let section_start = r.pos;
        let section_end = section_start
            .checked_add(size)
            .filter(|&e| e <= r.bytes.len())
            .ok_or_else(|| r.err("section size past end of input"))?;
        if id != 0 {
            if id <= last_section {
                return Err(r.err(format!("section {id} out of order")));
            }
            if id > 11 {
                return Err(r.err(format!("unknown section id {id}")));
            }
            last_section = id;
        }
        match id {
            0 => {
                // Custom section: read the module name if present, skip otherwise.
                let name = r.name()?;
                if name == "name" && r.pos < section_end {
                    let sub_id = r.byte()?;
                    let sub_len = r.u32()? as usize;
                    if sub_id == 0 && r.pos + sub_len <= section_end {
                        m.name = Some(r.name()?);
                    }
                }
                r.pos = section_end;
            }
            1 => {
                let n = r.u32()?;
                for _ in 0..n {
                    if r.byte()? != 0x60 {
                        return Err(r.err("expected functype tag 0x60"));
                    }
                    let np = r.u32()?;
                    let mut params = Vec::with_capacity(np as usize);
                    for _ in 0..np {
                        params.push(r.valtype()?);
                    }
                    let nr = r.u32()?;
                    let mut results = Vec::with_capacity(nr as usize);
                    for _ in 0..nr {
                        results.push(r.valtype()?);
                    }
                    m.types.push(crate::types::FuncType { params, results });
                }
            }
            2 => {
                let n = r.u32()?;
                for _ in 0..n {
                    let module = r.name()?;
                    let name = r.name()?;
                    let kind = match r.byte()? {
                        0x00 => ImportKind::Func(r.u32()?),
                        0x01 => {
                            if r.byte()? != 0x70 {
                                return Err(r.err("expected funcref table element type"));
                            }
                            ImportKind::Table(TableType {
                                limits: r.limits()?,
                            })
                        }
                        0x02 => ImportKind::Memory(MemoryType {
                            limits: r.limits()?,
                        }),
                        0x03 => ImportKind::Global(r.global_type()?),
                        k => return Err(r.err(format!("invalid import kind 0x{k:02x}"))),
                    };
                    m.imports.push(Import { module, name, kind });
                }
            }
            3 => {
                let n = r.u32()?;
                for _ in 0..n {
                    m.functions.push(r.u32()?);
                }
            }
            4 => {
                let n = r.u32()?;
                for _ in 0..n {
                    if r.byte()? != 0x70 {
                        return Err(r.err("expected funcref table element type"));
                    }
                    m.tables.push(TableType {
                        limits: r.limits()?,
                    });
                }
            }
            5 => {
                let n = r.u32()?;
                for _ in 0..n {
                    m.memories.push(MemoryType {
                        limits: r.limits()?,
                    });
                }
            }
            6 => {
                let n = r.u32()?;
                for _ in 0..n {
                    let ty = r.global_type()?;
                    let init = r.const_expr()?;
                    m.globals.push(crate::module::Global { ty, init });
                }
            }
            7 => {
                let n = r.u32()?;
                for _ in 0..n {
                    let name = r.name()?;
                    let tag = r.byte()?;
                    let idx = r.u32()?;
                    let kind = match tag {
                        0x00 => ExportKind::Func(idx),
                        0x01 => ExportKind::Table(idx),
                        0x02 => ExportKind::Memory(idx),
                        0x03 => ExportKind::Global(idx),
                        k => return Err(r.err(format!("invalid export kind 0x{k:02x}"))),
                    };
                    m.exports.push(Export { name, kind });
                }
            }
            8 => {
                m.start = Some(r.u32()?);
            }
            9 => {
                let n = r.u32()?;
                for _ in 0..n {
                    let table = r.u32()?;
                    if table != 0 {
                        return Err(r.err("element segment table index must be 0"));
                    }
                    let offset = r.const_expr()?;
                    let count = r.u32()?;
                    let mut funcs = Vec::with_capacity(count as usize);
                    for _ in 0..count {
                        funcs.push(r.u32()?);
                    }
                    m.elements.push(ElementSegment { offset, funcs });
                }
            }
            10 => {
                let n = r.u32()?;
                for _ in 0..n {
                    let body_size = r.u32()? as usize;
                    let body_end = r
                        .pos
                        .checked_add(body_size)
                        .filter(|&e| e <= r.bytes.len())
                        .ok_or_else(|| r.err("code body past end of input"))?;
                    let body = decode_func_body(&mut r, body_end)?;
                    if r.pos != body_end {
                        return Err(r.err("code body has trailing bytes"));
                    }
                    m.code.push(body);
                }
            }
            11 => {
                let n = r.u32()?;
                for _ in 0..n {
                    let mem = r.u32()?;
                    if mem != 0 {
                        return Err(r.err("data segment memory index must be 0"));
                    }
                    let offset = r.const_expr()?;
                    let len = r.u32()? as usize;
                    let bytes = r.slice(len)?.to_vec();
                    m.data.push(DataSegment { offset, bytes });
                }
            }
            _ => unreachable!("section id already range-checked"),
        }
        if id != 0 && r.pos != section_end {
            return Err(r.err(format!("section {id} size mismatch")));
        }
    }
    if m.functions.len() != m.code.len() {
        return Err(DecodeError::new(
            bytes.len(),
            "function and code section lengths differ",
        ));
    }
    Ok(m)
}

fn decode_func_body(r: &mut Reader<'_>, end: usize) -> Result<FuncBody, DecodeError> {
    let runs = r.u32()?;
    let mut locals = Vec::new();
    for _ in 0..runs {
        let count = r.u32()?;
        let ty = r.valtype()?;
        if locals.len() as u64 + count as u64 > 1_000_000 {
            return Err(r.err("too many locals"));
        }
        locals.extend(std::iter::repeat_n(ty, count as usize));
    }
    let mut instrs = Vec::new();
    let mut depth: u32 = 0;
    loop {
        if r.pos >= end {
            return Err(r.err("function body not terminated"));
        }
        let ins = decode_instr(r)?;
        let is_end = matches!(ins, Instr::End);
        if ins.opens_block() {
            depth += 1;
        }
        instrs.push(ins);
        if is_end {
            if depth == 0 {
                return Ok(FuncBody { locals, instrs });
            }
            depth -= 1;
        }
    }
}

/// Decode a single instruction from the reader.
fn decode_instr(r: &mut Reader<'_>) -> Result<Instr, DecodeError> {
    use Instr::*;
    let op = r.byte()?;
    Ok(match op {
        0x00 => Unreachable,
        0x01 => Nop,
        0x02 => Block(r.block_type()?),
        0x03 => Loop(r.block_type()?),
        0x04 => If(r.block_type()?),
        0x05 => Else,
        0x0B => End,
        0x0C => Br(r.u32()?),
        0x0D => BrIf(r.u32()?),
        0x0E => {
            let n = r.u32()?;
            let mut targets = Vec::with_capacity(n as usize);
            for _ in 0..n {
                targets.push(r.u32()?);
            }
            let default = r.u32()?;
            BrTable(targets, default)
        }
        0x0F => Return,
        0x10 => Call(r.u32()?),
        0x11 => {
            let ty = r.u32()?;
            if r.byte()? != 0x00 {
                return Err(r.err("call_indirect reserved byte must be 0"));
            }
            CallIndirect(ty)
        }
        0x1A => Drop,
        0x1B => Select,
        0x20 => LocalGet(r.u32()?),
        0x21 => LocalSet(r.u32()?),
        0x22 => LocalTee(r.u32()?),
        0x23 => GlobalGet(r.u32()?),
        0x24 => GlobalSet(r.u32()?),
        0x28 => I32Load(r.memarg()?),
        0x29 => I64Load(r.memarg()?),
        0x2A => F32Load(r.memarg()?),
        0x2B => F64Load(r.memarg()?),
        0x2C => I32Load8S(r.memarg()?),
        0x2D => I32Load8U(r.memarg()?),
        0x2E => I32Load16S(r.memarg()?),
        0x2F => I32Load16U(r.memarg()?),
        0x30 => I64Load8S(r.memarg()?),
        0x31 => I64Load8U(r.memarg()?),
        0x32 => I64Load16S(r.memarg()?),
        0x33 => I64Load16U(r.memarg()?),
        0x34 => I64Load32S(r.memarg()?),
        0x35 => I64Load32U(r.memarg()?),
        0x36 => I32Store(r.memarg()?),
        0x37 => I64Store(r.memarg()?),
        0x38 => F32Store(r.memarg()?),
        0x39 => F64Store(r.memarg()?),
        0x3A => I32Store8(r.memarg()?),
        0x3B => I32Store16(r.memarg()?),
        0x3C => I64Store8(r.memarg()?),
        0x3D => I64Store16(r.memarg()?),
        0x3E => I64Store32(r.memarg()?),
        0x3F => {
            if r.byte()? != 0 {
                return Err(r.err("memory.size reserved byte must be 0"));
            }
            MemorySize
        }
        0x40 => {
            if r.byte()? != 0 {
                return Err(r.err("memory.grow reserved byte must be 0"));
            }
            MemoryGrow
        }
        0x41 => I32Const(r.i32()?),
        0x42 => I64Const(r.i64()?),
        0x43 => F32Const(r.f32()?),
        0x44 => F64Const(r.f64()?),
        0x45 => I32Eqz,
        0x46 => I32Eq,
        0x47 => I32Ne,
        0x48 => I32LtS,
        0x49 => I32LtU,
        0x4A => I32GtS,
        0x4B => I32GtU,
        0x4C => I32LeS,
        0x4D => I32LeU,
        0x4E => I32GeS,
        0x4F => I32GeU,
        0x50 => I64Eqz,
        0x51 => I64Eq,
        0x52 => I64Ne,
        0x53 => I64LtS,
        0x54 => I64LtU,
        0x55 => I64GtS,
        0x56 => I64GtU,
        0x57 => I64LeS,
        0x58 => I64LeU,
        0x59 => I64GeS,
        0x5A => I64GeU,
        0x5B => F32Eq,
        0x5C => F32Ne,
        0x5D => F32Lt,
        0x5E => F32Gt,
        0x5F => F32Le,
        0x60 => F32Ge,
        0x61 => F64Eq,
        0x62 => F64Ne,
        0x63 => F64Lt,
        0x64 => F64Gt,
        0x65 => F64Le,
        0x66 => F64Ge,
        0x67 => I32Clz,
        0x68 => I32Ctz,
        0x69 => I32Popcnt,
        0x6A => I32Add,
        0x6B => I32Sub,
        0x6C => I32Mul,
        0x6D => I32DivS,
        0x6E => I32DivU,
        0x6F => I32RemS,
        0x70 => I32RemU,
        0x71 => I32And,
        0x72 => I32Or,
        0x73 => I32Xor,
        0x74 => I32Shl,
        0x75 => I32ShrS,
        0x76 => I32ShrU,
        0x77 => I32Rotl,
        0x78 => I32Rotr,
        0x79 => I64Clz,
        0x7A => I64Ctz,
        0x7B => I64Popcnt,
        0x7C => I64Add,
        0x7D => I64Sub,
        0x7E => I64Mul,
        0x7F => I64DivS,
        0x80 => I64DivU,
        0x81 => I64RemS,
        0x82 => I64RemU,
        0x83 => I64And,
        0x84 => I64Or,
        0x85 => I64Xor,
        0x86 => I64Shl,
        0x87 => I64ShrS,
        0x88 => I64ShrU,
        0x89 => I64Rotl,
        0x8A => I64Rotr,
        0x8B => F32Abs,
        0x8C => F32Neg,
        0x8D => F32Ceil,
        0x8E => F32Floor,
        0x8F => F32Trunc,
        0x90 => F32Nearest,
        0x91 => F32Sqrt,
        0x92 => F32Add,
        0x93 => F32Sub,
        0x94 => F32Mul,
        0x95 => F32Div,
        0x96 => F32Min,
        0x97 => F32Max,
        0x98 => F32Copysign,
        0x99 => F64Abs,
        0x9A => F64Neg,
        0x9B => F64Ceil,
        0x9C => F64Floor,
        0x9D => F64Trunc,
        0x9E => F64Nearest,
        0x9F => F64Sqrt,
        0xA0 => F64Add,
        0xA1 => F64Sub,
        0xA2 => F64Mul,
        0xA3 => F64Div,
        0xA4 => F64Min,
        0xA5 => F64Max,
        0xA6 => F64Copysign,
        0xA7 => I32WrapI64,
        0xA8 => I32TruncF32S,
        0xA9 => I32TruncF32U,
        0xAA => I32TruncF64S,
        0xAB => I32TruncF64U,
        0xAC => I64ExtendI32S,
        0xAD => I64ExtendI32U,
        0xAE => I64TruncF32S,
        0xAF => I64TruncF32U,
        0xB0 => I64TruncF64S,
        0xB1 => I64TruncF64U,
        0xB2 => F32ConvertI32S,
        0xB3 => F32ConvertI32U,
        0xB4 => F32ConvertI64S,
        0xB5 => F32ConvertI64U,
        0xB6 => F32DemoteF64,
        0xB7 => F64ConvertI32S,
        0xB8 => F64ConvertI32U,
        0xB9 => F64ConvertI64S,
        0xBA => F64ConvertI64U,
        0xBB => F64PromoteF32,
        0xBC => I32ReinterpretF32,
        0xBD => I64ReinterpretF64,
        0xBE => F32ReinterpretI32,
        0xBF => F64ReinterpretI64,
        0xC0 => I32Extend8S,
        0xC1 => I32Extend16S,
        0xC2 => I64Extend8S,
        0xC3 => I64Extend16S,
        0xC4 => I64Extend32S,
        _ => return Err(r.err(format!("unknown opcode 0x{op:02x}"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode_module;
    use crate::module::FuncBody;
    use crate::types::FuncType;

    fn simple_module() -> Module {
        let mut m = Module::new();
        let t = m.push_type(FuncType::new(vec![ValType::I32], vec![ValType::I32]));
        let f = m.push_function(
            t,
            FuncBody::new(
                vec![ValType::I64],
                vec![
                    Instr::LocalGet(0),
                    Instr::I32Const(1),
                    Instr::I32Add,
                    Instr::End,
                ],
            ),
        );
        m.exports.push(Export::func("inc", f));
        m.memories.push(MemoryType {
            limits: Limits::bounded(1, 4),
        });
        m.data.push(DataSegment {
            offset: ConstExpr::I32(16),
            bytes: vec![1, 2, 3],
        });
        m.name = Some("simple".into());
        m
    }

    #[test]
    fn roundtrip_simple_module() {
        let m = simple_module();
        let bytes = encode_module(&m);
        let back = decode_module(&bytes).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn bad_magic_rejected() {
        assert!(decode_module(b"\0bad\x01\0\0\0").is_err());
    }

    #[test]
    fn truncated_rejected() {
        let bytes = encode_module(&simple_module());
        // Note: a cut at exactly 8 bytes (header only) is a *valid* empty
        // module, so it is not in this list.
        for cut in [3, 7, 9, 10, bytes.len() - 1] {
            assert!(decode_module(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn out_of_order_sections_rejected() {
        // Memory section (5) followed by type section (1).
        let mut bytes = b"\0asm\x01\0\0\0".to_vec();
        bytes.extend_from_slice(&[5, 3, 1, 0, 1]); // memory section
        bytes.extend_from_slice(&[1, 1, 0]); // empty type section
        assert!(decode_module(&bytes).is_err());
    }

    #[test]
    fn code_function_count_mismatch_rejected() {
        let mut m = simple_module();
        m.code.clear(); // keep the function-section entry
        let mut bytes = b"\0asm\x01\0\0\0".to_vec();
        // type section with one empty type
        bytes.extend_from_slice(&[1, 4, 1, 0x60, 0, 0]);
        // function section referencing it
        bytes.extend_from_slice(&[3, 2, 1, 0]);
        // no code section
        assert!(decode_module(&bytes).is_err());
        let _ = m;
    }
}
