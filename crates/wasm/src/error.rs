use std::error::Error;
use std::fmt;

/// Error produced while decoding a WebAssembly binary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    /// Byte offset in the input at which decoding failed.
    pub offset: usize,
    /// Human-readable reason.
    pub message: String,
}

impl DecodeError {
    pub(crate) fn new(offset: usize, message: impl Into<String>) -> Self {
        DecodeError {
            offset,
            message: message.into(),
        }
    }
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "decode error at offset {}: {}",
            self.offset, self.message
        )
    }
}

impl Error for DecodeError {}

/// Error produced while validating a decoded module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidateError {
    /// Index of the offending function body, if the error is in code.
    pub func: Option<u32>,
    /// Human-readable reason.
    pub message: String,
}

impl ValidateError {
    pub(crate) fn module(message: impl Into<String>) -> Self {
        ValidateError {
            func: None,
            message: message.into(),
        }
    }

    pub(crate) fn in_func(func: u32, message: impl Into<String>) -> Self {
        ValidateError {
            func: Some(func),
            message: message.into(),
        }
    }
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.func {
            Some(i) => write!(f, "validation error in function {}: {}", i, self.message),
            None => write!(f, "validation error: {}", self.message),
        }
    }
}

impl Error for ValidateError {}
