//! WebAssembly type grammar: value types, function types, limits, and the
//! external (import/export) type forms.

use std::fmt;

/// A WebAssembly value type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ValType {
    /// 32-bit integer (also used for booleans and pointers into linear memory).
    I32,
    /// 64-bit integer.
    I64,
    /// 32-bit IEEE-754 float.
    F32,
    /// 64-bit IEEE-754 float.
    F64,
}

impl ValType {
    /// Binary-format byte for this value type.
    pub fn to_byte(self) -> u8 {
        match self {
            ValType::I32 => 0x7F,
            ValType::I64 => 0x7E,
            ValType::F32 => 0x7D,
            ValType::F64 => 0x7C,
        }
    }

    /// Parse a binary-format byte into a value type.
    pub fn from_byte(b: u8) -> Option<ValType> {
        match b {
            0x7F => Some(ValType::I32),
            0x7E => Some(ValType::I64),
            0x7D => Some(ValType::F32),
            0x7C => Some(ValType::F64),
            _ => None,
        }
    }

    /// `true` for `I32`/`I64`.
    pub fn is_int(self) -> bool {
        matches!(self, ValType::I32 | ValType::I64)
    }

    /// `true` for `F32`/`F64`.
    pub fn is_float(self) -> bool {
        !self.is_int()
    }
}

impl fmt::Display for ValType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ValType::I32 => "i32",
            ValType::I64 => "i64",
            ValType::F32 => "f32",
            ValType::F64 => "f64",
        };
        f.write_str(s)
    }
}

/// A function signature: parameter types and result types.
///
/// The MVP restricts results to at most one value; the validator enforces
/// this, the data structure does not.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct FuncType {
    /// Parameter types, in order.
    pub params: Vec<ValType>,
    /// Result types (0 or 1 in the MVP).
    pub results: Vec<ValType>,
}

impl FuncType {
    /// Create a function type from parameter and result vectors.
    pub fn new(params: Vec<ValType>, results: Vec<ValType>) -> Self {
        FuncType { params, results }
    }

    /// The single result type, if any.
    pub fn result(&self) -> Option<ValType> {
        self.results.first().copied()
    }
}

impl fmt::Display for FuncType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, p) in self.params.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, ") -> (")?;
        for (i, r) in self.results.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{r}")?;
        }
        write!(f, ")")
    }
}

/// Size limits for memories and tables, in units of pages or elements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Limits {
    /// Initial size.
    pub min: u32,
    /// Optional maximum size.
    pub max: Option<u32>,
}

impl Limits {
    /// Limits with only a minimum.
    pub fn at_least(min: u32) -> Self {
        Limits { min, max: None }
    }

    /// Limits with both minimum and maximum.
    pub fn bounded(min: u32, max: u32) -> Self {
        Limits {
            min,
            max: Some(max),
        }
    }

    /// `true` if `min <= max` (or no max).
    pub fn is_well_formed(&self) -> bool {
        self.max.is_none_or(|m| self.min <= m)
    }
}

/// A linear memory type (limits are in 64 KiB pages).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemoryType {
    /// Page limits.
    pub limits: Limits,
}

/// A table type. The MVP supports only `funcref` tables, so the element type
/// is implicit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TableType {
    /// Element-count limits.
    pub limits: Limits,
}

/// A global variable type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GlobalType {
    /// Type of the stored value.
    pub value: ValType,
    /// Whether the global may be written after instantiation.
    pub mutable: bool,
}

/// The type of an import or export.
#[derive(Debug, Clone, PartialEq)]
pub enum ExternType {
    /// A function with the given type index into the module's type section.
    Func(u32),
    /// A table.
    Table(TableType),
    /// A linear memory.
    Memory(MemoryType),
    /// A global.
    Global(GlobalType),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valtype_byte_roundtrip() {
        for t in [ValType::I32, ValType::I64, ValType::F32, ValType::F64] {
            assert_eq!(ValType::from_byte(t.to_byte()), Some(t));
        }
        assert_eq!(ValType::from_byte(0x00), None);
    }

    #[test]
    fn functype_display() {
        let t = FuncType::new(vec![ValType::I32, ValType::F64], vec![ValType::I64]);
        assert_eq!(t.to_string(), "(i32, f64) -> (i64)");
        assert_eq!(t.result(), Some(ValType::I64));
        assert_eq!(FuncType::default().result(), None);
    }

    #[test]
    fn limits_well_formed() {
        assert!(Limits::at_least(5).is_well_formed());
        assert!(Limits::bounded(1, 2).is_well_formed());
        assert!(!Limits::bounded(3, 2).is_well_formed());
    }
}
