//! Serialize a [`Module`] into the WebAssembly binary format.

use crate::instr::{BlockType, Instr, MemArg};
use crate::leb128;
use crate::module::{
    ConstExpr, DataSegment, ElementSegment, Export, ExportKind, FuncBody, Import, ImportKind,
    Module,
};
use crate::types::{GlobalType, Limits, ValType};

const MAGIC: &[u8; 4] = b"\0asm";
const VERSION: &[u8; 4] = &[1, 0, 0, 0];

/// Encode a whole module to `.wasm` bytes.
///
/// The module is encoded as-is; call
/// [`validate_module`](crate::validate::validate_module) first if you need a
/// well-formedness guarantee.
pub fn encode_module(m: &Module) -> Vec<u8> {
    let mut out = Vec::with_capacity(1024);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(VERSION);

    if !m.types.is_empty() {
        section(&mut out, 1, |b| {
            leb128::write_u32(b, m.types.len() as u32);
            for t in &m.types {
                b.push(0x60);
                write_valtypes(b, &t.params);
                write_valtypes(b, &t.results);
            }
        });
    }
    if !m.imports.is_empty() {
        section(&mut out, 2, |b| {
            leb128::write_u32(b, m.imports.len() as u32);
            for i in &m.imports {
                write_import(b, i);
            }
        });
    }
    if !m.functions.is_empty() {
        section(&mut out, 3, |b| {
            leb128::write_u32(b, m.functions.len() as u32);
            for t in &m.functions {
                leb128::write_u32(b, *t);
            }
        });
    }
    if !m.tables.is_empty() {
        section(&mut out, 4, |b| {
            leb128::write_u32(b, m.tables.len() as u32);
            for t in &m.tables {
                b.push(0x70); // funcref
                write_limits(b, &t.limits);
            }
        });
    }
    if !m.memories.is_empty() {
        section(&mut out, 5, |b| {
            leb128::write_u32(b, m.memories.len() as u32);
            for mem in &m.memories {
                write_limits(b, &mem.limits);
            }
        });
    }
    if !m.globals.is_empty() {
        section(&mut out, 6, |b| {
            leb128::write_u32(b, m.globals.len() as u32);
            for g in &m.globals {
                write_global_type(b, &g.ty);
                write_const_expr(b, &g.init);
            }
        });
    }
    if !m.exports.is_empty() {
        section(&mut out, 7, |b| {
            leb128::write_u32(b, m.exports.len() as u32);
            for e in &m.exports {
                write_export(b, e);
            }
        });
    }
    if let Some(start) = m.start {
        section(&mut out, 8, |b| leb128::write_u32(b, start));
    }
    if !m.elements.is_empty() {
        section(&mut out, 9, |b| {
            leb128::write_u32(b, m.elements.len() as u32);
            for e in &m.elements {
                write_element(b, e);
            }
        });
    }
    if !m.code.is_empty() {
        section(&mut out, 10, |b| {
            leb128::write_u32(b, m.code.len() as u32);
            for body in &m.code {
                write_func_body(b, body);
            }
        });
    }
    if !m.data.is_empty() {
        section(&mut out, 11, |b| {
            leb128::write_u32(b, m.data.len() as u32);
            for d in &m.data {
                write_data(b, d);
            }
        });
    }
    if let Some(name) = &m.name {
        // Custom "name" section, module-name subsection only.
        section(&mut out, 0, |b| {
            write_name(b, "name");
            let mut sub = Vec::new();
            write_name(&mut sub, name);
            b.push(0); // module-name subsection id
            leb128::write_u32(b, sub.len() as u32);
            b.extend_from_slice(&sub);
        });
    }
    out
}

fn section(out: &mut Vec<u8>, id: u8, f: impl FnOnce(&mut Vec<u8>)) {
    let mut body = Vec::new();
    f(&mut body);
    out.push(id);
    leb128::write_u32(out, body.len() as u32);
    out.extend_from_slice(&body);
}

fn write_name(out: &mut Vec<u8>, s: &str) {
    leb128::write_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn write_valtypes(out: &mut Vec<u8>, tys: &[ValType]) {
    leb128::write_u32(out, tys.len() as u32);
    for t in tys {
        out.push(t.to_byte());
    }
}

fn write_limits(out: &mut Vec<u8>, l: &Limits) {
    match l.max {
        None => {
            out.push(0x00);
            leb128::write_u32(out, l.min);
        }
        Some(max) => {
            out.push(0x01);
            leb128::write_u32(out, l.min);
            leb128::write_u32(out, max);
        }
    }
}

fn write_global_type(out: &mut Vec<u8>, g: &GlobalType) {
    out.push(g.value.to_byte());
    out.push(u8::from(g.mutable));
}

fn write_import(out: &mut Vec<u8>, i: &Import) {
    write_name(out, &i.module);
    write_name(out, &i.name);
    match &i.kind {
        ImportKind::Func(t) => {
            out.push(0x00);
            leb128::write_u32(out, *t);
        }
        ImportKind::Table(t) => {
            out.push(0x01);
            out.push(0x70);
            write_limits(out, &t.limits);
        }
        ImportKind::Memory(m) => {
            out.push(0x02);
            write_limits(out, &m.limits);
        }
        ImportKind::Global(g) => {
            out.push(0x03);
            write_global_type(out, g);
        }
    }
}

fn write_export(out: &mut Vec<u8>, e: &Export) {
    write_name(out, &e.name);
    let (tag, idx) = match e.kind {
        ExportKind::Func(i) => (0x00, i),
        ExportKind::Table(i) => (0x01, i),
        ExportKind::Memory(i) => (0x02, i),
        ExportKind::Global(i) => (0x03, i),
    };
    out.push(tag);
    leb128::write_u32(out, idx);
}

fn write_const_expr(out: &mut Vec<u8>, e: &ConstExpr) {
    match e {
        ConstExpr::I32(v) => {
            out.push(0x41);
            leb128::write_i32(out, *v);
        }
        ConstExpr::I64(v) => {
            out.push(0x42);
            leb128::write_i64(out, *v);
        }
        ConstExpr::F32(v) => {
            out.push(0x43);
            out.extend_from_slice(&v.to_le_bytes());
        }
        ConstExpr::F64(v) => {
            out.push(0x44);
            out.extend_from_slice(&v.to_le_bytes());
        }
        ConstExpr::GlobalGet(i) => {
            out.push(0x23);
            leb128::write_u32(out, *i);
        }
    }
    out.push(0x0B); // end
}

fn write_element(out: &mut Vec<u8>, e: &ElementSegment) {
    leb128::write_u32(out, 0); // table index
    write_const_expr(out, &e.offset);
    leb128::write_u32(out, e.funcs.len() as u32);
    for f in &e.funcs {
        leb128::write_u32(out, *f);
    }
}

fn write_data(out: &mut Vec<u8>, d: &DataSegment) {
    leb128::write_u32(out, 0); // memory index
    write_const_expr(out, &d.offset);
    leb128::write_u32(out, d.bytes.len() as u32);
    out.extend_from_slice(&d.bytes);
}

fn write_func_body(out: &mut Vec<u8>, body: &FuncBody) {
    let mut b = Vec::new();
    // Run-length encode the locals.
    let mut runs: Vec<(u32, ValType)> = Vec::new();
    for l in &body.locals {
        match runs.last_mut() {
            Some((n, t)) if *t == *l => *n += 1,
            _ => runs.push((1, *l)),
        }
    }
    leb128::write_u32(&mut b, runs.len() as u32);
    for (n, t) in runs {
        leb128::write_u32(&mut b, n);
        b.push(t.to_byte());
    }
    for ins in &body.instrs {
        write_instr(&mut b, ins);
    }
    leb128::write_u32(out, b.len() as u32);
    out.extend_from_slice(&b);
}

fn write_block_type(out: &mut Vec<u8>, bt: BlockType) {
    match bt {
        BlockType::Empty => out.push(0x40),
        BlockType::Value(t) => out.push(t.to_byte()),
    }
}

fn write_memarg(out: &mut Vec<u8>, m: &MemArg) {
    leb128::write_u32(out, m.align);
    leb128::write_u32(out, m.offset);
}

/// Encode a single instruction.
pub fn write_instr(out: &mut Vec<u8>, ins: &Instr) {
    use Instr::*;
    match ins {
        Unreachable => out.push(0x00),
        Nop => out.push(0x01),
        Block(bt) => {
            out.push(0x02);
            write_block_type(out, *bt);
        }
        Loop(bt) => {
            out.push(0x03);
            write_block_type(out, *bt);
        }
        If(bt) => {
            out.push(0x04);
            write_block_type(out, *bt);
        }
        Else => out.push(0x05),
        End => out.push(0x0B),
        Br(l) => {
            out.push(0x0C);
            leb128::write_u32(out, *l);
        }
        BrIf(l) => {
            out.push(0x0D);
            leb128::write_u32(out, *l);
        }
        BrTable(ls, d) => {
            out.push(0x0E);
            leb128::write_u32(out, ls.len() as u32);
            for l in ls {
                leb128::write_u32(out, *l);
            }
            leb128::write_u32(out, *d);
        }
        Return => out.push(0x0F),
        Call(f) => {
            out.push(0x10);
            leb128::write_u32(out, *f);
        }
        CallIndirect(t) => {
            out.push(0x11);
            leb128::write_u32(out, *t);
            out.push(0x00);
        }
        Drop => out.push(0x1A),
        Select => out.push(0x1B),
        LocalGet(i) => {
            out.push(0x20);
            leb128::write_u32(out, *i);
        }
        LocalSet(i) => {
            out.push(0x21);
            leb128::write_u32(out, *i);
        }
        LocalTee(i) => {
            out.push(0x22);
            leb128::write_u32(out, *i);
        }
        GlobalGet(i) => {
            out.push(0x23);
            leb128::write_u32(out, *i);
        }
        GlobalSet(i) => {
            out.push(0x24);
            leb128::write_u32(out, *i);
        }
        I32Load(m) => memop(out, 0x28, m),
        I64Load(m) => memop(out, 0x29, m),
        F32Load(m) => memop(out, 0x2A, m),
        F64Load(m) => memop(out, 0x2B, m),
        I32Load8S(m) => memop(out, 0x2C, m),
        I32Load8U(m) => memop(out, 0x2D, m),
        I32Load16S(m) => memop(out, 0x2E, m),
        I32Load16U(m) => memop(out, 0x2F, m),
        I64Load8S(m) => memop(out, 0x30, m),
        I64Load8U(m) => memop(out, 0x31, m),
        I64Load16S(m) => memop(out, 0x32, m),
        I64Load16U(m) => memop(out, 0x33, m),
        I64Load32S(m) => memop(out, 0x34, m),
        I64Load32U(m) => memop(out, 0x35, m),
        I32Store(m) => memop(out, 0x36, m),
        I64Store(m) => memop(out, 0x37, m),
        F32Store(m) => memop(out, 0x38, m),
        F64Store(m) => memop(out, 0x39, m),
        I32Store8(m) => memop(out, 0x3A, m),
        I32Store16(m) => memop(out, 0x3B, m),
        I64Store8(m) => memop(out, 0x3C, m),
        I64Store16(m) => memop(out, 0x3D, m),
        I64Store32(m) => memop(out, 0x3E, m),
        MemorySize => {
            out.push(0x3F);
            out.push(0x00);
        }
        MemoryGrow => {
            out.push(0x40);
            out.push(0x00);
        }
        I32Const(v) => {
            out.push(0x41);
            leb128::write_i32(out, *v);
        }
        I64Const(v) => {
            out.push(0x42);
            leb128::write_i64(out, *v);
        }
        F32Const(v) => {
            out.push(0x43);
            out.extend_from_slice(&v.to_le_bytes());
        }
        F64Const(v) => {
            out.push(0x44);
            out.extend_from_slice(&v.to_le_bytes());
        }
        I32Eqz => out.push(0x45),
        I32Eq => out.push(0x46),
        I32Ne => out.push(0x47),
        I32LtS => out.push(0x48),
        I32LtU => out.push(0x49),
        I32GtS => out.push(0x4A),
        I32GtU => out.push(0x4B),
        I32LeS => out.push(0x4C),
        I32LeU => out.push(0x4D),
        I32GeS => out.push(0x4E),
        I32GeU => out.push(0x4F),
        I64Eqz => out.push(0x50),
        I64Eq => out.push(0x51),
        I64Ne => out.push(0x52),
        I64LtS => out.push(0x53),
        I64LtU => out.push(0x54),
        I64GtS => out.push(0x55),
        I64GtU => out.push(0x56),
        I64LeS => out.push(0x57),
        I64LeU => out.push(0x58),
        I64GeS => out.push(0x59),
        I64GeU => out.push(0x5A),
        F32Eq => out.push(0x5B),
        F32Ne => out.push(0x5C),
        F32Lt => out.push(0x5D),
        F32Gt => out.push(0x5E),
        F32Le => out.push(0x5F),
        F32Ge => out.push(0x60),
        F64Eq => out.push(0x61),
        F64Ne => out.push(0x62),
        F64Lt => out.push(0x63),
        F64Gt => out.push(0x64),
        F64Le => out.push(0x65),
        F64Ge => out.push(0x66),
        I32Clz => out.push(0x67),
        I32Ctz => out.push(0x68),
        I32Popcnt => out.push(0x69),
        I32Add => out.push(0x6A),
        I32Sub => out.push(0x6B),
        I32Mul => out.push(0x6C),
        I32DivS => out.push(0x6D),
        I32DivU => out.push(0x6E),
        I32RemS => out.push(0x6F),
        I32RemU => out.push(0x70),
        I32And => out.push(0x71),
        I32Or => out.push(0x72),
        I32Xor => out.push(0x73),
        I32Shl => out.push(0x74),
        I32ShrS => out.push(0x75),
        I32ShrU => out.push(0x76),
        I32Rotl => out.push(0x77),
        I32Rotr => out.push(0x78),
        I64Clz => out.push(0x79),
        I64Ctz => out.push(0x7A),
        I64Popcnt => out.push(0x7B),
        I64Add => out.push(0x7C),
        I64Sub => out.push(0x7D),
        I64Mul => out.push(0x7E),
        I64DivS => out.push(0x7F),
        I64DivU => out.push(0x80),
        I64RemS => out.push(0x81),
        I64RemU => out.push(0x82),
        I64And => out.push(0x83),
        I64Or => out.push(0x84),
        I64Xor => out.push(0x85),
        I64Shl => out.push(0x86),
        I64ShrS => out.push(0x87),
        I64ShrU => out.push(0x88),
        I64Rotl => out.push(0x89),
        I64Rotr => out.push(0x8A),
        F32Abs => out.push(0x8B),
        F32Neg => out.push(0x8C),
        F32Ceil => out.push(0x8D),
        F32Floor => out.push(0x8E),
        F32Trunc => out.push(0x8F),
        F32Nearest => out.push(0x90),
        F32Sqrt => out.push(0x91),
        F32Add => out.push(0x92),
        F32Sub => out.push(0x93),
        F32Mul => out.push(0x94),
        F32Div => out.push(0x95),
        F32Min => out.push(0x96),
        F32Max => out.push(0x97),
        F32Copysign => out.push(0x98),
        F64Abs => out.push(0x99),
        F64Neg => out.push(0x9A),
        F64Ceil => out.push(0x9B),
        F64Floor => out.push(0x9C),
        F64Trunc => out.push(0x9D),
        F64Nearest => out.push(0x9E),
        F64Sqrt => out.push(0x9F),
        F64Add => out.push(0xA0),
        F64Sub => out.push(0xA1),
        F64Mul => out.push(0xA2),
        F64Div => out.push(0xA3),
        F64Min => out.push(0xA4),
        F64Max => out.push(0xA5),
        F64Copysign => out.push(0xA6),
        I32WrapI64 => out.push(0xA7),
        I32TruncF32S => out.push(0xA8),
        I32TruncF32U => out.push(0xA9),
        I32TruncF64S => out.push(0xAA),
        I32TruncF64U => out.push(0xAB),
        I64ExtendI32S => out.push(0xAC),
        I64ExtendI32U => out.push(0xAD),
        I64TruncF32S => out.push(0xAE),
        I64TruncF32U => out.push(0xAF),
        I64TruncF64S => out.push(0xB0),
        I64TruncF64U => out.push(0xB1),
        F32ConvertI32S => out.push(0xB2),
        F32ConvertI32U => out.push(0xB3),
        F32ConvertI64S => out.push(0xB4),
        F32ConvertI64U => out.push(0xB5),
        F32DemoteF64 => out.push(0xB6),
        F64ConvertI32S => out.push(0xB7),
        F64ConvertI32U => out.push(0xB8),
        F64ConvertI64S => out.push(0xB9),
        F64ConvertI64U => out.push(0xBA),
        F64PromoteF32 => out.push(0xBB),
        I32ReinterpretF32 => out.push(0xBC),
        I64ReinterpretF64 => out.push(0xBD),
        F32ReinterpretI32 => out.push(0xBE),
        F64ReinterpretI64 => out.push(0xBF),
        I32Extend8S => out.push(0xC0),
        I32Extend16S => out.push(0xC1),
        I64Extend8S => out.push(0xC2),
        I64Extend16S => out.push(0xC3),
        I64Extend32S => out.push(0xC4),
    }
}

fn memop(out: &mut Vec<u8>, opcode: u8, m: &MemArg) {
    out.push(opcode);
    write_memarg(out, m);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::FuncBody;
    use crate::types::FuncType;

    #[test]
    fn header_is_standard() {
        let m = Module::new();
        let bytes = encode_module(&m);
        assert_eq!(&bytes[0..4], b"\0asm");
        assert_eq!(&bytes[4..8], &[1, 0, 0, 0]);
        assert_eq!(bytes.len(), 8);
    }

    #[test]
    fn locals_are_run_length_encoded() {
        let mut m = Module::new();
        let t = m.push_type(FuncType::default());
        m.push_function(
            t,
            FuncBody::new(
                vec![ValType::I32, ValType::I32, ValType::F64],
                vec![Instr::End],
            ),
        );
        let bytes = encode_module(&m);
        // The code body should contain 2 local runs: (2 x i32), (1 x f64).
        let decoded = crate::decode::decode_module(&bytes).unwrap();
        assert_eq!(
            decoded.code[0].locals,
            vec![ValType::I32, ValType::I32, ValType::F64]
        );
    }
}
