//! In-memory representation of a WebAssembly module.

use crate::instr::Instr;
use crate::types::{FuncType, GlobalType, MemoryType, TableType, ValType};

/// Index of a function, counting imported functions first.
pub type FuncIdx = u32;
/// Index into the type section.
pub type TypeIdx = u32;

/// What an import provides.
#[derive(Debug, Clone, PartialEq)]
pub enum ImportKind {
    /// A function with the given type index.
    Func(TypeIdx),
    /// A table.
    Table(TableType),
    /// A linear memory.
    Memory(MemoryType),
    /// A global.
    Global(GlobalType),
}

/// One import entry.
#[derive(Debug, Clone, PartialEq)]
pub struct Import {
    /// Module namespace, e.g. `"env"`.
    pub module: String,
    /// Field name, e.g. `"stdin_read"`.
    pub name: String,
    /// Imported entity.
    pub kind: ImportKind,
}

impl Import {
    /// Convenience constructor for a function import.
    pub fn func(module: impl Into<String>, name: impl Into<String>, ty: TypeIdx) -> Self {
        Import {
            module: module.into(),
            name: name.into(),
            kind: ImportKind::Func(ty),
        }
    }
}

/// What an export exposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExportKind {
    /// Function index.
    Func(FuncIdx),
    /// Table index.
    Table(u32),
    /// Memory index.
    Memory(u32),
    /// Global index.
    Global(u32),
}

/// One export entry.
#[derive(Debug, Clone, PartialEq)]
pub struct Export {
    /// Exported name.
    pub name: String,
    /// Exported entity.
    pub kind: ExportKind,
}

impl Export {
    /// Convenience constructor for a function export.
    pub fn func(name: impl Into<String>, index: FuncIdx) -> Self {
        Export {
            name: name.into(),
            kind: ExportKind::Func(index),
        }
    }

    /// Convenience constructor for a memory export.
    pub fn memory(name: impl Into<String>, index: u32) -> Self {
        Export {
            name: name.into(),
            kind: ExportKind::Memory(index),
        }
    }
}

/// A global definition: its type plus a constant initializer expression.
#[derive(Debug, Clone, PartialEq)]
pub struct Global {
    /// Type and mutability.
    pub ty: GlobalType,
    /// Initializer (must be a single const instruction in the MVP).
    pub init: ConstExpr,
}

/// A constant expression, used for global initializers and segment offsets.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ConstExpr {
    /// `i32.const`
    I32(i32),
    /// `i64.const`
    I64(i64),
    /// `f32.const`
    F32(f32),
    /// `f64.const`
    F64(f64),
    /// `global.get` of an imported immutable global.
    GlobalGet(u32),
}

impl ConstExpr {
    /// The value type this expression produces (imported-global type must be
    /// resolved by the caller for `GlobalGet`).
    pub fn ty(&self) -> Option<ValType> {
        match self {
            ConstExpr::I32(_) => Some(ValType::I32),
            ConstExpr::I64(_) => Some(ValType::I64),
            ConstExpr::F32(_) => Some(ValType::F32),
            ConstExpr::F64(_) => Some(ValType::F64),
            ConstExpr::GlobalGet(_) => None,
        }
    }
}

/// An element segment: function indices copied into the table at
/// instantiation, at a constant offset.
#[derive(Debug, Clone, PartialEq)]
pub struct ElementSegment {
    /// Offset expression (i32).
    pub offset: ConstExpr,
    /// Function indices to place.
    pub funcs: Vec<FuncIdx>,
}

/// A data segment: bytes copied into linear memory at instantiation.
#[derive(Debug, Clone, PartialEq)]
pub struct DataSegment {
    /// Offset expression (i32).
    pub offset: ConstExpr,
    /// The bytes.
    pub bytes: Vec<u8>,
}

/// The body of a locally-defined function.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FuncBody {
    /// Additional local variables (beyond the parameters), already expanded
    /// (one entry per local, not run-length encoded).
    pub locals: Vec<ValType>,
    /// Flat instruction sequence, terminated by [`Instr::End`].
    pub instrs: Vec<Instr>,
}

impl FuncBody {
    /// Create a body from locals and instructions.
    pub fn new(locals: Vec<ValType>, instrs: Vec<Instr>) -> Self {
        FuncBody { locals, instrs }
    }
}

/// A complete module.
///
/// Invariants beyond well-typedness (checked by
/// [`crate::validate::validate_module`]) are not enforced by this plain data
/// structure; it can represent invalid modules, which is necessary for
/// negative tests.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Module {
    /// Type section.
    pub types: Vec<FuncType>,
    /// Import section.
    pub imports: Vec<Import>,
    /// Type indices of locally-defined functions (parallel to `code`).
    pub functions: Vec<TypeIdx>,
    /// Table section (at most one in the MVP).
    pub tables: Vec<TableType>,
    /// Memory section (at most one in the MVP).
    pub memories: Vec<MemoryType>,
    /// Global section.
    pub globals: Vec<Global>,
    /// Export section.
    pub exports: Vec<Export>,
    /// Optional start function.
    pub start: Option<FuncIdx>,
    /// Element segments.
    pub elements: Vec<ElementSegment>,
    /// Code section (parallel to `functions`).
    pub code: Vec<FuncBody>,
    /// Data segments.
    pub data: Vec<DataSegment>,
    /// Optional module name (custom "name" section).
    pub name: Option<String>,
}

impl Module {
    /// An empty module.
    pub fn new() -> Self {
        Module::default()
    }

    /// Add a function type, deduplicating, and return its index.
    pub fn push_type(&mut self, ty: FuncType) -> TypeIdx {
        if let Some(i) = self.types.iter().position(|t| *t == ty) {
            return i as TypeIdx;
        }
        self.types.push(ty);
        (self.types.len() - 1) as TypeIdx
    }

    /// Add a locally-defined function; returns its *function index*
    /// (accounting for imported functions, which come first).
    pub fn push_function(&mut self, ty: TypeIdx, body: FuncBody) -> FuncIdx {
        self.functions.push(ty);
        self.code.push(body);
        self.num_imported_funcs() + (self.functions.len() - 1) as u32
    }

    /// Number of imported functions.
    pub fn num_imported_funcs(&self) -> u32 {
        self.imports
            .iter()
            .filter(|i| matches!(i.kind, ImportKind::Func(_)))
            .count() as u32
    }

    /// Total number of functions (imported + local).
    pub fn num_funcs(&self) -> u32 {
        self.num_imported_funcs() + self.functions.len() as u32
    }

    /// The type index of function `idx` (imported functions come first).
    pub fn func_type_idx(&self, idx: FuncIdx) -> Option<TypeIdx> {
        let imported: Vec<TypeIdx> = self
            .imports
            .iter()
            .filter_map(|i| match i.kind {
                ImportKind::Func(t) => Some(t),
                _ => None,
            })
            .collect();
        if (idx as usize) < imported.len() {
            Some(imported[idx as usize])
        } else {
            self.functions.get(idx as usize - imported.len()).copied()
        }
    }

    /// The resolved [`FuncType`] of function `idx`.
    pub fn func_type(&self, idx: FuncIdx) -> Option<&FuncType> {
        self.func_type_idx(idx)
            .and_then(|t| self.types.get(t as usize))
    }

    /// Find the function index exported under `name`.
    pub fn exported_func(&self, name: &str) -> Option<FuncIdx> {
        self.exports.iter().find_map(|e| match e.kind {
            ExportKind::Func(i) if e.name == name => Some(i),
            _ => None,
        })
    }

    /// Number of imported globals.
    pub fn num_imported_globals(&self) -> u32 {
        self.imports
            .iter()
            .filter(|i| matches!(i.kind, ImportKind::Global(_)))
            .count() as u32
    }

    /// The [`GlobalType`] of global `idx` (imported globals come first).
    pub fn global_type(&self, idx: u32) -> Option<GlobalType> {
        let imported: Vec<GlobalType> = self
            .imports
            .iter()
            .filter_map(|i| match i.kind {
                ImportKind::Global(g) => Some(g),
                _ => None,
            })
            .collect();
        if (idx as usize) < imported.len() {
            Some(imported[idx as usize])
        } else {
            self.globals
                .get(idx as usize - imported.len())
                .map(|g| g.ty)
        }
    }

    /// The memory type, considering both imported and local memories.
    pub fn memory(&self) -> Option<MemoryType> {
        for i in &self.imports {
            if let ImportKind::Memory(m) = i.kind {
                return Some(m);
            }
        }
        self.memories.first().copied()
    }

    /// The table type, considering both imported and local tables.
    pub fn table(&self) -> Option<TableType> {
        for i in &self.imports {
            if let ImportKind::Table(t) = i.kind {
                return Some(t);
            }
        }
        self.tables.first().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Limits;

    #[test]
    fn push_type_deduplicates() {
        let mut m = Module::new();
        let a = m.push_type(FuncType::new(vec![ValType::I32], vec![]));
        let b = m.push_type(FuncType::new(vec![ValType::I32], vec![]));
        let c = m.push_type(FuncType::new(vec![], vec![]));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(m.types.len(), 2);
    }

    #[test]
    fn func_indices_account_for_imports() {
        let mut m = Module::new();
        let t0 = m.push_type(FuncType::new(vec![], vec![ValType::I32]));
        m.imports.push(Import::func("env", "host0", t0));
        m.imports.push(Import::func("env", "host1", t0));
        let f = m.push_function(t0, FuncBody::default());
        assert_eq!(f, 2);
        assert_eq!(m.num_imported_funcs(), 2);
        assert_eq!(m.num_funcs(), 3);
        assert_eq!(m.func_type_idx(0), Some(t0));
        assert_eq!(m.func_type_idx(2), Some(t0));
        assert_eq!(m.func_type_idx(3), None);
    }

    #[test]
    fn exported_func_lookup() {
        let mut m = Module::new();
        let t = m.push_type(FuncType::default());
        let f = m.push_function(t, FuncBody::default());
        m.exports.push(Export::func("main", f));
        assert_eq!(m.exported_func("main"), Some(f));
        assert_eq!(m.exported_func("missing"), None);
    }

    #[test]
    fn memory_prefers_import() {
        let mut m = Module::new();
        m.imports.push(Import {
            module: "env".into(),
            name: "memory".into(),
            kind: ImportKind::Memory(MemoryType {
                limits: Limits::at_least(7),
            }),
        });
        m.memories.push(MemoryType {
            limits: Limits::at_least(1),
        });
        assert_eq!(m.memory().unwrap().limits.min, 7);
    }
}
