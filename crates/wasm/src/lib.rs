//! From-scratch WebAssembly 1.0 (MVP) binary toolkit.
//!
//! This crate implements the parts of the WebAssembly specification that the
//! Sledge reproduction needs, with no external dependencies:
//!
//! * [`leb128`] — LEB128 integer coding used throughout the binary format.
//! * [`types`] — value/function/limit types.
//! * [`instr`] — the full MVP instruction set (plus sign-extension ops).
//! * [`module`] — an in-memory module representation.
//! * [`encode`] — serialize a [`module::Module`] to `.wasm` bytes.
//! * [`decode`] — parse `.wasm` bytes back into a [`module::Module`].
//! * [`validate`] — the spec's type-checking validator for whole modules.
//!
//! The typical pipeline mirrors the paper's: a front end (see the
//! `sledge-guestc` crate) builds a [`module::Module`], [`encode`] produces the
//! `.wasm` binary a tenant would upload, the runtime [`decode`]s and
//! [`validate`]s it, and the `awsm` engine translates the validated module
//! for execution.
//!
//! # Examples
//!
//! ```
//! use sledge_wasm::module::{Module, FuncBody, Export};
//! use sledge_wasm::types::{FuncType, ValType};
//! use sledge_wasm::instr::Instr;
//!
//! // (module (func (export "answer") (result i32) i32.const 42))
//! let mut m = Module::new();
//! let ty = m.push_type(FuncType::new(vec![], vec![ValType::I32]));
//! let f = m.push_function(ty, FuncBody::new(vec![], vec![
//!     Instr::I32Const(42),
//!     Instr::End,
//! ]));
//! m.exports.push(Export::func("answer", f));
//!
//! let bytes = sledge_wasm::encode::encode_module(&m);
//! let back = sledge_wasm::decode::decode_module(&bytes)?;
//! sledge_wasm::validate::validate_module(&back)?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod decode;
pub mod encode;
pub mod instr;
pub mod leb128;
pub mod module;
pub mod types;
pub mod validate;

mod error;

pub use error::{DecodeError, ValidateError};

/// Number of bytes in one WebAssembly linear-memory page (64 KiB).
pub const PAGE_SIZE: usize = 65536;
