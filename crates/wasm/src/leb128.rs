//! LEB128 variable-length integer coding, as used by the Wasm binary format.
//!
//! Unsigned values use ULEB128; signed values use SLEB128 with sign
//! extension. All readers return the decoded value together with the number
//! of bytes consumed, and reject encodings longer than the type permits.
//!
//! # Examples
//!
//! ```
//! let mut buf = Vec::new();
//! sledge_wasm::leb128::write_u32(&mut buf, 624485);
//! assert_eq!(buf, [0xE5, 0x8E, 0x26]);
//! let (v, n) = sledge_wasm::leb128::read_u32(&buf, 0).unwrap();
//! assert_eq!((v, n), (624485, 3));
//! ```

use crate::DecodeError;

/// Append a ULEB128-encoded `u32` to `out`.
pub fn write_u32(out: &mut Vec<u8>, mut value: u32) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Append a ULEB128-encoded `u64` to `out`.
pub fn write_u64(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Append an SLEB128-encoded `i32` to `out`.
pub fn write_i32(out: &mut Vec<u8>, value: i32) {
    write_i64(out, i64::from(value));
}

/// Append an SLEB128-encoded `i64` to `out`.
pub fn write_i64(out: &mut Vec<u8>, mut value: i64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        let sign = byte & 0x40 != 0;
        let done = (value == 0 && !sign) || (value == -1 && sign);
        if done {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Read a ULEB128 `u32` from `input` at `offset`.
///
/// Returns `(value, bytes_consumed)`.
///
/// # Errors
///
/// Returns [`DecodeError`] on truncated input, on encodings longer than five
/// bytes, or if the final byte carries bits beyond the 32-bit range.
pub fn read_u32(input: &[u8], offset: usize) -> Result<(u32, usize), DecodeError> {
    let (v, n) = read_unsigned(input, offset, 32)?;
    Ok((v as u32, n))
}

/// Read a ULEB128 `u64` from `input` at `offset`.
///
/// Returns `(value, bytes_consumed)`.
///
/// # Errors
///
/// Returns [`DecodeError`] on truncated or over-long input.
pub fn read_u64(input: &[u8], offset: usize) -> Result<(u64, usize), DecodeError> {
    read_unsigned(input, offset, 64)
}

fn read_unsigned(input: &[u8], offset: usize, bits: u32) -> Result<(u64, usize), DecodeError> {
    let mut result: u64 = 0;
    let mut shift: u32 = 0;
    let mut consumed = 0usize;
    loop {
        let byte = *input
            .get(offset + consumed)
            .ok_or_else(|| DecodeError::new(offset + consumed, "unexpected end of leb128"))?;
        consumed += 1;
        let low = u64::from(byte & 0x7f);
        if shift >= bits {
            return Err(DecodeError::new(offset, "leb128 too long"));
        }
        // The final byte may only carry the bits that still fit.
        if shift + 7 > bits && (low >> (bits - shift)) != 0 {
            return Err(DecodeError::new(offset, "leb128 overflows target type"));
        }
        result |= low << shift;
        if byte & 0x80 == 0 {
            return Ok((result, consumed));
        }
        shift += 7;
    }
}

/// Read an SLEB128 `i32` from `input` at `offset`.
///
/// Returns `(value, bytes_consumed)`.
///
/// # Errors
///
/// Returns [`DecodeError`] on truncated or over-long input.
pub fn read_i32(input: &[u8], offset: usize) -> Result<(i32, usize), DecodeError> {
    let (v, n) = read_signed(input, offset, 32)?;
    Ok((v as i32, n))
}

/// Read an SLEB128 `i64` from `input` at `offset`.
///
/// Returns `(value, bytes_consumed)`.
///
/// # Errors
///
/// Returns [`DecodeError`] on truncated or over-long input.
pub fn read_i64(input: &[u8], offset: usize) -> Result<(i64, usize), DecodeError> {
    read_signed(input, offset, 64)
}

fn read_signed(input: &[u8], offset: usize, bits: u32) -> Result<(i64, usize), DecodeError> {
    let mut result: i64 = 0;
    let mut shift: u32 = 0;
    let mut consumed = 0usize;
    loop {
        let byte = *input
            .get(offset + consumed)
            .ok_or_else(|| DecodeError::new(offset + consumed, "unexpected end of leb128"))?;
        consumed += 1;
        if shift >= bits {
            return Err(DecodeError::new(offset, "leb128 too long"));
        }
        result |= i64::from(byte & 0x7f) << shift;
        shift += 7;
        if byte & 0x80 == 0 {
            if shift < 64 && byte & 0x40 != 0 {
                // Sign-extend.
                result |= -1i64 << shift;
            }
            if bits < 64 {
                let trunc = (result << (64 - bits)) >> (64 - bits);
                if trunc != result {
                    return Err(DecodeError::new(offset, "leb128 overflows target type"));
                }
            }
            return Ok((result, consumed));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u32_roundtrip_edge_values() {
        for v in [0u32, 1, 127, 128, 624485, u32::MAX] {
            let mut buf = Vec::new();
            write_u32(&mut buf, v);
            let (back, n) = read_u32(&buf, 0).unwrap();
            assert_eq!(back, v);
            assert_eq!(n, buf.len());
        }
    }

    #[test]
    fn i32_roundtrip_edge_values() {
        for v in [0i32, 1, -1, 63, 64, -64, -65, i32::MIN, i32::MAX] {
            let mut buf = Vec::new();
            write_i32(&mut buf, v);
            let (back, n) = read_i32(&buf, 0).unwrap();
            assert_eq!(back, v, "value {v}");
            assert_eq!(n, buf.len());
        }
    }

    #[test]
    fn i64_roundtrip_edge_values() {
        for v in [0i64, -1, i64::MIN, i64::MAX, 1 << 40, -(1 << 40)] {
            let mut buf = Vec::new();
            write_i64(&mut buf, v);
            let (back, n) = read_i64(&buf, 0).unwrap();
            assert_eq!(back, v);
            assert_eq!(n, buf.len());
        }
    }

    #[test]
    fn truncated_input_is_rejected() {
        assert!(read_u32(&[0x80], 0).is_err());
        assert!(read_i64(&[0xff, 0xff], 0).is_err());
        assert!(read_u32(&[], 0).is_err());
    }

    #[test]
    fn overlong_u32_is_rejected() {
        // Six continuation bytes exceed the 5-byte ceiling for u32.
        assert!(read_u32(&[0x80, 0x80, 0x80, 0x80, 0x80, 0x01], 0).is_err());
        // A fifth byte with bits above 2^32 is also invalid.
        assert!(read_u32(&[0xff, 0xff, 0xff, 0xff, 0x7f], 0).is_err());
    }

    #[test]
    fn nonzero_offset_reads() {
        let mut buf = vec![0xAA, 0xBB];
        write_u32(&mut buf, 300);
        let (v, n) = read_u32(&buf, 2).unwrap();
        assert_eq!(v, 300);
        assert_eq!(n, 2);
    }
}
