//! Property-based tests: LEB128 and module encode/decode roundtrips over
//! randomly generated inputs.

use proptest::prelude::*;
use sledge_wasm::instr::Instr;
use sledge_wasm::module::{ConstExpr, DataSegment, Export, FuncBody, Module};
use sledge_wasm::types::{FuncType, Limits, MemoryType, ValType};
use sledge_wasm::{decode, encode, leb128};

proptest! {
    #[test]
    fn leb_u32_roundtrip(v in any::<u32>()) {
        let mut buf = Vec::new();
        leb128::write_u32(&mut buf, v);
        let (back, n) = leb128::read_u32(&buf, 0).unwrap();
        prop_assert_eq!(back, v);
        prop_assert_eq!(n, buf.len());
        prop_assert!(buf.len() <= 5);
    }

    #[test]
    fn leb_i32_roundtrip(v in any::<i32>()) {
        let mut buf = Vec::new();
        leb128::write_i32(&mut buf, v);
        let (back, n) = leb128::read_i32(&buf, 0).unwrap();
        prop_assert_eq!(back, v);
        prop_assert_eq!(n, buf.len());
    }

    #[test]
    fn leb_i64_roundtrip(v in any::<i64>()) {
        let mut buf = Vec::new();
        leb128::write_i64(&mut buf, v);
        let (back, n) = leb128::read_i64(&buf, 0).unwrap();
        prop_assert_eq!(back, v);
        prop_assert_eq!(n, buf.len());
    }

    #[test]
    fn leb_u64_roundtrip(v in any::<u64>()) {
        let mut buf = Vec::new();
        leb128::write_u64(&mut buf, v);
        let (back, n) = leb128::read_u64(&buf, 0).unwrap();
        prop_assert_eq!(back, v);
        prop_assert_eq!(n, buf.len());
    }

    #[test]
    fn leb_decoding_random_bytes_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..12)) {
        let _ = leb128::read_u32(&bytes, 0);
        let _ = leb128::read_i32(&bytes, 0);
        let _ = leb128::read_u64(&bytes, 0);
        let _ = leb128::read_i64(&bytes, 0);
    }

    #[test]
    fn decoder_survives_random_input(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        // Never panics; random bytes are (almost) never a valid module.
        let _ = decode::decode_module(&bytes);
    }

    #[test]
    fn decoder_survives_corrupted_valid_module(
        flip_at in 0usize..200,
        flip_bits in 1u8..=255,
    ) {
        let m = sample_module(3, 7);
        let mut bytes = encode::encode_module(&m);
        if flip_at < bytes.len() {
            bytes[flip_at] ^= flip_bits;
        }
        let _ = decode::decode_module(&bytes); // must not panic
    }
}

fn valtype_strategy() -> impl Strategy<Value = ValType> {
    prop_oneof![
        Just(ValType::I32),
        Just(ValType::I64),
        Just(ValType::F32),
        Just(ValType::F64),
    ]
}

fn sample_module(consts: i32, locals: usize) -> Module {
    let mut m = Module::new();
    let t = m.push_type(FuncType::new(vec![ValType::I32], vec![ValType::I32]));
    let mut instrs = Vec::new();
    for c in 0..consts {
        instrs.push(Instr::I32Const(c));
        instrs.push(Instr::Drop);
    }
    instrs.push(Instr::LocalGet(0));
    instrs.push(Instr::End);
    let f = m.push_function(t, FuncBody::new(vec![ValType::I64; locals], instrs));
    m.exports.push(Export::func("main", f));
    m.memories.push(MemoryType {
        limits: Limits::bounded(1, 2),
    });
    m.data.push(DataSegment {
        offset: ConstExpr::I32(0),
        bytes: vec![7; 16],
    });
    m
}

proptest! {
    #[test]
    fn module_roundtrip_with_random_shapes(
        nfuncs in 1usize..5,
        nlocals in 0usize..10,
        param_tys in proptest::collection::vec(valtype_strategy(), 0..4),
        consts in proptest::collection::vec(any::<i32>(), 0..20),
        data in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let mut m = Module::new();
        let t = m.push_type(FuncType::new(param_tys.clone(), vec![ValType::I32]));
        for i in 0..nfuncs {
            let mut instrs = Vec::new();
            for c in &consts {
                instrs.push(Instr::I32Const(*c));
                instrs.push(Instr::Drop);
            }
            instrs.push(Instr::I32Const(i as i32));
            instrs.push(Instr::End);
            let f = m.push_function(t, FuncBody::new(vec![ValType::F64; nlocals], instrs));
            m.exports.push(Export::func(format!("f{i}"), f));
        }
        m.memories.push(MemoryType { limits: Limits::bounded(1, 4) });
        if !data.is_empty() {
            m.data.push(DataSegment { offset: ConstExpr::I32(8), bytes: data });
        }
        m.name = Some("prop".into());

        let bytes = encode::encode_module(&m);
        let back = decode::decode_module(&bytes).unwrap();
        prop_assert_eq!(&m, &back);
        // And the roundtripped module still validates.
        sledge_wasm::validate::validate_module(&back).unwrap();
    }
}
