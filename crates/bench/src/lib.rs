//! Shared harness utilities for regenerating the paper's tables and
//! figures: closed-loop load generators (the `ab`-style clients of §5.2),
//! latency statistics, and table formatting.
//!
//! Each table/figure has a dedicated binary in `src/bin/`; see DESIGN.md §5
//! for the experiment index.

use sledge_baseline::{FunctionTable, ProcessPool};
use sledge_core::{FunctionId, LatencyReport, Outcome, Runtime};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Latency statistics over a set of samples.
#[derive(Debug, Clone, Copy)]
pub struct LatencyStats {
    /// Number of samples.
    pub count: usize,
    /// Mean latency.
    pub avg: Duration,
    /// 50th percentile.
    pub p50: Duration,
    /// 99th percentile.
    pub p99: Duration,
    /// Maximum.
    pub max: Duration,
}

impl LatencyStats {
    /// Compute stats from raw samples (sorted internally).
    pub fn from_samples(mut samples: Vec<Duration>) -> Self {
        assert!(!samples.is_empty(), "no samples");
        samples.sort_unstable();
        let count = samples.len();
        let total: Duration = samples.iter().sum();
        let pct = |p: f64| samples[(((count - 1) as f64) * p) as usize];
        LatencyStats {
            count,
            avg: total / count as u32,
            p50: pct(0.50),
            p99: pct(0.99),
            max: *samples.last().expect("non-empty"),
        }
    }
}

/// Result of one closed-loop load run.
#[derive(Debug, Clone, Copy)]
pub struct LoadResult {
    /// Successful requests.
    pub completed: usize,
    /// Failed/rejected requests.
    pub failed: usize,
    /// Wall-clock duration of the run.
    pub wall: Duration,
    /// Client-observed latencies.
    pub latency: LatencyStats,
}

impl LoadResult {
    /// Requests per second.
    pub fn throughput(&self) -> f64 {
        self.completed as f64 / self.wall.as_secs_f64()
    }
}

/// Closed-loop load generator against the Sledge runtime: `concurrency`
/// client threads each issue requests back-to-back until `total` requests
/// have been issued (the `ab -c C -n N` model of §5.2).
pub fn drive_sledge(
    rt: &Runtime,
    id: FunctionId,
    body: &[u8],
    concurrency: usize,
    total: usize,
) -> LoadResult {
    let issued = Arc::new(AtomicUsize::new(0));
    let start = Instant::now();
    let results: Vec<(Vec<Duration>, usize)> = std::thread::scope(|s| {
        let mut handles = Vec::new();
        for _ in 0..concurrency {
            let issued = Arc::clone(&issued);
            let body = body.to_vec();
            handles.push(s.spawn(move || {
                let mut lats = Vec::new();
                let mut failed = 0usize;
                loop {
                    if issued.fetch_add(1, Ordering::Relaxed) >= total {
                        break;
                    }
                    let t0 = Instant::now();
                    match rt.invoke(id, body.clone()).wait() {
                        Some(c) if matches!(c.outcome, Outcome::Success(_)) => {
                            lats.push(t0.elapsed());
                        }
                        _ => failed += 1,
                    }
                }
                (lats, failed)
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("client"))
            .collect()
    });
    let wall = start.elapsed();
    let mut all = Vec::new();
    let mut failed = 0;
    for (lats, f) in results {
        all.extend(lats);
        failed += f;
    }
    LoadResult {
        completed: all.len(),
        failed,
        wall,
        latency: LatencyStats::from_samples(all),
    }
}

/// Closed-loop load generator against the Nuclio-style process baseline.
pub fn drive_baseline(
    pool: &ProcessPool,
    function: &str,
    body: &[u8],
    concurrency: usize,
    total: usize,
) -> LoadResult {
    let issued = Arc::new(AtomicUsize::new(0));
    let start = Instant::now();
    let results: Vec<(Vec<Duration>, usize)> = std::thread::scope(|s| {
        let mut handles = Vec::new();
        for _ in 0..concurrency {
            let issued = Arc::clone(&issued);
            let body = body.to_vec();
            handles.push(s.spawn(move || {
                let mut lats = Vec::new();
                let mut failed = 0usize;
                loop {
                    if issued.fetch_add(1, Ordering::Relaxed) >= total {
                        break;
                    }
                    let t0 = Instant::now();
                    match pool.invoke(function, body.clone()).wait() {
                        Some(c) if c.ok => lats.push(t0.elapsed()),
                        _ => failed += 1,
                    }
                }
                (lats, failed)
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("client"))
            .collect()
    });
    let wall = start.elapsed();
    let mut all = Vec::new();
    let mut failed = 0;
    for (lats, f) in results {
        all.extend(lats);
        failed += f;
    }
    LoadResult {
        completed: all.len(),
        failed,
        wall,
        latency: LatencyStats::from_samples(all),
    }
}

/// Register all application natives in a baseline function table; binaries
/// driving [`ProcessPool`] must call this and
/// [`sledge_baseline::worker_child_main`] first thing in `main`.
pub fn baseline_function_table() -> FunctionTable {
    let mut t = FunctionTable::new();
    for app in sledge_apps::all_apps() {
        t.register(app.name, app.native);
    }
    t
}

/// Number of requests per measurement point. The paper uses 10 k; the
/// default here is reduced so the full suite completes quickly. Set
/// `SLEDGE_BENCH_FULL=1` for paper-scale runs.
pub fn requests_per_point(default_quick: usize, full: usize) -> usize {
    if std::env::var("SLEDGE_BENCH_FULL").is_ok_and(|v| v == "1") {
        full
    } else {
        default_quick
    }
}

/// Format the runtime-internal per-phase breakdown for one measurement
/// point, from [`Runtime::latency_report`] — the figures' latency numbers
/// come from inside the runtime rather than client-side timing, so tail
/// latency is attributable to a phase (queue vs. instantiation vs.
/// execution).
pub fn internal_phase_row(report: &LatencyReport) -> String {
    let g = &report.global;
    let d = |ns: u64| fmt_dur(Duration::from_nanos(ns));
    format!(
        "internal n={}: total {}/{} | queue {}/{} | inst {}/{} | exec {}/{} (p50/p99)",
        g.count(),
        d(g.total.quantile(0.5)),
        d(g.total.quantile(0.99)),
        d(g.queue.quantile(0.5)),
        d(g.queue.quantile(0.99)),
        d(g.instantiation.quantile(0.5)),
        d(g.instantiation.quantile(0.99)),
        d(g.execution.quantile(0.5)),
        d(g.execution.quantile(0.99)),
    )
}

/// Print a duration in adaptive units, as the paper's tables do.
pub fn fmt_dur(d: Duration) -> String {
    let us = d.as_secs_f64() * 1e6;
    if us < 1000.0 {
        format!("{us:.1}µs")
    } else if us < 1_000_000.0 {
        format!("{:.2}ms", us / 1000.0)
    } else {
        format!("{:.3}s", us / 1e6)
    }
}

/// Geometric mean of positive values.
pub fn geomean(values: &[f64]) -> f64 {
    let s: f64 = values.iter().map(|v| v.ln()).sum();
    (s / values.len() as f64).exp()
}

/// Arithmetic mean.
pub fn mean(values: &[f64]) -> f64 {
    values.iter().sum::<f64>() / values.len() as f64
}

/// Population standard deviation.
pub fn stddev(values: &[f64]) -> f64 {
    let m = mean(values);
    (values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / values.len() as f64).sqrt()
}

/// Run a prepared PolyBench kernel once, uninterrupted; returns its
/// execution time and the fuel (cost units) it consumed — the per-kernel
/// calibration point for converting cost units to wall time.
pub fn calibrate_kernel(prepared: &sledge_apps::polybench::PreparedKernel) -> (Duration, u64) {
    let mut inst =
        awsm::Instance::new(Arc::clone(prepared.module()), prepared.config()).expect("inst");
    let mut host = sledge_apps::testutil::BufferHost::new(Vec::new());
    inst.invoke_export("main", &[]).expect("invoke");
    let t0 = Instant::now();
    loop {
        match inst.run(&mut host, u64::MAX) {
            awsm::StepResult::Complete(_) => break,
            awsm::StepResult::Trapped(t) => panic!("kernel trapped: {t}"),
            _ => continue,
        }
    }
    (t0.elapsed(), inst.fuel_used())
}

/// Preempt a prepared kernel `preemptions` times from a second thread and
/// return the observed flag-set-to-`Preempted`-return latencies. The
/// kernel is re-invoked as needed until enough samples are collected.
pub fn preempt_latencies(
    prepared: &sledge_apps::polybench::PreparedKernel,
    preemptions: usize,
) -> Vec<Duration> {
    use std::sync::atomic::{AtomicBool, AtomicU64};
    let mut inst =
        awsm::Instance::new(Arc::clone(prepared.module()), prepared.config()).expect("inst");
    let mut host = sledge_apps::testutil::BufferHost::new(Vec::new());
    inst.invoke_export("main", &[]).expect("invoke");

    let flag = inst.preempt_flag();
    let epoch = Instant::now();
    // Nanoseconds-since-epoch of the most recent flag set; 0 = not set.
    let set_at = Arc::new(AtomicU64::new(0));
    let done = Arc::new(AtomicBool::new(false));

    let flagger = {
        let flag = Arc::clone(&flag);
        let set_at = Arc::clone(&set_at);
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            while !done.load(Ordering::Acquire) {
                // Let the guest get back into its work loop, then preempt.
                std::thread::sleep(Duration::from_micros(200));
                if done.load(Ordering::Acquire) {
                    return;
                }
                set_at.store(
                    epoch.elapsed().as_nanos() as u64 | 1, // never 0
                    Ordering::Release,
                );
                flag.store(true, Ordering::Release);
                // Wait for the runtime to consume this preemption before
                // arming the next one (run() clears the flag on return).
                // Yield, don't spin: on a single-core box a spin-wait
                // starves the guest thread of the CPU it needs to reach
                // its next budget check, polluting every sample with a
                // scheduler timeslice.
                while flag.load(Ordering::Acquire) && !done.load(Ordering::Acquire) {
                    std::thread::yield_now();
                }
            }
        })
    };

    let mut latencies = Vec::with_capacity(preemptions);
    loop {
        match inst.run(&mut host, u64::MAX) {
            awsm::StepResult::Preempted => {
                let now = epoch.elapsed().as_nanos() as u64;
                let t_set = set_at.swap(0, Ordering::AcqRel);
                if t_set != 0 {
                    latencies.push(Duration::from_nanos(now.saturating_sub(t_set)));
                }
                if latencies.len() >= preemptions {
                    break;
                }
            }
            awsm::StepResult::Complete(_) => {
                // Kernel finished before collecting all samples: rerun it.
                inst.invoke_export("main", &[]).expect("invoke");
            }
            awsm::StepResult::Trapped(t) => panic!("kernel trapped: {t}"),
            _ => continue,
        }
    }
    done.store(true, Ordering::Release);
    flagger.join().expect("flagger thread");
    latencies
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_stats_percentiles() {
        let samples: Vec<Duration> = (1..=100).map(Duration::from_millis).collect();
        let s = LatencyStats::from_samples(samples);
        assert_eq!(s.count, 100);
        assert_eq!(s.p50, Duration::from_millis(50));
        assert_eq!(s.p99, Duration::from_millis(99));
        assert_eq!(s.max, Duration::from_millis(100));
        assert_eq!(s.avg, Duration::from_micros(50500));
    }

    #[test]
    fn aggregate_helpers() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((mean(&[1.0, 3.0]) - 2.0).abs() < 1e-12);
        assert!((stddev(&[2.0, 2.0])).abs() < 1e-12);
    }

    #[test]
    fn fmt_dur_units() {
        assert_eq!(fmt_dur(Duration::from_micros(500)), "500.0µs");
        assert_eq!(fmt_dur(Duration::from_millis(12)), "12.00ms");
        assert_eq!(fmt_dur(Duration::from_secs(2)), "2.000s");
    }
}
