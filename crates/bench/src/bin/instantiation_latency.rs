//! Instantiation latency: cold starts vs. warm-pool acquires, per app.
//!
//! For each workload the same invocation stream is driven through two
//! runtimes — one with the sandbox pool disabled (every request pays a full
//! template-based instantiation) and one with a pre-warmed recycling pool
//! (steady-state requests pop a reset instance). Latencies come from the
//! runtime's own `instantiation`-phase histograms, so the warm number is the
//! true acquire cost as accounted on the hot path, not a client stopwatch.
//!
//! A second section isolates the *reset* cost a recycled sandbox pays at
//! retirement, per strategy: the classic high-water-mark reset, the
//! static-footprint reset (zero only the certified store span), and the
//! fully elided reset for `Pure` entry points — both measured against the
//! strategy the effect certificate actually derives for each workload.
//!
//! Usage: `instantiation_latency [--iters N]`

use awsm::{translate, EngineConfig, Instance, NullHost, ResetPolicy, Tier};
use sledge_bench::{fmt_dur, requests_per_point};
use sledge_core::{
    FunctionConfig, LatencyReport, Outcome, PoolStatsSnapshot, Runtime, RuntimeConfig,
};
use sledge_guestc::dsl::*;
use sledge_guestc::{FuncBuilder, ModuleBuilder, Scalar};
use sledge_wasm::module::Module;
use sledge_wasm::types::ValType;
use std::sync::Arc;
use std::time::{Duration, Instant};

const POOL: usize = 4;
const PREWARM: usize = 2;

fn run_stream(
    pool_size: usize,
    prewarm: usize,
    module: &Module,
    body: &[u8],
    iters: usize,
) -> (LatencyReport, PoolStatsSnapshot) {
    let rt = Runtime::new(RuntimeConfig {
        workers: 2,
        pool_size,
        prewarm,
        recycle: true,
        ..Default::default()
    });
    let f = rt
        .register_module(FunctionConfig::new("bench"), module)
        .expect("register");
    if prewarm > 0 {
        // Let the pre-warmer fill before the stream starts, so the warm leg
        // measures steady-state acquires rather than the fill transient.
        let deadline = Instant::now() + Duration::from_secs(2);
        while rt.pool_stats().size < prewarm as u64 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
    }
    for _ in 0..iters {
        let done = rt.invoke(f, body.to_vec()).wait().expect("completion");
        assert!(matches!(done.outcome, Outcome::Success(_)));
    }
    let report = rt.latency_report();
    let pool = rt.pool_stats();
    rt.shutdown();
    (report, pool)
}

/// Scribbles 1 KiB of constant-address words well past its 4 KiB template:
/// the effect certificate bounds the footprint to `[0x8000, 0x8400)`, so a
/// static reset re-zeroes 1 KiB where the high-water reset re-zeroes
/// everything from the template end up.
fn scratch_module() -> Module {
    let mut mb = ModuleBuilder::new("scratch");
    mb.memory(2, Some(2));
    mb.data(0, vec![7u8; 4096]);
    let mut f = FuncBuilder::new(&[], Some(ValType::I32));
    for k in 0..256 {
        f.push(store(Scalar::I32, i32c(0x8000 + k * 4), 0, i32c(k)));
    }
    f.push(ret(Some(load(Scalar::I32, i32c(0x8000), 0))));
    let main = mb.add_func("main", f);
    mb.export_func(main, "main");
    mb.build().unwrap()
}

/// Pure compute over locals against a 4 KiB template: provably no store, no
/// grow — the derived policy skips the memory reset entirely.
fn pure_module() -> Module {
    let mut mb = ModuleBuilder::new("pure");
    mb.memory(2, Some(2));
    mb.data(0, vec![7u8; 4096]);
    let mut f = FuncBuilder::new(&[], Some(ValType::I32));
    let i = f.local(ValType::I32);
    let acc = f.local(ValType::I32);
    f.push(for_loop(
        i,
        i32c(0),
        lt_s(local(i), i32c(64)),
        1,
        vec![set(acc, add(local(acc), mul(local(i), i32c(3))))],
    ));
    f.push(ret(Some(local(acc))));
    let main = mb.add_func("main", f);
    mb.export_func(main, "main");
    mb.build().unwrap()
}

/// Mean ns per `reset_with(policy)` across `iters` dirty-run/reset cycles
/// (only the reset is on the clock).
fn time_resets(cm: &Arc<awsm::CompiledModule>, policy: ResetPolicy, iters: usize) -> u64 {
    let mut inst = Instance::new(Arc::clone(cm), EngineConfig::default()).unwrap();
    let mut total = Duration::ZERO;
    for _ in 0..iters.max(1) {
        inst.call_complete("main", &[], &mut NullHost)
            .expect("bench guest must complete");
        let t0 = Instant::now();
        inst.reset_with(policy).expect("reset");
        total += t0.elapsed();
    }
    (total.as_nanos() / iters.max(1) as u128) as u64
}

fn policy_label(policy: ResetPolicy) -> String {
    match policy {
        ResetPolicy::HighWater => "hwm".into(),
        ResetPolicy::StaticSpan { lo, hi } => format!("static [{lo:#x}, {hi:#x})"),
        ResetPolicy::Elide => "elided".into(),
    }
}

fn main() {
    let mut iters = requests_per_point(500, 5_000);
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--iters" => {
                iters = args[i + 1].parse().expect("--iters N");
                i += 2;
            }
            other => panic!("unknown argument {other}"),
        }
    }

    let apps: Vec<(&str, Module, Vec<u8>)> = vec![
        ("ping", sledge_apps::ping::module(), Vec::new()),
        (
            "echo-8KiB",
            sledge_apps::echo::module(),
            sledge_apps::echo::payload(8 * 1024),
        ),
        (
            "gps_ekf",
            sledge_apps::gps_ekf::module(),
            sledge_apps::gps_ekf::sample_input(),
        ),
        (
            "cifar10",
            sledge_apps::cifar10::module(),
            sledge_apps::cifar10::sample_input(),
        ),
    ];

    println!("# Instantiation latency: cold start vs warm-pool acquire ({iters} iterations/app)");
    println!(
        "# cold: pool disabled; warm: pool_size={POOL}, prewarm={PREWARM}, recycle=on \
         (in-runtime instantiation-phase histograms)"
    );
    println!(
        "{:<12} {:>12} {:>12} {:>12} {:>12} {:>9} {:>9}",
        "app", "cold p50", "cold p99", "warm p50", "warm p99", "speedup", "hit rate"
    );

    let d = |ns: u64| fmt_dur(Duration::from_nanos(ns));
    for (name, module, body) in &apps {
        let (cold, _) = run_stream(0, 0, module, body, iters);
        let (warm, pool) = run_stream(POOL, PREWARM, module, body, iters);
        let cold_p50 = cold.global.instantiation.quantile(0.5);
        let cold_p99 = cold.global.instantiation.quantile(0.99);
        let warm_p50 = warm.global.instantiation.quantile(0.5);
        let warm_p99 = warm.global.instantiation.quantile(0.99);
        let speedup = cold_p50 as f64 / warm_p50.max(1) as f64;
        let hit_rate = pool.hit_rate().unwrap_or(0.0) * 100.0;
        println!(
            "{:<12} {:>12} {:>12} {:>12} {:>12} {:>8.1}x {:>8.1}%",
            name,
            d(cold_p50),
            d(cold_p99),
            d(warm_p50),
            d(warm_p99),
            speedup,
            hit_rate,
        );
    }
    println!();
    println!("# A warm acquire is a LIFO pop of an instance reset at retirement, so its");
    println!("# cost is independent of linear-memory size and data-segment weight, while");
    println!("# a cold start pays allocation plus template copy for every request.");

    let reset_iters = iters.min(2_000);
    println!();
    println!("# Reset strategy at recycle (mean ns/reset over {reset_iters} dirty-run cycles;");
    println!("# \"derived\" is the policy the effect certificate picks for the workload)");
    println!(
        "{:<14} {:>10} {:>12} {:>10}   derived policy",
        "workload", "hwm", "certified", "speedup"
    );
    for (name, module) in [
        ("scratch-1KiB", scratch_module()),
        ("pure-compute", pure_module()),
    ] {
        let cm = Arc::new(translate(&module, Tier::Optimized).expect("translate"));
        let policy = cm.reset_policy("main");
        assert_ne!(
            policy,
            ResetPolicy::HighWater,
            "{name}: certificate failed to beat the default policy"
        );
        let hwm_ns = time_resets(&cm, ResetPolicy::HighWater, reset_iters);
        let cert_ns = time_resets(&cm, policy, reset_iters);
        println!(
            "{:<14} {:>10} {:>12} {:>9.1}x   {}",
            name,
            hwm_ns,
            cert_ns,
            hwm_ns as f64 / cert_ns.max(1) as f64,
            policy_label(policy),
        );
    }
    println!();
    println!("# The high-water reset re-zeroes every byte past the template the run may");
    println!("# have touched; the static reset re-zeroes only the certified store span,");
    println!("# and a Pure entry point skips the memory reset altogether.");
}
