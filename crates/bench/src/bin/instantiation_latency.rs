//! Instantiation latency: cold starts vs. warm-pool acquires, per app.
//!
//! For each workload the same invocation stream is driven through two
//! runtimes — one with the sandbox pool disabled (every request pays a full
//! template-based instantiation) and one with a pre-warmed recycling pool
//! (steady-state requests pop a reset instance). Latencies come from the
//! runtime's own `instantiation`-phase histograms, so the warm number is the
//! true acquire cost as accounted on the hot path, not a client stopwatch.
//!
//! Usage: `instantiation_latency [--iters N]`

use sledge_bench::{fmt_dur, requests_per_point};
use sledge_core::{
    FunctionConfig, LatencyReport, Outcome, PoolStatsSnapshot, Runtime, RuntimeConfig,
};
use sledge_wasm::module::Module;
use std::time::{Duration, Instant};

const POOL: usize = 4;
const PREWARM: usize = 2;

fn run_stream(
    pool_size: usize,
    prewarm: usize,
    module: &Module,
    body: &[u8],
    iters: usize,
) -> (LatencyReport, PoolStatsSnapshot) {
    let rt = Runtime::new(RuntimeConfig {
        workers: 2,
        pool_size,
        prewarm,
        recycle: true,
        ..Default::default()
    });
    let f = rt
        .register_module(FunctionConfig::new("bench"), module)
        .expect("register");
    if prewarm > 0 {
        // Let the pre-warmer fill before the stream starts, so the warm leg
        // measures steady-state acquires rather than the fill transient.
        let deadline = Instant::now() + Duration::from_secs(2);
        while rt.pool_stats().size < prewarm as u64 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
    }
    for _ in 0..iters {
        let done = rt.invoke(f, body.to_vec()).wait().expect("completion");
        assert!(matches!(done.outcome, Outcome::Success(_)));
    }
    let report = rt.latency_report();
    let pool = rt.pool_stats();
    rt.shutdown();
    (report, pool)
}

fn main() {
    let mut iters = requests_per_point(500, 5_000);
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--iters" => {
                iters = args[i + 1].parse().expect("--iters N");
                i += 2;
            }
            other => panic!("unknown argument {other}"),
        }
    }

    let apps: Vec<(&str, Module, Vec<u8>)> = vec![
        ("ping", sledge_apps::ping::module(), Vec::new()),
        (
            "echo-8KiB",
            sledge_apps::echo::module(),
            sledge_apps::echo::payload(8 * 1024),
        ),
        (
            "gps_ekf",
            sledge_apps::gps_ekf::module(),
            sledge_apps::gps_ekf::sample_input(),
        ),
        (
            "cifar10",
            sledge_apps::cifar10::module(),
            sledge_apps::cifar10::sample_input(),
        ),
    ];

    println!("# Instantiation latency: cold start vs warm-pool acquire ({iters} iterations/app)");
    println!(
        "# cold: pool disabled; warm: pool_size={POOL}, prewarm={PREWARM}, recycle=on \
         (in-runtime instantiation-phase histograms)"
    );
    println!(
        "{:<12} {:>12} {:>12} {:>12} {:>12} {:>9} {:>9}",
        "app", "cold p50", "cold p99", "warm p50", "warm p99", "speedup", "hit rate"
    );

    let d = |ns: u64| fmt_dur(Duration::from_nanos(ns));
    for (name, module, body) in &apps {
        let (cold, _) = run_stream(0, 0, module, body, iters);
        let (warm, pool) = run_stream(POOL, PREWARM, module, body, iters);
        let cold_p50 = cold.global.instantiation.quantile(0.5);
        let cold_p99 = cold.global.instantiation.quantile(0.99);
        let warm_p50 = warm.global.instantiation.quantile(0.5);
        let warm_p99 = warm.global.instantiation.quantile(0.99);
        let speedup = cold_p50 as f64 / warm_p50.max(1) as f64;
        let hit_rate = pool.hit_rate().unwrap_or(0.0) * 100.0;
        println!(
            "{:<12} {:>12} {:>12} {:>12} {:>12} {:>8.1}x {:>8.1}%",
            name,
            d(cold_p50),
            d(cold_p99),
            d(warm_p50),
            d(warm_p99),
            speedup,
            hit_rate,
        );
    }
    println!();
    println!("# A warm acquire is a LIFO pop of an instance reset at retirement, so its");
    println!("# cost is independent of linear-memory size and data-segment weight, while");
    println!("# a cold start pays allocation plus template copy for every request.");
}
