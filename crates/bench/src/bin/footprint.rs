//! §5.1 memory-footprint numbers: runtime binary size, per-module translated
//! code size (the paper's 108–112 KB `.so`s), uploaded `.wasm` sizes, and
//! per-sandbox resident footprint (vs. the ~96 MB Nuclio container image and
//! 10s–100s of MB per VM/container function).

use awsm::{translate, EngineConfig, Instance, Tier};
use std::sync::Arc;

fn kib(n: usize) -> String {
    format!("{:.1} KiB", n as f64 / 1024.0)
}

fn main() {
    println!("# Memory footprint (paper §5.1)");

    // Runtime binary size (this harness binary contains the entire runtime).
    if let Ok(exe) = std::env::current_exe() {
        if let Ok(meta) = std::fs::metadata(&exe) {
            println!(
                "{:<34} {:>12}   (paper: Sledge runtime binary 359 KB)",
                "harness binary (runtime + apps):",
                kib(meta.len() as usize)
            );
        }
    }
    println!();
    println!(
        "{:<10} {:>12} {:>16} {:>16} {:>16}",
        "app", ".wasm", "translated", "sandbox", "paper .so"
    );
    for app in sledge_apps::all_apps() {
        let module = (app.module)();
        let wasm = sledge_wasm::encode::encode_module(&module);
        let compiled = Arc::new(translate(&module, Tier::Optimized).expect("translate"));
        let inst =
            Instance::new(Arc::clone(&compiled), EngineConfig::default()).expect("instantiate");
        println!(
            "{:<10} {:>12} {:>16} {:>16} {:>16}",
            app.name,
            kib(wasm.len()),
            kib(compiled.code_size_bytes()),
            kib(inst.footprint_bytes()),
            "108-112 KiB"
        );
    }
    println!();
    println!("# Every sandbox shares its function's translated code via Arc; the");
    println!("# per-request footprint is linear memory + stacks + context, versus");
    println!("# the paper's container images (96.4 MB for the Nuclio processor).");
}
