//! Table 2: per-application execution time, native vs. Sledge sandbox
//! (averaged over 1 k iterations, plus p99 and the normalized ratio).
//!
//! Usage: `table2_exec [--iters N]`

use awsm::{translate, EngineConfig, Instance, StepResult, Tier};
use sledge_apps::testutil::BufferHost;
use sledge_bench::{fmt_dur, LatencyStats};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() {
    let mut iters: usize = 1000; // the paper averages over 1k iterations
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--iters" => {
                iters = args[i + 1].parse().expect("--iters N");
                i += 2;
            }
            other => panic!("unknown argument {other}"),
        }
    }

    println!("# Table 2: execution time of real-world functions, native vs Sledge sandbox");
    println!("# ({iters} iterations per cell)");
    println!(
        "{:<8} | {:>10} {:>10} | {:>10} {:>10} | {:>10} {:>10}",
        "app", "native avg", "native p99", "sledge avg", "sledge p99", "ratio avg", "ratio p99"
    );

    for app in sledge_apps::real_world_apps() {
        let body = (app.sample_input)();

        // Native timing.
        let mut native_lat = Vec::with_capacity(iters);
        let mut sink = 0usize;
        for _ in 0..iters {
            let t0 = Instant::now();
            sink += (app.native)(&body).len();
            native_lat.push(t0.elapsed());
        }
        std::hint::black_box(sink);
        let native = LatencyStats::from_samples(native_lat);

        // Sledge sandbox timing: module translated once, instantiate + run
        // per iteration (the per-request path).
        let module = Arc::new(
            translate(&(app.module)(), Tier::Optimized)
                .unwrap_or_else(|e| panic!("{}: {e}", app.name)),
        );
        let mut sledge_lat = Vec::with_capacity(iters);
        for _ in 0..iters {
            let t0 = Instant::now();
            let mut inst =
                Instance::new(Arc::clone(&module), EngineConfig::default()).expect("instantiate");
            let mut host = BufferHost::new(body.clone());
            inst.invoke_export("main", &[]).expect("invoke");
            loop {
                match inst.run(&mut host, u64::MAX) {
                    StepResult::Complete(_) => break,
                    StepResult::Trapped(t) => panic!("{}: {t}", app.name),
                    _ => continue,
                }
            }
            sledge_lat.push(t0.elapsed());
            std::hint::black_box(host.response.len());
        }
        let sledge = LatencyStats::from_samples(sledge_lat);

        let ratio = |a: Duration, b: Duration| a.as_secs_f64() / b.as_secs_f64();
        println!(
            "{:<8} | {:>10} {:>10} | {:>10} {:>10} | {:>9.2}x {:>9.2}x",
            app.name,
            fmt_dur(native.avg),
            fmt_dur(native.p99),
            fmt_dur(sledge.avg),
            fmt_dur(sledge.p99),
            ratio(sledge.avg, native.avg),
            ratio(sledge.p99, native.p99),
        );
    }
    println!();
    println!("# Paper ratios (AoT-compiled Wasm): EKF 1.09x, GOCR 1.48x, CIFAR10 1.49x,");
    println!("#   RESIZE 1.46x, LPD 1.83x. An interpreting engine has larger constants;");
    println!("#   the ordering (EKF lightest → LPD heaviest) is the reproduced shape.");
}
