//! Figure 5 + Table 1: PolyBench/C execution time across Wasm runtime
//! configurations, normalized to native.
//!
//! Paper configs → this reproduction (see DESIGN.md §4):
//!   Sledge+aWsm            → Optimized tier + vm-guard bounds
//!   Sledge+aWsm-bounds-chk → Optimized tier + software bounds
//!   Sledge+aWsm-mpx        → Optimized tier + emulated-MPX bounds
//!   (static, no checks)    → Optimized tier + no-checks
//!   WAVM-class             → Optimized tier + software bounds (LLVM JIT class)
//!   Wasmer/Lucet-class     → Naive tier + vm-guard (Cranelift class)
//!   Node-class             → Naive tier + software bounds
//!
//! Usage: `fig5_polybench [--iters N] [--kernels a,b,c]`

use awsm::{BoundsStrategy, Tier};
use sledge_apps::polybench::{kernels, Kernel, PreparedKernel};
use sledge_bench::{geomean, mean, preempt_latencies, stddev};
use std::time::Instant;

const CONFIGS: &[(&str, Tier, BoundsStrategy, bool)] = &[
    (
        "Sledge+aWsm",
        Tier::Optimized,
        BoundsStrategy::GuardRegion,
        true,
    ),
    // Same engine with the translate-time dataflow optimizer disabled:
    // the baseline the defaults-on configuration is compared against.
    (
        "Sledge+aWsm (opt-off)",
        Tier::Optimized,
        BoundsStrategy::GuardRegion,
        false,
    ),
    (
        "aWsm-bounds-chk",
        Tier::Optimized,
        BoundsStrategy::Software,
        true,
    ),
    (
        "aWsm-static-elide",
        Tier::Optimized,
        BoundsStrategy::Static,
        true,
    ),
    (
        "aWsm-mpx",
        Tier::Optimized,
        BoundsStrategy::MpxEmulated,
        true,
    ),
    (
        "aWsm-no-checks",
        Tier::Optimized,
        BoundsStrategy::None,
        true,
    ),
    (
        "naive-vm (Cranelift-class)",
        Tier::Naive,
        BoundsStrategy::GuardRegion,
        true,
    ),
    (
        "naive-chk (Node-class)",
        Tier::Naive,
        BoundsStrategy::Software,
        true,
    ),
];

fn time_native(k: &Kernel, iters: u32) -> f64 {
    // Warm up once; then best-effort mean over iters.
    let mut sink = (k.native)();
    let t0 = Instant::now();
    for _ in 0..iters {
        sink += (k.native)();
    }
    let per = t0.elapsed().as_secs_f64() / iters as f64;
    std::hint::black_box(sink);
    per
}

fn time_guest(k: &Kernel, tier: Tier, bounds: BoundsStrategy, optimize: bool, iters: u32) -> f64 {
    // Translate once (the paper's AoT step is off the measured path), then
    // time instantiation + execution per iteration.
    let prepared = PreparedKernel::with_options(k, tier, bounds, optimize);
    let mut sink = prepared.run(); // warm-up
    let t0 = Instant::now();
    for _ in 0..iters {
        sink += prepared.run();
    }
    let per = t0.elapsed().as_secs_f64() / iters as f64;
    std::hint::black_box(sink);
    per
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut iters: u32 = 15; // the paper's methodology (15 iterations)
    let mut filter: Option<Vec<String>> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--iters" => {
                iters = args[i + 1].parse().expect("--iters N");
                i += 2;
            }
            "--kernels" => {
                filter = Some(args[i + 1].split(',').map(str::to_string).collect());
                i += 2;
            }
            other => panic!("unknown argument {other}"),
        }
    }

    let ks: Vec<Kernel> = kernels()
        .into_iter()
        .filter(|k| {
            filter
                .as_ref()
                .is_none_or(|f| f.iter().any(|n| n == k.name))
        })
        .collect();

    println!("# Figure 5: PolyBench/C normalized (vs native) execution time");
    println!("# {} kernels, {} iterations each", ks.len(), iters);
    print!("{:<16} {:>10}", "kernel", "native");
    for (name, _, _, _) in CONFIGS {
        print!(" {:>28}", name);
    }
    println!();

    // slowdowns[config][kernel] = guest/native.
    let mut slowdowns: Vec<Vec<f64>> = vec![Vec::new(); CONFIGS.len()];
    for k in &ks {
        let native = time_native(k, iters);
        print!("{:<16} {:>9.1}µs", k.name, native * 1e6);
        for (ci, (_, tier, bounds, optimize)) in CONFIGS.iter().enumerate() {
            let guest = time_guest(k, *tier, *bounds, *optimize, iters);
            let ratio = guest / native;
            slowdowns[ci].push(ratio);
            print!(" {:>27.2}x", ratio);
        }
        println!();
    }

    println!();
    println!("# Table 1: % slowdown vs native (AM / GM of per-kernel ratios, SD)");
    println!(
        "{:<30} {:>14} {:>14} {:>10}",
        "runtime", "Slowdown(AM)", "Slowdown(GM)", "SD"
    );
    for (ci, (name, _, _, _)) in CONFIGS.iter().enumerate() {
        let pct: Vec<f64> = slowdowns[ci].iter().map(|r| (r - 1.0) * 100.0).collect();
        let ratios = &slowdowns[ci];
        println!(
            "{:<30} {:>13.1}% {:>13.1}% {:>10.2}",
            name,
            mean(&pct),
            (geomean(ratios) - 1.0) * 100.0,
            stddev(&pct)
        );
    }
    println!();
    println!("# Paper (x86_64): aWsm 13.4% AM / 9.9% GM; bounds-chk 62.7%/38.4%;");
    println!("#   mpx 75.1%/51.6%; Wasmer 149.8%/101.6%; WAVM 28.1%/20.5%.");
    println!("# Expected shape: vm-guard < software < mpx; optimized << naive.");

    // Cost-model addendum: the preemption-latency certificate each kernel
    // was registered with, against what a live preemption actually costs,
    // plus what the dataflow optimizer did to the body (every certificate
    // re-validated here, as the registry would).
    println!();
    println!("# Cost model + optimizer: certified gap, preempt latency, opt report");
    println!(
        "{:<16} {:>10} {:>8} {:>8} {:>14} {:>13} {:>7} {:>7}",
        "kernel", "gap(units)", "checks", "splits", "max preempt", "ops(opt)", "elided", "fuel-"
    );
    for k in &ks {
        let prepared =
            PreparedKernel::with_options(k, Tier::Optimized, BoundsStrategy::GuardRegion, true);
        let cost = prepared
            .module()
            .analysis
            .cost
            .as_ref()
            .expect("translation attaches a cost certificate");
        awsm::validate_opt(prepared.module()).expect("optimizer certificate must validate");
        let opt = prepared
            .module()
            .analysis
            .opt
            .as_ref()
            .expect("optimizer report attached when enabled");
        let lats = preempt_latencies(&prepared, 5);
        let max = lats.iter().max().copied().unwrap_or_default();
        println!(
            "{:<16} {:>10} {:>8} {:>8} {:>12.2}µs {:>6}->{:<6} {:>7} {:>7}",
            k.name,
            cost.max_gap,
            cost.checks,
            cost.splits,
            max.as_secs_f64() * 1e6,
            opt.ops_before,
            opt.ops_after,
            opt.checks_elided,
            opt.fuel_sites_merged,
        );
    }
}
