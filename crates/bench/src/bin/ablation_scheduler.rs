//! Scheduler ablation (§3.4): quantify what the paper's preemptive
//! round-robin buys over run-to-completion, and how the quantum length
//! trades scheduling overhead against short-request tail latency.
//!
//! Workload: a mix of long CPU-bound requests and a stream of short
//! requests on a fixed worker count; reports short-request latency
//! percentiles and aggregate throughput per configuration.
//!
//! Usage: `ablation_scheduler [--shorts N]`

use sledge_bench::{fmt_dur, LatencyStats};
use sledge_core::{FunctionConfig, Outcome, Runtime, RuntimeConfig, SchedPolicy};
use std::time::{Duration, Instant};

fn run_config(
    label: &str,
    policy: SchedPolicy,
    quantum: Duration,
    shorts: usize,
) -> (String, LatencyStats, Duration) {
    let rt = Runtime::new(RuntimeConfig {
        workers: 2.min(sledge_core::num_cpus()),
        quantum,
        quantum_fuel: Some(500_000),
        policy,
        ..Default::default()
    });
    let spin = rt
        .register_module(
            FunctionConfig::new("spin"),
            &sledge_apps::polybench::kernel("gemm")
                .map(|k| (k.build)())
                .expect("gemm kernel"),
        )
        .expect("register spin");
    let ekf = rt
        .register_module(FunctionConfig::new("ekf"), &sledge_apps::gps_ekf::module())
        .expect("register ekf");

    // Background hogs: continuous medium-length compute requests.
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let hog_count = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
    let wall0 = Instant::now();
    let lat = std::thread::scope(|s| {
        for _ in 0..4 {
            let rt = &rt;
            let stop = std::sync::Arc::clone(&stop);
            let hog_count = std::sync::Arc::clone(&hog_count);
            s.spawn(move || {
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let done = rt.invoke(spin, Vec::new()).wait();
                    if matches!(
                        done.map(|c| matches!(c.outcome, Outcome::Success(_))),
                        Some(true)
                    ) {
                        hog_count.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    }
                }
            });
        }
        // Foreground: short EKF requests, one at a time (latency probe).
        let body = sledge_apps::gps_ekf::sample_input();
        let mut lats = Vec::with_capacity(shorts);
        for _ in 0..shorts {
            let t0 = Instant::now();
            let done = rt.invoke(ekf, body.clone()).wait().expect("completion");
            assert!(matches!(done.outcome, Outcome::Success(_)));
            lats.push(t0.elapsed());
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        LatencyStats::from_samples(lats)
    });
    let wall = wall0.elapsed();
    let hogs = hog_count.load(std::sync::atomic::Ordering::Relaxed);
    rt.shutdown();
    (
        format!(
            "{label:<26} short p50 {:>9} p99 {:>9} max {:>9} | {:>5} hog completions",
            fmt_dur(lat.p50),
            fmt_dur(lat.p99),
            fmt_dur(lat.max),
            hogs
        ),
        lat,
        wall,
    )
}

fn main() {
    let mut shorts = 200usize;
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--shorts" => {
                shorts = args[i + 1].parse().expect("--shorts N");
                i += 2;
            }
            other => panic!("unknown argument {other}"),
        }
    }

    println!("# Scheduler ablation: short-request latency behind CPU hogs");
    println!("# ({shorts} short EKF probes; 4 closed-loop gemm hog clients)");
    let configs: &[(&str, SchedPolicy, u64)] = &[
        ("run-to-completion", SchedPolicy::RunToCompletion, 5),
        ("preemptive-rr 1ms", SchedPolicy::PreemptiveRr, 1),
        ("preemptive-rr 5ms (paper)", SchedPolicy::PreemptiveRr, 5),
        ("preemptive-rr 20ms", SchedPolicy::PreemptiveRr, 20),
    ];
    for (label, policy, q_ms) in configs {
        let (line, _, _) = run_config(label, *policy, Duration::from_millis(*q_ms), shorts);
        println!("{line}");
    }
    println!();
    println!("# Expected shape (§3.4): RTC shows head-of-line blocking on short");
    println!("#   requests; shorter quanta tighten the tail at the cost of more");
    println!("#   preemptions (lower hog throughput).");
}
