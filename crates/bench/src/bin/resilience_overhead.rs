//! Resilience overhead: the per-request cost of the fault-tolerance layer
//! (execution deadlines and circuit breakers) on the hot path, in the style
//! of the paper's Table 3 churn point.
//!
//! Measures end-to-end echo latency through the full runtime (listener →
//! deque → worker → completion) under four configurations: baseline, with
//! deadlines, with circuit breakers, and with both. The checks are a few
//! atomic loads and an `Instant` comparison per scheduling point, so the
//! deltas should be noise-level.
//!
//! Usage: `resilience_overhead [--iters N]`

use sledge_bench::{fmt_dur, requests_per_point, LatencyStats};
use sledge_core::{
    BreakerConfig, FunctionConfig, Outcome, PhaseHistograms, Runtime, RuntimeConfig, Timings,
};
use sledge_guestc::dsl::*;
use sledge_guestc::{FuncBuilder, ModuleBuilder};
use sledge_wasm::module::Module;
use sledge_wasm::types::ValType;
use std::time::{Duration, Instant};

fn echo_module() -> Module {
    let mut mb = ModuleBuilder::new("echo");
    mb.memory(2, Some(64));
    let req_len = mb.import_func("env", "request_len", &[], Some(ValType::I32));
    let req_read = mb.import_func(
        "env",
        "request_read",
        &[ValType::I32, ValType::I32, ValType::I32],
        Some(ValType::I32),
    );
    let resp_write = mb.import_func(
        "env",
        "response_write",
        &[ValType::I32, ValType::I32],
        Some(ValType::I32),
    );
    let mut f = FuncBuilder::new(&[], Some(ValType::I32));
    let n = f.local(ValType::I32);
    f.extend([
        set(n, call(req_len, vec![])),
        exec(call(req_read, vec![i32c(0), local(n), i32c(0)])),
        exec(call(resp_write, vec![i32c(0), local(n)])),
        ret(Some(i32c(0))),
    ]);
    let main = mb.add_func("main", f);
    mb.export_func(main, "main");
    mb.build().unwrap()
}

fn measure(config: RuntimeConfig, iters: usize) -> LatencyStats {
    let rt = Runtime::new(config);
    let id = rt
        .register_module(FunctionConfig::new("echo"), &echo_module())
        .expect("register echo");
    // Warm up caches and the worker steal path.
    for _ in 0..100 {
        let done = rt.invoke(id, &b"warm"[..]).wait().expect("warmup");
        assert!(matches!(done.outcome, Outcome::Success(_)));
    }
    let mut lat = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t0 = Instant::now();
        let done = rt.invoke(id, &b"ping"[..]).wait().expect("echo");
        lat.push(t0.elapsed());
        assert!(matches!(done.outcome, Outcome::Success(_)));
    }
    rt.shutdown();
    LatencyStats::from_samples(lat)
}

fn main() {
    let mut iters = requests_per_point(2000, 10_000);
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--iters" => {
                iters = args[i + 1].parse().expect("--iters N");
                i += 2;
            }
            other => panic!("unknown argument {other}"),
        }
    }

    let base = || RuntimeConfig {
        workers: 2,
        ..Default::default()
    };
    let deadline = Some(Duration::from_secs(5));
    let breaker = Some(BreakerConfig {
        threshold: 5,
        cooldown: Duration::from_millis(1000),
    });

    let points = [
        ("baseline", base()),
        ("+ deadline (5s)", RuntimeConfig { deadline, ..base() }),
        (
            "+ circuit breaker",
            RuntimeConfig {
                circuit_breaker: breaker,
                ..base()
            },
        ),
        (
            "+ deadline + breaker",
            RuntimeConfig {
                deadline,
                circuit_breaker: breaker,
                ..base()
            },
        ),
    ];

    println!("# Resilience overhead: echo end-to-end latency ({iters} iterations)");
    println!("{:<24} {:>10} {:>10}", "", "Avg", "99%");
    let mut baseline_avg = None;
    for (name, cfg) in points {
        let stats = measure(cfg, iters);
        let delta = match baseline_avg {
            None => {
                baseline_avg = Some(stats.avg);
                String::new()
            }
            Some(b) => format!(
                "  ({:+.1}% vs baseline)",
                (stats.avg.as_secs_f64() / b.as_secs_f64() - 1.0) * 100.0
            ),
        };
        println!(
            "{:<24} {:>10} {:>10}{delta}",
            name,
            fmt_dur(stats.avg),
            fmt_dur(stats.p99)
        );
    }
    println!();
    println!("# The deadline/breaker checks are atomic loads plus one Instant compare");
    println!("# per scheduling point; overhead should be within run-to-run noise.");

    // Direct cost of the always-on latency instrumentation: per completed
    // invocation the worker performs two full per-phase shard records (the
    // global shard and the function's shard). Measure one record and
    // express the pair as a fraction of the baseline end-to-end latency.
    let shard = PhaseHistograms::default();
    let t = Timings {
        arrival: Instant::now(),
        instantiation: Duration::from_micros(7),
        queue_delay: Duration::from_micros(12),
        execution: Duration::from_micros(80),
        preempted: Duration::from_micros(3),
        blocked: Duration::ZERO,
        total: Duration::from_micros(120),
        preemptions: 1,
    };
    let reps: u32 = 1_000_000;
    let t0 = Instant::now();
    for _ in 0..reps {
        shard.record(&t);
    }
    let per_record = t0.elapsed() / reps;
    let per_invocation = per_record * 2;
    let pct = baseline_avg
        .map(|b| per_invocation.as_secs_f64() / b.as_secs_f64() * 100.0)
        .unwrap_or(0.0);
    println!();
    println!(
        "# metrics instrumentation: {} per shard record, 2 records/invocation",
        fmt_dur(per_record)
    );
    println!(
        "# = {} per invocation = {pct:.3}% of baseline avg (target < 2%)",
        fmt_dur(per_invocation)
    );
}
