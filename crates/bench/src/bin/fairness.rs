//! Multi-tenant fairness under overload: a latency-sensitive victim sharing
//! workers with a flooding antagonist, in three legs:
//!
//! 1. **baseline** — victim alone on an idle runtime (the latency floor).
//! 2. **overload, fairness off** — the antagonist floods the same workers
//!    with no admission control; the victim queues behind the flood.
//! 3. **overload, fairness on** — DWRR run queues, a work budget and
//!    priority 0 on the antagonist, and a global in-flight cap; the victim
//!    (priority 3, weight 8) should recover most of its baseline latency
//!    while the antagonist absorbs 429s.
//!
//! Usage: `fairness [--iters N]`

use sledge_bench::{fmt_dur, requests_per_point, LatencyStats};
use sledge_core::{FunctionConfig, Outcome, Runtime, RuntimeConfig};
use sledge_guestc::dsl::*;
use sledge_guestc::{FuncBuilder, ModuleBuilder, Scalar};
use sledge_wasm::module::Module;
use sledge_wasm::types::ValType;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Spin for `iters` (first 4 body bytes, LE), then respond one byte.
fn spin_module(name: &str) -> Module {
    let mut mb = ModuleBuilder::new(name);
    mb.memory(1, Some(1));
    let req_read = mb.import_func(
        "env",
        "request_read",
        &[ValType::I32, ValType::I32, ValType::I32],
        Some(ValType::I32),
    );
    let resp_write = mb.import_func(
        "env",
        "response_write",
        &[ValType::I32, ValType::I32],
        Some(ValType::I32),
    );
    let mut f = FuncBuilder::new(&[], Some(ValType::I32));
    let iters = f.local(ValType::I32);
    let i = f.local(ValType::I32);
    let acc = f.local(ValType::I32);
    f.extend([
        exec(call(req_read, vec![i32c(0), i32c(4), i32c(0)])),
        set(iters, load(Scalar::I32, i32c(0), 0)),
        for_loop(
            i,
            i32c(0),
            lt_u(local(i), local(iters)),
            1,
            vec![set(acc, add(mul(local(acc), i32c(31)), local(i)))],
        ),
        store(Scalar::I32, i32c(8), 0, local(acc)),
        store(Scalar::U8, i32c(16), 0, i32c('d' as i32)),
        exec(call(resp_write, vec![i32c(16), i32c(1)])),
        ret(Some(i32c(0))),
    ]);
    let main = mb.add_func("main", f);
    mb.export_func(main, "main");
    mb.build().unwrap()
}

/// Victim work: a short latency-sensitive spin per request.
const VICTIM_ITERS: u32 = 400_000;
/// Antagonist work: ~4x the victim per request, flooded from 4 clients.
const ANTAGONIST_ITERS: u32 = 1_600_000;
const ANTAGONIST_CLIENTS: usize = 4;

struct Leg {
    victim: LatencyStats,
    antagonist_ok: u64,
    antagonist_throttled: u64,
}

/// Drive `iters` sequential victim probes, optionally under an antagonist
/// flood, on a runtime built by `build`.
fn run_leg(build: impl Fn() -> (Runtime, VictimIds), iters: usize, flood: bool) -> Leg {
    let (rt, ids) = build();

    // Warm the victim path.
    for _ in 0..20 {
        let done = rt
            .invoke(ids.victim, VICTIM_ITERS.to_le_bytes().to_vec())
            .wait()
            .expect("warmup");
        assert!(
            matches!(done.outcome, Outcome::Success(_)),
            "{:?}",
            done.outcome
        );
    }

    let stop = AtomicBool::new(false);
    let ok = AtomicU64::new(0);
    let throttled = AtomicU64::new(0);
    let victim = std::thread::scope(|s| {
        if flood {
            for _ in 0..ANTAGONIST_CLIENTS {
                s.spawn(|| {
                    while !stop.load(Ordering::Relaxed) {
                        let done = rt
                            .invoke(ids.antagonist, ANTAGONIST_ITERS.to_le_bytes().to_vec())
                            .wait()
                            .expect("antagonist completion");
                        match done.outcome {
                            Outcome::Success(_) => ok.fetch_add(1, Ordering::Relaxed),
                            Outcome::Throttled { retry_after, .. } => {
                                let n = throttled.fetch_add(1, Ordering::Relaxed);
                                // Cooperative client: honour a fraction of the
                                // hints so the flood stays a flood without
                                // busy-spinning the listener.
                                if n.is_multiple_of(16) {
                                    std::thread::sleep(retry_after.min(Duration::from_millis(5)));
                                }
                                n
                            }
                            other => panic!("antagonist: {other:?}"),
                        };
                    }
                });
            }
            // Let the flood build a backlog before probing.
            std::thread::sleep(Duration::from_millis(50));
        }

        let mut lat = Vec::with_capacity(iters);
        for _ in 0..iters {
            let t0 = Instant::now();
            let done = rt
                .invoke(ids.victim, VICTIM_ITERS.to_le_bytes().to_vec())
                .wait()
                .expect("victim completion");
            assert!(
                matches!(done.outcome, Outcome::Success(_)),
                "victim must never be rejected: {:?}",
                done.outcome
            );
            lat.push(t0.elapsed());
        }
        stop.store(true, Ordering::Relaxed);
        LatencyStats::from_samples(lat)
    });
    rt.shutdown();
    Leg {
        victim,
        antagonist_ok: ok.load(Ordering::Relaxed),
        antagonist_throttled: throttled.load(Ordering::Relaxed),
    }
}

struct VictimIds {
    victim: sledge_core::FunctionId,
    antagonist: sledge_core::FunctionId,
}

fn build_runtime(fairness: bool) -> (Runtime, VictimIds) {
    let rt = Runtime::new(RuntimeConfig {
        workers: 2,
        quantum: Duration::from_millis(1),
        quantum_fuel: Some(100_000),
        fairness,
        max_inflight: if fairness { 16 } else { 0 },
        ..Default::default()
    });
    let mut victim_cfg = FunctionConfig::new("victim");
    let mut antagonist_cfg = FunctionConfig::new("antagonist");
    if fairness {
        victim_cfg.priority = 3;
        victim_cfg.weight = 8;
        antagonist_cfg.priority = 0;
        antagonist_cfg.weight = 1;
        // ~2 worker-ms of certified work per wall second: a strict budget
        // against a flood that wants two full cores.
        antagonist_cfg.budget_us_per_s = Some(2_000);
    }
    let victim = rt
        .register_module(victim_cfg, &spin_module("victim"))
        .expect("register victim");
    let antagonist = rt
        .register_module(antagonist_cfg, &spin_module("antagonist"))
        .expect("register antagonist");
    (rt, VictimIds { victim, antagonist })
}

fn main() {
    let mut iters = requests_per_point(200, 1000);
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--iters" => {
                iters = args[i + 1].parse().expect("--iters N");
                i += 2;
            }
            other => panic!("unknown argument {other}"),
        }
    }

    println!("# Multi-tenant fairness under overload ({iters} victim probes/leg)");
    println!(
        "# victim: {VICTIM_ITERS}-iter spin; antagonist: {ANTAGONIST_ITERS}-iter spin x {ANTAGONIST_CLIENTS} closed-loop clients"
    );
    println!(
        "{:<26} {:>10} {:>10} {:>12} {:>12}",
        "", "p50", "p99", "antag ok", "antag 429"
    );

    let legs: [(&str, bool, bool); 3] = [
        ("baseline (idle)", false, false),
        ("overload, fairness off", false, true),
        ("overload, fairness on", true, true),
    ];
    let mut baseline_p99 = None;
    let mut off_p99 = None;
    for (name, fairness, flood) in legs {
        let leg = run_leg(|| build_runtime(fairness), iters, flood);
        println!(
            "{:<26} {:>10} {:>10} {:>12} {:>12}",
            name,
            fmt_dur(leg.victim.p50),
            fmt_dur(leg.victim.p99),
            leg.antagonist_ok,
            leg.antagonist_throttled,
        );
        match (fairness, flood) {
            (false, false) => baseline_p99 = Some(leg.victim.p99),
            (false, true) => off_p99 = Some(leg.victim.p99),
            (true, _) => {
                if let (Some(base), Some(off)) = (baseline_p99, off_p99) {
                    let blowup = off.as_secs_f64() / base.as_secs_f64();
                    let recovered = off.as_secs_f64() / leg.victim.p99.as_secs_f64();
                    println!();
                    println!(
                        "# fairness-off blew victim p99 up {blowup:.1}x over baseline; \
                         fairness-on recovered {recovered:.1}x of that"
                    );
                }
                assert!(
                    leg.antagonist_throttled > 0,
                    "budget + cap produced no 429s under flood"
                );
            }
        }
    }
    println!();
    println!("# DWRR weights (8:1) bound the antagonist's share of contended workers;");
    println!("# its budget and priority-0 class convert overload into 429 back-pressure");
    println!("# instead of victim queue delay.");
}
