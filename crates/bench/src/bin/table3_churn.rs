//! Table 3: churn — the cost of starting one GPS-EKF execution via
//! `fork + exec + wait` (the Nuclio per-invocation path) vs. a Sledge
//! sandbox (allocate linear memory + stacks + context, run, tear down).
//!
//! Usage: `table3_churn [--iters N]`

use awsm::{translate, EngineConfig, Instance, StepResult, Tier};
use sledge_apps::testutil::BufferHost;
use sledge_baseline::worker_child_main;
use sledge_bench::{baseline_function_table, fmt_dur, requests_per_point, LatencyStats};
use sledge_core::{FunctionConfig, Outcome, Runtime, RuntimeConfig};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() {
    let table = baseline_function_table();
    worker_child_main(&table);

    let mut iters = requests_per_point(2000, 10_000);
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--iters" => {
                iters = args[i + 1].parse().expect("--iters N");
                i += 2;
            }
            other => panic!("unknown argument {other}"),
        }
    }

    let body = sledge_apps::gps_ekf::sample_input();
    let exe = std::env::current_exe().expect("current exe");

    // fork + exec + wait running the native GPS-EKF once per process.
    let mut fork_lat = Vec::with_capacity(iters);
    {
        use std::io::{Read, Write};
        use std::process::{Command, Stdio};
        for _ in 0..iters {
            let t0 = Instant::now();
            let mut child = Command::new(&exe)
                .env(sledge_baseline::WORKER_ENV, "gps_ekf")
                .stdin(Stdio::piped())
                .stdout(Stdio::piped())
                .stderr(Stdio::null())
                .spawn()
                .expect("spawn");
            child
                .stdin
                .take()
                .expect("stdin")
                .write_all(&body)
                .expect("write body");
            let mut out = Vec::new();
            child
                .stdout
                .take()
                .expect("stdout")
                .read_to_end(&mut out)
                .expect("read response");
            child.wait().expect("wait");
            fork_lat.push(t0.elapsed());
            assert!(!out.is_empty());
        }
    }
    let fork = LatencyStats::from_samples(fork_lat);

    // Sledge sandbox: instantiate + run + teardown (module pre-loaded).
    let module =
        Arc::new(translate(&sledge_apps::gps_ekf::module(), Tier::Optimized).expect("translate"));
    let mut sb_lat = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t0 = Instant::now();
        let mut inst =
            Instance::new(Arc::clone(&module), EngineConfig::default()).expect("instantiate");
        let mut host = BufferHost::new(body.clone());
        inst.invoke_export("main", &[]).expect("invoke");
        loop {
            match inst.run(&mut host, u64::MAX) {
                StepResult::Complete(_) => break,
                StepResult::Trapped(t) => panic!("{t}"),
                _ => continue,
            }
        }
        drop(inst); // teardown
        sb_lat.push(t0.elapsed());
    }
    let sandbox = LatencyStats::from_samples(sb_lat);

    // Instantiation-only cost (the function startup the paper quotes).
    let mut inst_lat = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t0 = Instant::now();
        let inst =
            Instance::new(Arc::clone(&module), EngineConfig::default()).expect("instantiate");
        inst_lat.push(t0.elapsed());
        drop(inst);
    }
    let inst_only = LatencyStats::from_samples(inst_lat);

    // The same churn through the full runtime (listener → deque → worker),
    // measured by the runtime's own per-phase histograms instead of a
    // client-side stopwatch: instantiation and end-to-end quantiles come
    // from Runtime::latency_report.
    let rt = Runtime::new(RuntimeConfig {
        workers: 2,
        ..Default::default()
    });
    let ekf = rt
        .register_module(
            FunctionConfig::new("gps_ekf"),
            &sledge_apps::gps_ekf::module(),
        )
        .expect("register gps_ekf");
    for _ in 0..iters {
        let done = rt.invoke(ekf, body.clone()).wait().expect("ekf");
        assert!(matches!(done.outcome, Outcome::Success(_)));
    }
    let report = rt.latency_report();
    rt.shutdown();

    // The same stream again with the warm sandbox pool enabled: steady-state
    // requests acquire a recycled, template-reset instance instead of paying
    // a fresh instantiation.
    let rt = Runtime::new(RuntimeConfig {
        workers: 2,
        pool_size: 4,
        prewarm: 2,
        recycle: true,
        ..Default::default()
    });
    let ekf = rt
        .register_module(
            FunctionConfig::new("gps_ekf"),
            &sledge_apps::gps_ekf::module(),
        )
        .expect("register gps_ekf");
    for _ in 0..iters {
        let done = rt.invoke(ekf, body.clone()).wait().expect("ekf");
        assert!(matches!(done.outcome, Outcome::Success(_)));
    }
    let warm_report = rt.latency_report();
    let warm_pool = rt.pool_stats();
    rt.shutdown();

    println!("# Table 3: churn for GPS-EKF ({iters} iterations)");
    println!("{:<36} {:>10} {:>10}", "", "99%", "Avg");
    println!(
        "{:<36} {:>10} {:>10}",
        "fork + exec + wait (native)",
        fmt_dur(fork.p99),
        fmt_dur(fork.avg)
    );
    println!(
        "{:<36} {:>10} {:>10}",
        "Sledge sandbox (create+run+teardown)",
        fmt_dur(sandbox.p99),
        fmt_dur(sandbox.avg)
    );
    println!(
        "{:<36} {:>10} {:>10}",
        "Sledge sandbox creation only",
        fmt_dur(inst_only.p99),
        fmt_dur(inst_only.avg)
    );
    let d = |ns: u64| fmt_dur(Duration::from_nanos(ns));
    let g = &report.global;
    println!(
        "{:<36} {:>10} {:>10}",
        "full runtime, internal total",
        d(g.total.quantile(0.99)),
        d(g.total.mean().unwrap_or(0)),
    );
    println!(
        "{:<36} {:>10} {:>10}",
        "full runtime, internal instantiation",
        d(g.instantiation.quantile(0.99)),
        d(g.instantiation.mean().unwrap_or(0)),
    );
    let w = &warm_report.global;
    println!(
        "{:<36} {:>10} {:>10}",
        "full runtime, warm-pool acquire",
        d(w.instantiation.quantile(0.99)),
        d(w.instantiation.mean().unwrap_or(0)),
    );
    println!(
        "# warm pool: {:.0}% hit rate ({} recycled)",
        warm_pool.hit_rate().unwrap_or(0.0) * 100.0,
        warm_pool.recycled
    );
    println!();
    println!(
        "# speedup (avg): {:.1}x",
        fork.avg.as_secs_f64() / sandbox.avg.as_secs_f64()
    );
    println!("# Paper: fork+exec+wait 487µs avg / 588µs p99; Sledge sandbox 61µs avg /");
    println!("#   146µs p99 — sandbox startup is an order of magnitude cheaper.");
}
