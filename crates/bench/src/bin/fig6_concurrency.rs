//! Figure 6: throughput and latency of the ping function with varying
//! concurrency — Sledge vs. the Nuclio-style process baseline.
//!
//! Usage: `fig6_concurrency [--requests N]` (default 2000/point; the paper
//! uses 10 k — set `SLEDGE_BENCH_FULL=1` or pass `--requests 10000`).

use sledge_baseline::ProcessPool;
use sledge_bench::{
    baseline_function_table, drive_baseline, drive_sledge, fmt_dur, internal_phase_row,
    requests_per_point,
};
use sledge_core::{FunctionConfig, Runtime, RuntimeConfig};
use std::time::Duration;

const CONCURRENCIES: &[usize] = &[1, 5, 10, 20, 40, 60, 80, 100];

fn main() {
    // Process-baseline children re-enter main here.
    let table = baseline_function_table();
    sledge_baseline::worker_child_main(&table);

    let mut requests = requests_per_point(2000, 10_000);
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--requests" => {
                requests = args[i + 1].parse().expect("--requests N");
                i += 2;
            }
            other => panic!("unknown argument {other}"),
        }
    }

    let exe = std::env::current_exe().expect("current exe");
    // The paper tunes Nuclio's maxWorker to 16.
    let pool = ProcessPool::new(exe, 16, 4096);

    println!("# Figure 6: ping with varying concurrency ({requests} requests/point)");
    println!("# sledge latency columns are runtime-internal (Runtime::latency_report)");
    println!(
        "{:>5} | {:>12} {:>10} {:>10} | {:>12} {:>10} {:>10} | {:>7}",
        "conc", "sledge req/s", "p50", "p99", "nuclio req/s", "avg", "p99", "speedup"
    );
    for &c in CONCURRENCIES {
        // A fresh runtime per point keeps its histograms scoped to this
        // concurrency level, so the reported quantiles are per-point.
        let rt = Runtime::new(RuntimeConfig::default());
        let ping = rt
            .register_module(FunctionConfig::new("ping"), &sledge_apps::ping::module())
            .expect("register ping");
        let s = drive_sledge(&rt, ping, b"", c, requests);
        let report = rt.latency_report();
        let b = drive_baseline(&pool, "ping", b"", c, requests);
        let total = &report.global.total;
        println!(
            "{:>5} | {:>12.0} {:>10} {:>10} | {:>12.0} {:>10} {:>10} | {:>6.2}x",
            c,
            s.throughput(),
            fmt_dur(Duration::from_nanos(total.quantile(0.5))),
            fmt_dur(Duration::from_nanos(total.quantile(0.99))),
            b.throughput(),
            fmt_dur(b.latency.avg),
            fmt_dur(b.latency.p99),
            s.throughput() / b.throughput()
        );
        println!("      |   {}", internal_phase_row(&report));
        rt.shutdown();
    }
    println!();
    println!("# Paper: Sledge ~3x Nuclio throughput across concurrency levels,");
    println!("#   with significantly lower avg and p99 latency.");
    pool.shutdown();
}
