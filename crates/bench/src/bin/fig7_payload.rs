//! Figure 7: throughput and latency of the network-transfer (echo) function
//! with varying payload size at 100 concurrent connections — Sledge vs. the
//! Nuclio-style process baseline.
//!
//! Usage: `fig7_payload [--requests N]`

use sledge_baseline::ProcessPool;
use sledge_bench::{
    baseline_function_table, drive_baseline, drive_sledge, fmt_dur, internal_phase_row,
    requests_per_point,
};
use sledge_core::{FunctionConfig, Runtime, RuntimeConfig};
use std::time::Duration;

const PAYLOADS: &[(&str, usize)] = &[
    ("1KB", 1 << 10),
    ("10KB", 10 << 10),
    ("100KB", 100 << 10),
    ("1MB", 1 << 20),
];
const CONCURRENCY: usize = 100;

fn main() {
    let table = baseline_function_table();
    sledge_baseline::worker_child_main(&table);

    let mut requests = requests_per_point(1000, 10_000);
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--requests" => {
                requests = args[i + 1].parse().expect("--requests N");
                i += 2;
            }
            other => panic!("unknown argument {other}"),
        }
    }

    let exe = std::env::current_exe().expect("current exe");
    let pool = ProcessPool::new(exe, 16, 4096);

    println!(
        "# Figure 7: network transfer at {CONCURRENCY} concurrent ({requests} requests/point)"
    );
    println!("# sledge latency columns are runtime-internal (Runtime::latency_report)");
    println!(
        "{:>6} | {:>12} {:>10} {:>10} | {:>12} {:>10} {:>10} | {:>7}",
        "size", "sledge req/s", "p50", "p99", "nuclio req/s", "avg", "p99", "speedup"
    );
    for (label, size) in PAYLOADS {
        // Fresh runtime per payload size so the internal histograms are
        // scoped to this measurement point.
        let rt = Runtime::new(RuntimeConfig::default());
        let echo = rt
            .register_module(FunctionConfig::new("echo"), &sledge_apps::echo::module())
            .expect("register echo");
        let body = sledge_apps::echo::payload(*size);
        let s = drive_sledge(&rt, echo, &body, CONCURRENCY, requests);
        let report = rt.latency_report();
        let b = drive_baseline(&pool, "echo", &body, CONCURRENCY, requests);
        let total = &report.global.total;
        println!(
            "{:>6} | {:>12.0} {:>10} {:>10} | {:>12.0} {:>10} {:>10} | {:>6.2}x",
            label,
            s.throughput(),
            fmt_dur(Duration::from_nanos(total.quantile(0.5))),
            fmt_dur(Duration::from_nanos(total.quantile(0.99))),
            b.throughput(),
            fmt_dur(b.latency.avg),
            fmt_dur(b.latency.p99),
            s.throughput() / b.throughput()
        );
        println!("       |   {}", internal_phase_row(&report));
        rt.shutdown();
    }
    println!();
    println!("# Paper: ~2.8x at 1KB/10KB; the gap narrows as copying dominates");
    println!("#   (1MB approaches parity).");
    pool.shutdown();
}
