//! HTTP load generator for the listener front ends.
//!
//! Two modes:
//!
//! * **External** — point it at a running `sledged`:
//!
//!   ```text
//!   loadgen --addr 127.0.0.1:8080 --route /echo --conns 8 --secs 5 \
//!           --pipeline 4 --idle-conns 0
//!   ```
//!
//!   Closed-loop keep-alive clients, optional pipelining depth, optional
//!   herd of idle connections parked on the listener, optional open-loop
//!   pacing (`--rate R` total requests/s). Prints a one-line summary and
//!   exits nonzero if any request failed.
//!
//! * **Compare** (no `--addr`) — boots the runtime twice, once per
//!   listener backend (epoll reactor vs. legacy poll scan), and sweeps the
//!   idle-connection count. The poll loop pays one wasted `read()` per
//!   idle socket per sweep, so its keep-alive throughput collapses as the
//!   herd grows; the reactor only touches ready sockets. This regenerates
//!   `results/loadgen.txt`.

use sledge_bench::{fmt_dur, LatencyStats};
use sledge_core::{FunctionConfig, Runtime, RuntimeConfig};
use sledge_guestc::dsl::*;
use sledge_guestc::{FuncBuilder, ModuleBuilder};
use sledge_http::{format_request, ClientConfig, HttpClient};
use sledge_wasm::module::Module;
use sledge_wasm::types::ValType;
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Opts {
    addr: Option<SocketAddr>,
    route: String,
    conns: usize,
    secs: u64,
    pipeline: usize,
    idle_conns: usize,
    body: String,
    /// Target request rate (req/s) across all connections; 0 = closed loop
    /// (each connection re-fires as soon as its burst completes).
    rate: u64,
}

impl Default for Opts {
    fn default() -> Self {
        Opts {
            addr: None,
            route: "/echo".into(),
            conns: 8,
            secs: 5,
            pipeline: 4,
            idle_conns: 0,
            body: "ping".into(),
            rate: 0,
        }
    }
}

fn parse_args() -> Opts {
    let args: Vec<String> = std::env::args().collect();
    let mut o = Opts::default();
    let mut i = 1;
    let value = |args: &[String], i: usize, flag: &str| -> String {
        args.get(i + 1)
            .unwrap_or_else(|| {
                eprintln!("{flag} requires a value");
                std::process::exit(2);
            })
            .clone()
    };
    while i < args.len() {
        let flag = args[i].as_str();
        match flag {
            "--addr" => o.addr = Some(value(&args, i, flag).parse().expect("--addr host:port")),
            "--route" => o.route = value(&args, i, flag),
            "--conns" => o.conns = value(&args, i, flag).parse().expect("--conns N"),
            "--secs" => o.secs = value(&args, i, flag).parse().expect("--secs N"),
            "--pipeline" => o.pipeline = value(&args, i, flag).parse().expect("--pipeline N"),
            "--idle-conns" => o.idle_conns = value(&args, i, flag).parse().expect("--idle-conns N"),
            "--body" => o.body = value(&args, i, flag),
            "--rate" => o.rate = value(&args, i, flag).parse().expect("--rate R"),
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
        i += 2;
    }
    if o.conns == 0 || o.pipeline == 0 {
        eprintln!("--conns and --pipeline must be positive");
        std::process::exit(2);
    }
    o
}

/// One run's aggregate: responses completed, failures, batch latencies.
struct RunResult {
    completed: u64,
    failed: u64,
    wall: Duration,
    latency: LatencyStats,
}

impl RunResult {
    fn throughput(&self) -> f64 {
        self.completed as f64 / self.wall.as_secs_f64()
    }
}

/// Closed-loop keep-alive client loop: write `pipeline` requests in one
/// burst, read all responses, repeat until `stop`. Connection handling and
/// response parsing come from `sledge_http::HttpClient`.
#[allow(clippy::too_many_arguments)]
fn client_loop(
    addr: SocketAddr,
    route: &str,
    body: &str,
    pipeline: usize,
    interval: Duration,
    stop: &AtomicBool,
    completed: &AtomicU64,
    failed: &AtomicU64,
    samples: &mut Vec<Duration>,
) {
    let mut client = HttpClient::with_config(
        addr,
        ClientConfig {
            read_timeout: Some(Duration::from_secs(10)),
            ..Default::default()
        },
    );
    let burst: Vec<u8> = format_request("POST", route, &[], body.as_bytes()).repeat(pipeline);
    // Open-loop pacing: fire a burst every `interval` regardless of how
    // long the previous one took (interval ZERO = closed loop).
    let mut next_fire = Instant::now();
    while !stop.load(Ordering::Relaxed) {
        if !interval.is_zero() {
            let now = Instant::now();
            if now < next_fire {
                std::thread::sleep(next_fire - now);
            }
            next_fire += interval;
        }
        let t0 = Instant::now();
        if client.send_raw(&burst).is_err() {
            failed.fetch_add(1, Ordering::Relaxed);
            return;
        }
        for _ in 0..pipeline {
            match client.read_response() {
                Ok(resp) if resp.is_success() => {
                    completed.fetch_add(1, Ordering::Relaxed);
                }
                _ => {
                    failed.fetch_add(1, Ordering::Relaxed);
                    return;
                }
            }
        }
        samples.push(t0.elapsed());
    }
}

/// Run one closed-loop measurement against `addr`.
fn run_load(addr: SocketAddr, o: &Opts) -> RunResult {
    // Park the idle herd first; each socket connects and then never
    // speaks, so a scan-based listener pays for it every sweep.
    let mut herd = Vec::with_capacity(o.idle_conns);
    for _ in 0..o.idle_conns {
        match TcpStream::connect(addr) {
            Ok(s) => herd.push(s),
            Err(e) => {
                eprintln!("idle connect failed: {e}");
                std::process::exit(1);
            }
        }
    }

    let stop = Arc::new(AtomicBool::new(false));
    let completed = Arc::new(AtomicU64::new(0));
    let failed = Arc::new(AtomicU64::new(0));
    // Per-connection burst interval for open-loop mode: `rate` requests/s
    // spread across `conns` connections firing `pipeline` requests a burst.
    let interval = if o.rate > 0 {
        Duration::from_secs_f64(o.conns as f64 * o.pipeline as f64 / o.rate as f64)
    } else {
        Duration::ZERO
    };
    let t0 = Instant::now();
    let mut workers = Vec::new();
    for _ in 0..o.conns {
        let (stop, completed, failed) = (stop.clone(), completed.clone(), failed.clone());
        let (route, body, pipeline) = (o.route.clone(), o.body.clone(), o.pipeline);
        workers.push(std::thread::spawn(move || {
            let mut samples = Vec::new();
            client_loop(
                addr,
                &route,
                &body,
                pipeline,
                interval,
                &stop,
                &completed,
                &failed,
                &mut samples,
            );
            samples
        }));
    }
    std::thread::sleep(Duration::from_secs(o.secs));
    stop.store(true, Ordering::Relaxed);
    let mut samples = Vec::new();
    for w in workers {
        samples.extend(w.join().expect("client thread"));
    }
    let wall = t0.elapsed();
    drop(herd);
    if samples.is_empty() {
        samples.push(wall);
    }
    RunResult {
        completed: completed.load(Ordering::Relaxed),
        failed: failed.load(Ordering::Relaxed),
        wall,
        latency: LatencyStats::from_samples(samples),
    }
}

/// Echo guest (request body copied back) for the self-hosted compare mode.
fn echo_guest() -> Module {
    let mut mb = ModuleBuilder::new("echo");
    mb.memory(2, Some(64));
    let req_len = mb.import_func("env", "request_len", &[], Some(ValType::I32));
    let req_read = mb.import_func(
        "env",
        "request_read",
        &[ValType::I32, ValType::I32, ValType::I32],
        Some(ValType::I32),
    );
    let resp_write = mb.import_func(
        "env",
        "response_write",
        &[ValType::I32, ValType::I32],
        Some(ValType::I32),
    );
    let mut f = FuncBuilder::new(&[], Some(ValType::I32));
    let n = f.local(ValType::I32);
    f.extend([
        set(n, call(req_len, vec![])),
        exec(call(req_read, vec![i32c(0), local(n), i32c(0)])),
        exec(call(resp_write, vec![i32c(0), local(n)])),
        ret(Some(i32c(0))),
    ]);
    let main = mb.add_func("main", f);
    mb.export_func(main, "main");
    mb.build().unwrap()
}

fn boot_runtime(reactor: bool) -> Runtime {
    let rt = Runtime::with_http(
        RuntimeConfig {
            workers: 2,
            quantum: Duration::from_millis(5),
            // Idle reaping off: the parked herd must stay parked.
            conn_idle: Duration::ZERO,
            reactor,
            ..Default::default()
        },
        "127.0.0.1:0".parse().unwrap(),
    )
    .expect("bind http");
    rt.register_module(FunctionConfig::new("echo"), &echo_guest())
        .expect("register echo");
    rt
}

fn compare_mode(base: &Opts) {
    // A mostly-idle keep-alive herd is the edge steady state this listener
    // is built for: the poll loop pays one wasted read() per idle socket
    // per sweep, the reactor pays nothing. Few active conns + shallow
    // pipelining keeps the work-per-sweep small so the sweep cost shows.
    let idle_points = [0usize, 1024, 4096, 6144];
    let conns = 4.min(base.conns);
    let pipeline = 2.min(base.pipeline);
    println!(
        "listener backend comparison — {conns} active conns, pipeline {pipeline}, {}s per cell",
        base.secs
    );
    println!();
    println!(
        "{:<10} {:>10} {:>12} {:>10} {:>10}",
        "backend", "idle conns", "req/s", "p50", "p99"
    );
    let mut reactor_rps = Vec::new();
    let mut poll_rps = Vec::new();
    for &reactor in &[true, false] {
        let name = if reactor { "reactor" } else { "poll" };
        for &idle in &idle_points {
            let rt = boot_runtime(reactor);
            let addr = rt.http_addr().expect("http addr");
            let o = Opts {
                addr: Some(addr),
                route: base.route.clone(),
                conns,
                secs: base.secs,
                pipeline,
                idle_conns: idle,
                body: base.body.clone(),
                rate: base.rate,
            };
            let r = run_load(addr, &o);
            println!(
                "{:<10} {:>10} {:>12.0} {:>10} {:>10}",
                name,
                idle,
                r.throughput(),
                fmt_dur(r.latency.p50),
                fmt_dur(r.latency.p99),
            );
            if r.failed > 0 {
                eprintln!("{name}/{idle}: {} failed requests", r.failed);
                std::process::exit(1);
            }
            if reactor {
                reactor_rps.push(r.throughput());
            } else {
                poll_rps.push(r.throughput());
            }
            rt.shutdown();
        }
    }
    println!();
    for (i, &idle) in idle_points.iter().enumerate() {
        println!(
            "idle {idle:>4}: reactor/poll throughput ratio = {:.1}x",
            reactor_rps[i] / poll_rps[i]
        );
    }
}

fn main() {
    let o = parse_args();
    match o.addr {
        Some(addr) => {
            let r = run_load(addr, &o);
            println!(
                "{} requests in {} ({:.0} req/s), {} failed | p50 {} p99 {} max {} (per burst of {})",
                r.completed,
                fmt_dur(r.wall),
                r.throughput(),
                r.failed,
                fmt_dur(r.latency.p50),
                fmt_dur(r.latency.p99),
                fmt_dur(r.latency.max),
                o.pipeline,
            );
            if r.failed > 0 {
                std::process::exit(1);
            }
        }
        None => compare_mode(&o),
    }
}
