//! Figure 8: throughput and latency of the real-world applications at 100
//! concurrent connections — Sledge vs. the Nuclio-style process baseline.
//!
//! Usage: `fig8_apps [--requests N]`

use sledge_baseline::ProcessPool;
use sledge_bench::{
    baseline_function_table, drive_baseline, drive_sledge, fmt_dur, requests_per_point,
};
use sledge_core::{FunctionConfig, Runtime, RuntimeConfig};

const CONCURRENCY: usize = 100;

fn main() {
    let table = baseline_function_table();
    sledge_baseline::worker_child_main(&table);

    let mut requests = requests_per_point(500, 10_000);
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--requests" => {
                requests = args[i + 1].parse().expect("--requests N");
                i += 2;
            }
            other => panic!("unknown argument {other}"),
        }
    }

    let rt = Runtime::new(RuntimeConfig::default());
    let exe = std::env::current_exe().expect("current exe");
    let pool = ProcessPool::new(exe, 16, 4096);

    println!(
        "# Figure 8: real-world applications at {CONCURRENCY} concurrent ({requests} requests/app)"
    );
    println!(
        "{:<8} | {:>12} {:>10} {:>10} | {:>12} {:>10} {:>10} | {:>7}",
        "app", "sledge req/s", "avg", "p99", "nuclio req/s", "avg", "p99", "speedup"
    );
    for app in sledge_apps::real_world_apps() {
        let id = rt
            .register_module(FunctionConfig::new(app.name), &(app.module)())
            .unwrap_or_else(|e| panic!("register {}: {e}", app.name));
        let body = (app.sample_input)();
        let s = drive_sledge(&rt, id, &body, CONCURRENCY, requests);
        let b = drive_baseline(&pool, app.name, &body, CONCURRENCY, requests);
        println!(
            "{:<8} | {:>12.0} {:>10} {:>10} | {:>12.0} {:>10} {:>10} | {:>6.2}x",
            app.name,
            s.throughput(),
            fmt_dur(s.latency.avg),
            fmt_dur(s.latency.p99),
            b.throughput(),
            fmt_dur(b.latency.avg),
            fmt_dur(b.latency.p99),
            s.throughput() / b.throughput()
        );
    }
    println!();
    println!("# Paper: GPS-EKF 4x, GOCR 2.9x, CIFAR10 1.36x; RESIZE/LPD favor the");
    println!("#   baseline as Wasm execution overhead dominates compute-bound work.");
    pool.shutdown();
    rt.shutdown();
}
