//! Routing-tier overhead and scaling benchmark (`results/ring.txt`).
//!
//! Three measurements over the same wasm echo workload:
//!
//! 1. **Direct** — closed-loop keep-alive clients against one `sledged`
//!    node's listener.
//! 2. **Routed ×1** — the same load through a `sledge-router` fronting
//!    that single node: the pure per-request cost of the routing tier
//!    (ring lookup, breaker check, one extra proxy hop).
//! 3. **Routed ×3** — the load spread by the ring over three nodes,
//!    across several function routes so the consistent hash actually
//!    distributes; reports the 1→3-node throughput scaling and the
//!    per-node completion spread.
//!
//! ```text
//! cargo run --release -p sledge-bench --bin ring [-- --secs N]
//! ```

use sledge_bench::{fmt_dur, LatencyStats};
use sledge_cluster::{BreakerConfig, Router, RouterConfig};
use sledge_core::{Runtime, RuntimeConfig};
use sledge_guestc::dsl::*;
use sledge_guestc::{FuncBuilder, ModuleBuilder};
use sledge_http::HttpClient;
use sledge_wasm::module::Module;
use sledge_wasm::types::ValType;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Echo the request body.
fn echo_guest(name: &str) -> Module {
    let mut mb = ModuleBuilder::new(name);
    mb.memory(2, Some(64));
    let req_len = mb.import_func("env", "request_len", &[], Some(ValType::I32));
    let req_read = mb.import_func(
        "env",
        "request_read",
        &[ValType::I32, ValType::I32, ValType::I32],
        Some(ValType::I32),
    );
    let resp_write = mb.import_func(
        "env",
        "response_write",
        &[ValType::I32, ValType::I32],
        Some(ValType::I32),
    );
    let mut f = FuncBuilder::new(&[], Some(ValType::I32));
    let n = f.local(ValType::I32);
    f.extend([
        set(n, call(req_len, vec![])),
        exec(call(req_read, vec![i32c(0), local(n), i32c(0)])),
        exec(call(resp_write, vec![i32c(0), local(n)])),
        ret(Some(i32c(0))),
    ]);
    let main = mb.add_func("main", f);
    mb.export_func(main, "main");
    mb.build().unwrap()
}

fn boot_node() -> Runtime {
    Runtime::with_http(
        RuntimeConfig {
            workers: 2,
            admin_routes: true,
            ..Default::default()
        },
        "127.0.0.1:0".parse().unwrap(),
    )
    .unwrap()
}

fn router_over(nodes: &[&Runtime]) -> Router {
    let members: Vec<(String, SocketAddr)> = nodes
        .iter()
        .enumerate()
        .map(|(i, rt)| (format!("node-{i}"), rt.http_addr().unwrap()))
        .collect();
    Router::start(
        RouterConfig {
            replicas: 2,
            probe_interval: Duration::from_millis(200),
            breaker: BreakerConfig {
                threshold: 3,
                cooldown: Duration::from_millis(500),
            },
            ..Default::default()
        },
        members,
        "127.0.0.1:0".parse().unwrap(),
    )
    .unwrap()
}

/// Closed-loop keep-alive load: `conns` client threads hammer `addr`,
/// each cycling through `routes`, until `secs` elapse.
fn drive(addr: SocketAddr, routes: &[String], conns: usize, secs: u64) -> (f64, LatencyStats) {
    let stop = Arc::new(AtomicBool::new(false));
    let start = Instant::now();
    let lats: Vec<Vec<Duration>> = std::thread::scope(|s| {
        let mut handles = Vec::new();
        for c in 0..conns {
            let stop = Arc::clone(&stop);
            handles.push(s.spawn(move || {
                let mut client = HttpClient::new(addr);
                let mut lats = Vec::new();
                let mut i = c; // offset so threads start on different routes
                while !stop.load(Ordering::Relaxed) {
                    let route = &routes[i % routes.len()];
                    i += 1;
                    let t0 = Instant::now();
                    match client.request("POST", route, &[], b"ping") {
                        Ok(resp) if resp.status == 200 => lats.push(t0.elapsed()),
                        Ok(resp) => panic!("{route}: status {}", resp.status),
                        Err(e) => panic!("{route}: {e}"),
                    }
                }
                lats
            }));
        }
        let deadline = start + Duration::from_secs(secs);
        while Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        stop.store(true, Ordering::Relaxed);
        handles
            .into_iter()
            .map(|h| h.join().expect("client"))
            .collect()
    });
    let wall = start.elapsed();
    let all: Vec<Duration> = lats.into_iter().flatten().collect();
    let n = all.len();
    (
        n as f64 / wall.as_secs_f64(),
        LatencyStats::from_samples(all),
    )
}

fn main() {
    let mut secs = 2u64;
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--secs") {
        secs = args[i + 1].parse().expect("--secs N");
    }
    let conns = 4usize;
    let fns = 8usize;
    let routes: Vec<String> = (0..fns).map(|i| format!("/echo-{i}")).collect();
    let artifacts: Vec<(String, Vec<u8>)> = (0..fns)
        .map(|i| {
            let name = format!("echo-{i}");
            let wasm_module = echo_guest(&name);
            let compiled = awsm::translate_with(
                &wasm_module,
                awsm::Tier::Optimized,
                awsm::TranslateOptions::default(),
            )
            .unwrap();
            (name, awsm::encode_artifact(&compiled))
        })
        .collect();
    let distribute = |router: &Router| {
        for (name, artifact) in &artifacts {
            for push in router.distribute(&format!("{{\"name\": \"{name}\"}}"), artifact) {
                push.result.as_ref().unwrap_or_else(|e| {
                    panic!("distribute {name} to {}: {e}", push.node);
                });
            }
        }
    };

    println!("routing-tier overhead and scaling — {conns} conns, {fns} routes, {secs}s per cell\n");
    println!(
        "{:<12} {:>6} {:>12} {:>10} {:>10}",
        "path", "nodes", "req/s", "p50", "p99"
    );

    // Direct: one node, modules pushed straight to its ingest endpoint.
    let node = boot_node();
    {
        let push_router = router_over(&[&node]); // reuse distribute plumbing
        distribute(&push_router);
        push_router.shutdown();
    }
    let (direct_rps, direct_lat) = drive(node.http_addr().unwrap(), &routes, conns, secs);
    println!(
        "{:<12} {:>6} {:>12.0} {:>10} {:>10}",
        "direct",
        1,
        direct_rps,
        fmt_dur(direct_lat.p50),
        fmt_dur(direct_lat.p99)
    );

    // Routed ×1: same node behind the routing tier.
    let router1 = router_over(&[&node]);
    let (routed1_rps, routed1_lat) = drive(router1.addr(), &routes, conns, secs);
    println!(
        "{:<12} {:>6} {:>12.0} {:>10} {:>10}",
        "routed",
        1,
        routed1_rps,
        fmt_dur(routed1_lat.p50),
        fmt_dur(routed1_lat.p99)
    );
    router1.shutdown();
    node.shutdown();

    // Routed ×3: the ring spreads the 8 routes over three nodes.
    let nodes: Vec<Runtime> = (0..3).map(|_| boot_node()).collect();
    let refs: Vec<&Runtime> = nodes.iter().collect();
    let router3 = router_over(&refs);
    distribute(&router3);
    let (routed3_rps, routed3_lat) = drive(router3.addr(), &routes, conns, secs);
    println!(
        "{:<12} {:>6} {:>12.0} {:>10} {:>10}",
        "routed",
        3,
        routed3_rps,
        fmt_dur(routed3_lat.p50),
        fmt_dur(routed3_lat.p99)
    );

    let spread: Vec<u64> = nodes
        .iter()
        .map(|rt| rt.metrics_handle().stats().completed)
        .collect();
    let stats = router3.stats();
    router3.shutdown();
    for rt in nodes {
        rt.shutdown();
    }

    println!();
    println!(
        "routed/direct throughput: {:.2}x   p50 overhead: {}",
        routed1_rps / direct_rps,
        fmt_dur(routed1_lat.p50.saturating_sub(direct_lat.p50)),
    );
    println!(
        "1->3 node scaling: {:.2}x   per-node completions: {:?}",
        routed3_rps / routed1_rps,
        spread
    );
    println!(
        "router counters: routed {} retried {} failed_over {} failed {}",
        stats.routed, stats.retried, stats.failed_over, stats.failed
    );
    assert_eq!(stats.failed, 0, "routed load must not lose requests");
    assert!(
        spread.iter().filter(|&&c| c > 0).count() >= 2,
        "ring placed every route on one node: {spread:?}"
    );
}
