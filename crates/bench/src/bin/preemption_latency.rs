//! Preemption latency: observed preempt-flag-to-return delay vs the
//! certified bound from the static cost model.
//!
//! For each PolyBench kernel this measures, per preemption:
//!   - **certified bound** — the module's preemption-latency certificate
//!     (`analysis.cost.max_gap`, in cost units), converted to wall time
//!     through a per-kernel calibration of cost units per microsecond
//!     (total `fuel_used` / total execution time of an uninterrupted run);
//!   - **observed slice max** — deterministic, single-threaded: each
//!     `run()` call is granted exactly the certified gap of fuel, so one
//!     call executes at most one check-free segment; the longest call is
//!     the observed worst-case preemption latency, free of OS noise;
//!   - **observed flag latency** — wall time from a second thread setting
//!     the instance's preempt flag to `Instance::run` returning
//!     `Preempted`.
//!
//! The flag latency decomposes as *cross-thread signal delivery* (how
//! long until the store is visible and the engine thread is running —
//! pure OS/hardware, measured separately as the "signal floor" with no
//! guest involved) plus *guest work to the next check*, which is what the
//! certificate bounds and the slice measurement isolates. Consistency
//! with the certificate therefore means `slice max ≈ certified bound`
//! (plus per-call harness overhead); flag-latency tails above the floor
//! are scheduler noise, not certificate violations — which is exactly why
//! the runtime derives `quantum_fuel` from the calibrated cost rate
//! rather than from wall-clock alone.
//!
//! Usage: `preemption_latency [--kernels a,b,c] [--preemptions N] [--calibrate]`
//! `--calibrate` prints only the cost-rate table (units/µs per kernel and
//! the suggested `cost_units_per_us` setting).

use awsm::{BoundsStrategy, Tier};
use sledge_apps::polybench::{kernels, Kernel, PreparedKernel};
use sledge_bench::{calibrate_kernel, preempt_latencies, LatencyStats};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Deterministic slice measurement, no second thread involved: grant each
/// `run()` call exactly `fuel_per_slice` units. Charges are prepaid at
/// budget checks, so one call executes at most `fuel_per_slice` units of
/// guest work before returning — each call's duration is one observed
/// check-free slice, with no OS scheduling in the measurement path.
///
/// The p99 over thousands of slices is the observed analogue of the
/// certificate: the handful of slices containing `memory.grow` or a host
/// call do O(pages)/O(host) wall-clock work regardless of their static
/// weight (the certificate reports such gaps separately as
/// `max_host_gap`), and land in the max, not the p99.
fn slice_times(prepared: &PreparedKernel, fuel_per_slice: u64) -> Vec<Duration> {
    let mut inst =
        awsm::Instance::new(Arc::clone(prepared.module()), prepared.config()).expect("inst");
    let mut host = sledge_apps::testutil::BufferHost::new(Vec::new());
    inst.invoke_export("main", &[]).expect("invoke");
    let mut slices = Vec::new();
    loop {
        let t0 = Instant::now();
        let r = inst.run(&mut host, fuel_per_slice);
        slices.push(t0.elapsed());
        match r {
            awsm::StepResult::Complete(_) => return slices,
            awsm::StepResult::Trapped(t) => panic!("kernel trapped: {t}"),
            _ => continue,
        }
    }
}

/// Cross-thread signal-delivery floor: the same set-flag/observe protocol
/// the kernel measurement uses, with no guest in between — one thread
/// stores a timestamped flag, the other yield-polls and acknowledges.
/// Everything a sample shows above this floor is attributable to guest
/// work between budget checks (the quantity the certificate bounds).
fn signal_floor(samples: usize) -> Vec<Duration> {
    let flag = Arc::new(AtomicBool::new(false));
    let set_at = Arc::new(AtomicU64::new(0));
    let done = Arc::new(AtomicBool::new(false));
    let epoch = Instant::now();
    let setter = {
        let (flag, set_at, done) = (Arc::clone(&flag), Arc::clone(&set_at), Arc::clone(&done));
        std::thread::spawn(move || {
            while !done.load(Ordering::Acquire) {
                std::thread::sleep(Duration::from_micros(200));
                if done.load(Ordering::Acquire) {
                    return;
                }
                set_at.store(epoch.elapsed().as_nanos() as u64 | 1, Ordering::Release);
                flag.store(true, Ordering::Release);
                while flag.load(Ordering::Acquire) && !done.load(Ordering::Acquire) {
                    std::thread::yield_now();
                }
            }
        })
    };
    let mut lats = Vec::with_capacity(samples);
    while lats.len() < samples {
        if flag.swap(false, Ordering::AcqRel) {
            let now = epoch.elapsed().as_nanos() as u64;
            let t_set = set_at.swap(0, Ordering::AcqRel);
            if t_set != 0 {
                lats.push(Duration::from_nanos(now.saturating_sub(t_set)));
            }
        } else {
            std::thread::yield_now();
        }
    }
    done.store(true, Ordering::Release);
    setter.join().expect("setter thread");
    lats
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut filter: Option<Vec<String>> = None;
    let mut preemptions: usize = 50;
    let mut calibrate_only = false;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--kernels" => {
                filter = Some(args[i + 1].split(',').map(str::to_string).collect());
                i += 2;
            }
            "--preemptions" => {
                preemptions = args[i + 1].parse().expect("--preemptions N");
                i += 2;
            }
            "--calibrate" => {
                calibrate_only = true;
                i += 1;
            }
            other => panic!("unknown argument {other}"),
        }
    }

    let ks: Vec<Kernel> = kernels()
        .into_iter()
        .filter(|k| {
            filter
                .as_ref()
                .is_none_or(|f| f.iter().any(|n| n == k.name))
        })
        .collect();
    assert!(
        !ks.is_empty(),
        "no kernels matched --kernels (names have no pb- prefix, e.g. gemm,mvt)"
    );

    println!("# Preemption latency vs certified bound (cost model)");
    if !calibrate_only {
        let f = LatencyStats::from_samples(signal_floor(50));
        println!(
            "# signal floor (no guest): p50 {:.2}µs, p99 {:.2}µs",
            f.p50.as_secs_f64() * 1e6,
            f.p99.as_secs_f64() * 1e6
        );
    }
    if calibrate_only {
        println!(
            "{:<16} {:>12} {:>14} {:>12}",
            "kernel", "exec", "units", "units/µs"
        );
    } else {
        println!(
            "{:<16} {:>10} {:>10} {:>12} {:>10} {:>10} {:>10} {:>10} {:>10}",
            "kernel",
            "gap(units)",
            "units/µs",
            "certified",
            "slice p99",
            "slice max",
            "flag p50",
            "flag p99",
            "flag max"
        );
    }

    let mut rates = Vec::new();
    let mut worst_ratio: f64 = 0.0;
    for k in &ks {
        let prepared = PreparedKernel::new(k, Tier::Optimized, BoundsStrategy::GuardRegion);
        let cost = prepared
            .module()
            .analysis
            .cost
            .as_ref()
            .expect("translation attaches a cost certificate");
        let (exec, units) = calibrate_kernel(&prepared);
        let rate = units as f64 / (exec.as_nanos() as f64 / 1e3).max(1.0);
        rates.push(rate);
        if calibrate_only {
            println!(
                "{:<16} {:>10.1}ms {:>14} {:>12.1}",
                k.name,
                exec.as_secs_f64() * 1e3,
                units,
                rate
            );
            continue;
        }
        // Certified wall-clock bound: worst check-free gap at this kernel's
        // measured cost rate.
        let certified = Duration::from_nanos((cost.max_gap as f64 / rate * 1e3) as u64);
        let slices =
            LatencyStats::from_samples(slice_times(&prepared, u64::from(cost.max_gap.max(1))));
        let stats = LatencyStats::from_samples(preempt_latencies(&prepared, preemptions));
        worst_ratio =
            worst_ratio.max(slices.p99.as_secs_f64() / certified.as_secs_f64().max(1e-12));
        println!(
            "{:<16} {:>10} {:>10.1} {:>11.2}µs {:>9.2}µs {:>9.2}µs {:>9.2}µs {:>9.2}µs {:>9.2}µs",
            k.name,
            cost.max_gap,
            rate,
            certified.as_secs_f64() * 1e6,
            slices.p99.as_secs_f64() * 1e6,
            slices.max.as_secs_f64() * 1e6,
            stats.p50.as_secs_f64() * 1e6,
            stats.p99.as_secs_f64() * 1e6,
            stats.max.as_secs_f64() * 1e6,
        );
    }

    println!();
    let gm = sledge_bench::geomean(&rates);
    println!("# geomean cost rate: {gm:.1} units/µs");
    println!(
        "# suggested config: {{\"cost_units_per_us\": {}}}",
        gm.round().max(1.0) as u64
    );
    if !calibrate_only {
        println!(
            "# worst slice-p99/certified ratio: {worst_ratio:.2} (deterministic; ~1 means \
             observed check-free slices match the certificate, excess is per-call \
             harness overhead; slice max additionally catches memory.grow/host slices)"
        );
        println!(
            "# flag columns additionally include cross-thread signal delivery — \
             compare against the floor above, not the certificate."
        );
    }
}
