//! Criterion micro-benchmarks for the mechanisms the paper's design rests
//! on: sandbox instantiation, module translation, work-stealing deque
//! operations, HTTP parsing, and kernel execution per engine configuration.

use awsm::{translate, BoundsStrategy, EngineConfig, Instance, StepResult, Tier};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sledge_apps::polybench::{kernel, PreparedKernel};
use sledge_apps::testutil::BufferHost;
use std::sync::Arc;

fn bench_instantiation(c: &mut Criterion) {
    let module =
        Arc::new(translate(&sledge_apps::gps_ekf::module(), Tier::Optimized).expect("translate"));
    c.bench_function("sandbox_instantiate_ekf", |b| {
        b.iter(|| {
            let inst =
                Instance::new(Arc::clone(&module), EngineConfig::default()).expect("instantiate");
            std::hint::black_box(inst.footprint_bytes())
        })
    });
    c.bench_function("fork_exec_wait_true", |b| {
        b.iter(|| sledge_baseline::fork_exec_wait("/bin/true").expect("spawn"))
    });
}

fn bench_translate(c: &mut Criterion) {
    let module = sledge_apps::gps_ekf::module();
    c.bench_function("translate_ekf_optimized", |b| {
        b.iter(|| translate(&module, Tier::Optimized).expect("translate"))
    });
    let wasm = sledge_wasm::encode::encode_module(&module);
    c.bench_function("decode_validate_ekf", |b| {
        b.iter(|| {
            let m = sledge_wasm::decode::decode_module(&wasm).expect("decode");
            sledge_wasm::validate::validate_module(&m).expect("validate");
            m.num_funcs()
        })
    });
}

fn bench_kernel_configs(c: &mut Criterion) {
    let k = kernel("gemm").expect("gemm");
    let mut g = c.benchmark_group("gemm_by_config");
    for (label, tier, bounds, optimize) in [
        (
            "opt_vmguard",
            Tier::Optimized,
            BoundsStrategy::GuardRegion,
            true,
        ),
        // Dataflow optimizer off: the baseline for the default config.
        (
            "opt_vmguard_noopt",
            Tier::Optimized,
            BoundsStrategy::GuardRegion,
            false,
        ),
        (
            "opt_software",
            Tier::Optimized,
            BoundsStrategy::Software,
            true,
        ),
        ("opt_static", Tier::Optimized, BoundsStrategy::Static, true),
        (
            "opt_mpx",
            Tier::Optimized,
            BoundsStrategy::MpxEmulated,
            true,
        ),
        (
            "naive_vmguard",
            Tier::Naive,
            BoundsStrategy::GuardRegion,
            true,
        ),
    ] {
        let prepared = PreparedKernel::with_options(&k, tier, bounds, optimize);
        g.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter(|| prepared.run())
        });
    }
    g.finish();
}

fn bench_app_exec(c: &mut Criterion) {
    let mut g = c.benchmark_group("app_exec_sledge");
    g.sample_size(20);
    for app in sledge_apps::real_world_apps() {
        let module = Arc::new(translate(&(app.module)(), Tier::Optimized).expect("translate"));
        let body = (app.sample_input)();
        g.bench_function(BenchmarkId::from_parameter(app.name), |b| {
            b.iter(|| {
                let mut inst = Instance::new(Arc::clone(&module), EngineConfig::default())
                    .expect("instantiate");
                let mut host = BufferHost::new(body.clone());
                inst.invoke_export("main", &[]).expect("invoke");
                loop {
                    match inst.run(&mut host, u64::MAX) {
                        StepResult::Complete(_) => break,
                        StepResult::Trapped(t) => panic!("{t}"),
                        _ => continue,
                    }
                }
                host.response.len()
            })
        });
    }
    g.finish();
}

fn bench_deque(c: &mut Criterion) {
    c.bench_function("deque_push_pop", |b| {
        let d = sledge_deque::WorkStealingDeque::new();
        b.iter(|| {
            d.push(1u64);
            d.pop()
        })
    });
    c.bench_function("deque_push_steal", |b| {
        let d = sledge_deque::WorkStealingDeque::new();
        b.iter(|| {
            d.push(1u64);
            d.steal()
        })
    });
}

fn bench_http_parse(c: &mut Criterion) {
    let req = b"POST /fn/echo HTTP/1.1\r\nHost: edge\r\nContent-Length: 512\r\n\r\n";
    let body = vec![0x41u8; 512];
    let mut full = req.to_vec();
    full.extend_from_slice(&body);
    c.bench_function("http_parse_request", |b| {
        b.iter(|| {
            let mut p = sledge_http::RequestParser::new(1 << 20);
            p.feed(&full).expect("parse")
        })
    });
}

fn bench_preempt_overhead(c: &mut Criterion) {
    // Cost of running a compute kernel with fine-grained fuel slicing vs one
    // shot: the scheduling-overhead knob of §3.4.
    let k = kernel("jacobi-1d").expect("jacobi-1d");
    let m = (k.build)();
    let compiled = Arc::new(translate(&m, Tier::Optimized).expect("translate"));
    let mut g = c.benchmark_group("preemption_granularity");
    g.sample_size(20);
    for fuel in [1_000u64, 100_000, u64::MAX] {
        g.bench_function(BenchmarkId::from_parameter(fuel), |b| {
            b.iter(|| {
                let mut inst = Instance::new(Arc::clone(&compiled), EngineConfig::default())
                    .expect("instantiate");
                let mut host = BufferHost::new(Vec::new());
                inst.invoke_export("main", &[]).expect("invoke");
                loop {
                    match inst.run(&mut host, fuel) {
                        StepResult::Complete(v) => break v,
                        StepResult::Trapped(t) => panic!("{t}"),
                        _ => continue,
                    }
                }
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_instantiation,
    bench_translate,
    bench_kernel_configs,
    bench_app_exec,
    bench_deque,
    bench_http_parse,
    bench_preempt_overhead
);
criterion_main!(benches);
