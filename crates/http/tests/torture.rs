//! Protocol-torture integration suite for the listener front ends.
//!
//! Every scenario runs against BOTH backends — the epoll readiness reactor
//! and the legacy poll scan loop — through the common [`HttpServer`]
//! facade, so the two implementations are held to the identical contract:
//! slowloris reaping, pipelined bursts answered in order, keep-alive
//! reuse, socket-tier connection-budget shedding, drain semantics, and the
//! half-close / idle-deadline regressions.

use sledge_http::{Backend, ConnectionEvent, HttpServer, Request, Response, ServerConfig};
use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream};
use std::time::{Duration, Instant};

const BACKENDS: [Backend; 2] = [Backend::Reactor, Backend::Poll];

fn bind(backend: Backend, max_connections: usize, idle: Duration) -> HttpServer {
    HttpServer::bind(
        "127.0.0.1:0".parse().unwrap(),
        ServerConfig {
            max_request_size: 1 << 20,
            idle_timeout: idle,
            max_connections,
            backend,
        },
    )
    .unwrap()
}

fn poll_until<F: FnMut(&mut HttpServer) -> bool>(server: &mut HttpServer, mut done: F) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !done(server) {
        assert!(Instant::now() < deadline, "poll_until timed out");
    }
}

/// Drive the server as a plain uppercase-echo service until `stop` says
/// we're finished. Returns every event seen.
fn echo_step(server: &mut HttpServer) -> Vec<(u64, Request)> {
    let mut got = Vec::new();
    for ev in server.poll(Duration::from_millis(5)) {
        if let ConnectionEvent::Request(id, req) = ev {
            let body = req.body.to_ascii_uppercase();
            server.send(id, &Response::ok(body).to_bytes());
            got.push((id, req));
        }
    }
    got
}

fn read_to_eof(s: &mut TcpStream) -> Vec<u8> {
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let mut resp = Vec::new();
    let mut buf = [0u8; 4096];
    loop {
        match s.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => resp.extend_from_slice(&buf[..n]),
        }
    }
    resp
}

fn post(route: &str, body: &str) -> Vec<u8> {
    format!(
        "POST {route} HTTP/1.1\r\nContent-Length: {}\r\n\r\n{}",
        body.len(),
        body
    )
    .into_bytes()
}

/// Read exactly one HTTP/1.1 response off the stream (headers to CRLFCRLF,
/// then Content-Length body bytes). Returns (status-line, body).
fn read_one_response(s: &mut TcpStream) -> (String, Vec<u8>) {
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let mut raw = Vec::new();
    let mut buf = [0u8; 1];
    // Headers, byte at a time (test-grade, not perf-sensitive).
    while !raw.ends_with(b"\r\n\r\n") {
        match s.read(&mut buf) {
            Ok(1) => raw.push(buf[0]),
            _ => panic!(
                "connection ended mid-headers: {:?}",
                String::from_utf8_lossy(&raw)
            ),
        }
    }
    let head = String::from_utf8_lossy(&raw).to_string();
    let status = head.lines().next().unwrap_or_default().to_string();
    let len: usize = head
        .lines()
        .find_map(|l| {
            let (k, v) = l.split_once(':')?;
            k.eq_ignore_ascii_case("content-length")
                .then(|| v.trim().parse().ok())?
        })
        .unwrap_or(0);
    let mut body = vec![0u8; len];
    s.read_exact(&mut body).expect("body");
    (status, body)
}

#[test]
fn slowloris_trickle_is_reaped_with_408() {
    for backend in BACKENDS {
        let mut server = bind(backend, 0, Duration::from_millis(80));
        let addr = server.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            // A header trickle that never completes the request.
            let _ = s.write_all(b"POST /fn HTTP/1.1\r\nContent-Le");
            read_to_eof(&mut s)
        });
        poll_until(&mut server, |srv| {
            srv.poll(Duration::from_millis(5));
            srv.connection_count() == 0 && srv.counters().snapshot().accepted == 1
        });
        let resp = String::from_utf8(client.join().unwrap()).unwrap();
        assert!(
            resp.starts_with("HTTP/1.1 408"),
            "[{}] {resp}",
            backend.name()
        );
        assert_eq!(server.counters().snapshot().reaped, 1, "{}", backend.name());
    }
}

#[test]
fn pipelined_burst_answered_in_order() {
    const N: usize = 32;
    for backend in BACKENDS {
        let mut server = bind(backend, 0, Duration::from_secs(30));
        let addr = server.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            // The whole burst leaves in one write: the server must parse
            // all N back-to-back requests and answer them in order.
            let mut burst = Vec::new();
            for i in 0..N {
                burst.extend_from_slice(&post("/fn", &format!("req-{i:02}")));
            }
            s.write_all(&burst).unwrap();
            let mut bodies = Vec::new();
            for _ in 0..N {
                let (status, body) = read_one_response(&mut s);
                assert!(status.starts_with("HTTP/1.1 200"), "{status}");
                bodies.push(String::from_utf8(body).unwrap());
            }
            bodies
        });
        let mut answered = 0;
        poll_until(&mut server, |srv| {
            answered += echo_step(srv).len();
            answered == N
        });
        // Flush whatever is still queued.
        poll_until(&mut server, |srv| {
            srv.poll(Duration::from_millis(2));
            srv.unflushed() == 0
        });
        let bodies = client.join().unwrap();
        let expect: Vec<String> = (0..N).map(|i| format!("REQ-{i:02}")).collect();
        assert_eq!(bodies, expect, "{}", backend.name());
        let snap = server.counters().snapshot();
        assert_eq!(snap.requests, N as u64, "{}", backend.name());
        assert_eq!(snap.responses, N as u64, "{}", backend.name());
    }
}

#[test]
fn keep_alive_serves_many_sequential_requests() {
    const N: usize = 12;
    for backend in BACKENDS {
        let mut server = bind(backend, 0, Duration::from_secs(30));
        let addr = server.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            let mut bodies = Vec::new();
            for i in 0..N {
                s.write_all(&post("/fn", &format!("ping-{i}"))).unwrap();
                let (status, body) = read_one_response(&mut s);
                assert!(status.starts_with("HTTP/1.1 200"), "{status}");
                bodies.push(String::from_utf8(body).unwrap());
            }
            bodies
        });
        let mut answered = 0;
        poll_until(&mut server, |srv| {
            answered += echo_step(srv).len();
            answered == N
        });
        poll_until(&mut server, |srv| {
            srv.poll(Duration::from_millis(2));
            srv.unflushed() == 0
        });
        let bodies = client.join().unwrap();
        assert_eq!(bodies.len(), N);
        for (i, b) in bodies.iter().enumerate() {
            assert_eq!(b, &format!("PING-{i}"), "{}", backend.name());
        }
        // One connection served everything.
        let snap = server.counters().snapshot();
        assert_eq!(snap.accepted, 1, "{}", backend.name());
        assert_eq!(snap.requests, N as u64, "{}", backend.name());
    }
}

#[test]
fn connection_budget_shed_is_503_close_before_parse() {
    for backend in BACKENDS {
        let mut server = bind(backend, 2, Duration::from_secs(30));
        let addr = server.local_addr().unwrap();
        // Fill the budget.
        let _a = TcpStream::connect(addr).unwrap();
        let _b = TcpStream::connect(addr).unwrap();
        poll_until(&mut server, |srv| {
            srv.poll(Duration::from_millis(5));
            srv.connection_count() == 2
        });
        // The third peer is shed at the socket tier.
        let shed = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            read_to_eof(&mut s)
        });
        poll_until(&mut server, |srv| {
            srv.poll(Duration::from_millis(5));
            srv.counters().snapshot().shed == 1
        });
        let resp = String::from_utf8(shed.join().unwrap()).unwrap();
        assert!(
            resp.starts_with("HTTP/1.1 503"),
            "[{}] {resp}",
            backend.name()
        );
        assert!(resp.contains("Connection: close"), "{resp}");
        // Shed before parse: no request was ever surfaced or counted.
        let snap = server.counters().snapshot();
        assert_eq!(snap.requests, 0, "{}", backend.name());
        assert_eq!(snap.accepted, 2, "shed conns are never accepted");
    }
}

#[test]
fn drain_finishes_in_flight_responses_then_sheds_new_peers() {
    for backend in BACKENDS {
        let mut server = bind(backend, 0, Duration::from_secs(30));
        let addr = server.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&post("/fn", "in-flight")).unwrap();
            let (status, body) = read_one_response(&mut s);
            // After the response the server closes the drained connection.
            let rest = read_to_eof(&mut s);
            (status, body, rest)
        });
        // Surface the request but do NOT answer yet.
        let mut pending = Vec::new();
        poll_until(&mut server, |srv| {
            for ev in srv.poll(Duration::from_millis(5)) {
                if let ConnectionEvent::Request(id, req) = ev {
                    pending.push((id, req.body));
                }
            }
            !pending.is_empty()
        });
        // Drain starts with the response still in flight.
        server.begin_drain();
        // A new peer arriving mid-drain is shed at the socket tier.
        let late = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            read_to_eof(&mut s)
        });
        poll_until(&mut server, |srv| {
            srv.poll(Duration::from_millis(5));
            srv.counters().snapshot().shed == 1
        });
        // Now the worker answers; the drained connection must still carry
        // the response out before closing.
        for (id, body) in pending.drain(..) {
            assert!(server.send(id, &Response::ok(body).to_bytes()));
        }
        poll_until(&mut server, |srv| {
            srv.poll(Duration::from_millis(5));
            srv.connection_count() == 0
        });
        let (status, body, _rest) = client.join().unwrap();
        assert!(
            status.starts_with("HTTP/1.1 200"),
            "[{}] {status}",
            backend.name()
        );
        assert_eq!(body, b"in-flight", "{}", backend.name());
        let late_resp = String::from_utf8(late.join().unwrap()).unwrap();
        assert!(late_resp.starts_with("HTTP/1.1 503"), "{late_resp}");
    }
}

#[test]
fn half_close_mid_flush_delivers_all_pipelined_responses() {
    // Satellite regression: EOF observed while responses are queued or in
    // flight must not drop them (both backends).
    for backend in BACKENDS {
        let mut server = bind(backend, 0, Duration::from_secs(30));
        let addr = server.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            let mut burst = post("/fn", "first");
            burst.extend_from_slice(&post("/fn", "second"));
            s.write_all(&burst).unwrap();
            s.shutdown(Shutdown::Write).unwrap();
            let raw = read_to_eof(&mut s);
            String::from_utf8_lossy(&raw).to_string()
        });
        // Collect both requests, then answer strictly after the EOF has
        // had time to be observed.
        let mut pending = Vec::new();
        poll_until(&mut server, |srv| {
            for ev in srv.poll(Duration::from_millis(5)) {
                if let ConnectionEvent::Request(id, req) = ev {
                    pending.push((id, req.body));
                }
            }
            pending.len() == 2
        });
        for _ in 0..20 {
            server.poll(Duration::from_millis(1));
        }
        for (id, body) in pending.drain(..) {
            assert!(
                server.send(id, &Response::ok(body).to_bytes()),
                "{}",
                backend.name()
            );
        }
        poll_until(&mut server, |srv| {
            srv.poll(Duration::from_millis(5));
            srv.connection_count() == 0
        });
        let resp = client.join().unwrap();
        let first = resp.find("first");
        let second = resp.find("second");
        assert!(
            first.is_some() && second.is_some(),
            "[{}] dropped pipelined response: {resp}",
            backend.name()
        );
        assert!(first.unwrap() < second.unwrap(), "out of order: {resp}");
    }
}

#[test]
fn idle_deadline_resets_on_activity() {
    // Satellite regression: the idle reaper measures from the last byte
    // moved, never from accept — a slow-but-live client survives windows
    // longer than the idle timeout as long as each gap stays under it.
    let idle = Duration::from_millis(400);
    for backend in BACKENDS {
        let mut server = bind(backend, 0, idle);
        let addr = server.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            // Total transmission time ~3× the idle window; each gap ~idle/3.
            let mut max_gap = Duration::ZERO;
            let mut last = Instant::now();
            let payload = post("/fn", "alive");
            for chunk in payload.chunks(5) {
                std::thread::sleep(idle / 3);
                if s.write_all(chunk).is_err() {
                    break;
                }
                max_gap = max_gap.max(last.elapsed());
                last = Instant::now();
            }
            let (status, body) = read_one_response(&mut s);
            (status, body, max_gap)
        });
        let mut answered = 0;
        poll_until(&mut server, |srv| {
            answered += echo_step(srv).len();
            answered == 1
        });
        poll_until(&mut server, |srv| {
            srv.poll(Duration::from_millis(2));
            srv.unflushed() == 0
        });
        let (status, body, max_gap) = client.join().unwrap();
        // Only assert survival when the client genuinely kept every gap
        // under the window (a loaded test machine can overshoot the sleep).
        if max_gap < idle {
            assert!(
                status.starts_with("HTTP/1.1 200"),
                "[{}] reaped a live connection (max gap {max_gap:?}): {status}",
                backend.name()
            );
            assert_eq!(body, b"ALIVE");
            assert_eq!(server.counters().snapshot().reaped, 0, "{}", backend.name());
        }
    }
}
