//! Property-based tests for the HTTP layer: serialize→parse round trips
//! with arbitrary bodies and fragmentation, and parser robustness against
//! random bytes.

use proptest::prelude::*;
use sledge_http::{ParseStatus, RequestParser, Response, StatusCode};

proptest! {
    #[test]
    fn request_roundtrip_with_arbitrary_fragmentation(
        path_seg in "[a-zA-Z0-9_-]{1,24}",
        body in proptest::collection::vec(any::<u8>(), 0..2048),
        cuts in proptest::collection::vec(1usize..64, 0..8),
    ) {
        let raw = format!(
            "POST /{path_seg} HTTP/1.1\r\nHost: edge\r\nContent-Length: {}\r\n\r\n",
            body.len()
        );
        let mut wire = raw.into_bytes();
        wire.extend_from_slice(&body);

        // Feed in arbitrary fragments.
        let mut parser = RequestParser::new(1 << 20);
        let mut consumed = 0usize;
        let mut result = None;
        let mut cut_iter = cuts.iter().copied().chain(std::iter::repeat(17));
        while consumed < wire.len() {
            let n = cut_iter.next().expect("infinite").min(wire.len() - consumed);
            match parser.feed(&wire[consumed..consumed + n]).expect("valid request") {
                ParseStatus::Complete(req) => {
                    result = Some(req);
                    break;
                }
                ParseStatus::NeedMore => consumed += n,
            }
        }
        let req = result.expect("request completes");
        prop_assert_eq!(&req.path, &format!("/{path_seg}"));
        prop_assert_eq!(req.header("host"), Some("edge"));
        prop_assert_eq!(req.body, body);
    }

    #[test]
    fn parser_never_panics_on_random_bytes(
        bytes in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let mut parser = RequestParser::new(4096);
        let _ = parser.feed(&bytes);
    }

    #[test]
    fn response_roundtrips_through_its_own_wire_format(
        body in proptest::collection::vec(any::<u8>(), 0..1024),
        close in any::<bool>(),
    ) {
        let mut resp = Response::ok(body.clone());
        resp.close = close;
        let wire = resp.to_bytes();
        // Head/body split.
        let split = wire.windows(4).position(|w| w == b"\r\n\r\n").expect("head end");
        let head = std::str::from_utf8(&wire[..split]).expect("ascii head");
        prop_assert!(head.starts_with("HTTP/1.1 200 OK"));
        let cl = format!("Content-Length: {}", body.len());
        prop_assert!(head.contains(&cl));
        prop_assert_eq!(close, head.contains("Connection: close"));
        prop_assert_eq!(&wire[split + 4..], &body[..]);
    }

    #[test]
    fn error_responses_carry_status(code in 0usize..5) {
        let status = [
            StatusCode::BadRequest,
            StatusCode::NotFound,
            StatusCode::TooManyRequests,
            StatusCode::InternalServerError,
            StatusCode::ServiceUnavailable,
        ][code];
        let wire = Response::error(status, "why").to_bytes();
        let head = String::from_utf8_lossy(&wire).to_string();
        let expect = format!("HTTP/1.1 {}", status.code());
        prop_assert!(head.starts_with(&expect));
    }
}
