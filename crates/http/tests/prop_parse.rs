//! Generative fragmentation tests for the incremental request parser.
//!
//! The central invariant: **parsing a byte stream in fragments is
//! indistinguishable from parsing it whole** — same requests, same order,
//! same bodies, same terminal error — no matter where the kernel happens
//! to tear the reads. The reactor's edge-triggered drain loop hands the
//! parser arbitrarily torn chunks, so this is exactly the surface the
//! listener exercises under load.

use proptest::prelude::*;
use sledge_http::{HttpError, ParseStatus, Request, RequestParser};

const MAX: usize = 1 << 20;

/// Feed `wire` to a fresh parser in the given fragment sizes (the final
/// fragment takes whatever remains) and collect every pipelined request.
/// Returns the requests plus the first error, if any.
fn parse_fragmented(wire: &[u8], cuts: &[usize]) -> (Vec<Request>, Option<HttpError>) {
    let mut parser = RequestParser::new(MAX);
    let mut out = Vec::new();
    let mut consumed = 0usize;
    let mut cut_iter = cuts.iter().copied().chain(std::iter::repeat(usize::MAX));
    while consumed < wire.len() {
        let n = cut_iter
            .next()
            .expect("infinite")
            .clamp(1, wire.len() - consumed);
        match parser.feed(&wire[consumed..consumed + n]) {
            Ok(ParseStatus::Complete(req)) => {
                out.push(req);
                // Drain every pipelined request already buffered.
                loop {
                    match parser.advance() {
                        Ok(ParseStatus::Complete(req)) => out.push(req),
                        Ok(ParseStatus::NeedMore) => break,
                        Err(e) => return (out, Some(e)),
                    }
                }
            }
            Ok(ParseStatus::NeedMore) => {}
            Err(e) => return (out, Some(e)),
        }
        consumed += n;
    }
    (out, None)
}

/// Parse the whole wire in one feed (plus advance drain).
fn parse_whole(wire: &[u8]) -> (Vec<Request>, Option<HttpError>) {
    parse_fragmented(wire, &[usize::MAX])
}

/// Serialize a pipelined sequence of POSTs with the given bodies; bodies
/// may be empty (zero-length Content-Length is a required case).
fn pipeline_wire(bodies: &[Vec<u8>]) -> Vec<u8> {
    let mut wire = Vec::new();
    for (i, body) in bodies.iter().enumerate() {
        wire.extend_from_slice(
            format!(
                "POST /fn/{i} HTTP/1.1\r\nHost: edge\r\nX-Seq: {i}\r\nContent-Length: {}\r\n\r\n",
                body.len()
            )
            .as_bytes(),
        );
        wire.extend_from_slice(body);
    }
    wire
}

proptest! {
    /// Pipelined back-to-back requests with arbitrary bodies and arbitrary
    /// fragment boundaries parse identically to the unfragmented stream.
    #[test]
    fn fragmented_pipeline_equals_whole(
        bodies in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..512), 1..6),
        cuts in proptest::collection::vec(1usize..48, 0..32),
    ) {
        let wire = pipeline_wire(&bodies);
        let (whole, whole_err) = parse_whole(&wire);
        let (frag, frag_err) = parse_fragmented(&wire, &cuts);
        prop_assert_eq!(whole_err, None);
        prop_assert_eq!(frag_err, None);
        prop_assert_eq!(&frag, &whole);
        prop_assert_eq!(frag.len(), bodies.len());
        for (i, (req, body)) in frag.iter().zip(&bodies).enumerate() {
            prop_assert_eq!(&req.path, &format!("/fn/{i}"));
            prop_assert_eq!(req.header("x-seq"), Some(format!("{i}").as_str()));
            prop_assert_eq!(&req.body, body);
        }
    }

    /// Malformed streams fail identically whole or torn: the error kind the
    /// listener acts on (400 + close) must not depend on read boundaries.
    #[test]
    fn torn_malformed_stream_fails_like_whole(
        prefix_bodies in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..64), 0..3),
        garbage in prop_oneof![
            Just(&b"BROKEN\r\n\r\n"[..]),
            Just(&b"GET / FTP/1.1\r\n\r\n"[..]),
            Just(&b"GET / HTTP/1.1\r\nNo-Colon-Header\r\n\r\n"[..]),
            Just(&b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n"[..]),
        ],
        cuts in proptest::collection::vec(1usize..24, 0..32),
    ) {
        let mut wire = pipeline_wire(&prefix_bodies);
        wire.extend_from_slice(garbage);
        let (whole, whole_err) = parse_whole(&wire);
        let (frag, frag_err) = parse_fragmented(&wire, &cuts);
        // Valid prefix requests all surface, then the same error fires.
        prop_assert_eq!(&frag, &whole);
        prop_assert_eq!(frag.len(), prefix_bodies.len());
        prop_assert!(whole_err.is_some());
        prop_assert_eq!(frag_err, whole_err);
    }

    /// A declared body larger than the configured cap is rejected with
    /// `TooLarge` regardless of how the stream is torn.
    #[test]
    fn oversize_body_rejected_under_any_fragmentation(
        cuts in proptest::collection::vec(1usize..16, 0..16),
    ) {
        let wire = b"POST /big HTTP/1.1\r\nContent-Length: 4096\r\n\r\n";
        let mut parser = RequestParser::new(256);
        let mut consumed = 0usize;
        let mut err = None;
        let mut cut_iter = cuts.iter().copied().chain(std::iter::repeat(usize::MAX));
        while consumed < wire.len() {
            let n = cut_iter.next().unwrap().clamp(1, wire.len() - consumed);
            match parser.feed(&wire[consumed..consumed + n]) {
                Ok(_) => consumed += n,
                Err(e) => { err = Some(e); break; }
            }
        }
        prop_assert_eq!(err, Some(HttpError::TooLarge));
    }
}

/// Exhaustive (non-generative) leg: a two-request pipeline with a torn
/// header and a zero-length body, split at EVERY byte boundary. Catches
/// off-by-one state bugs that random cuts can miss.
#[test]
fn every_byte_boundary_split_equals_whole() {
    let wire = pipeline_wire(&[b"hello world".to_vec(), Vec::new()]);
    let (whole, whole_err) = parse_whole(&wire);
    assert_eq!(whole_err, None);
    assert_eq!(whole.len(), 2);
    for i in 1..wire.len() {
        let (frag, frag_err) = parse_fragmented(&wire, &[i]);
        assert_eq!(frag_err, None, "split at byte {i}");
        assert_eq!(frag, whole, "split at byte {i}");
    }
    // And every pair of boundaries across the first request's head, which
    // covers all torn-header shapes for this wire.
    let head_len = wire.windows(4).position(|w| w == b"\r\n\r\n").unwrap() + 4;
    for i in 1..head_len {
        for j in 1..(wire.len() - i) {
            let (frag, frag_err) = parse_fragmented(&wire, &[i, j]);
            assert_eq!(frag_err, None, "splits at {i},{}", i + j);
            assert_eq!(frag, whole, "splits at {i},{}", i + j);
        }
    }
}
