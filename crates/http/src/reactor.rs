//! The epoll-backed readiness reactor: the production listener front end.
//!
//! Replaces the O(connections)-per-iteration scan of
//! [`PollServer`](crate::PollServer) with per-connection state machines
//! driven by kernel readiness events — one `epoll_wait` yields exactly the
//! connections with work, so cost scales with *ready* connections, not
//! *open* ones. A fleet of idle keep-alive connections costs nothing per
//! iteration; under the scan loop each costs a `read` syscall per sweep.
//!
//! Design:
//! - The listener is registered level-triggered (`EPOLLIN`): pending
//!   accepts keep re-reporting until the queue is drained, so an accept
//!   burst can never be lost to a missed edge.
//! - Connections are registered edge-triggered
//!   (`EPOLLIN | EPOLLRDHUP | EPOLLET`); every readable event is drained to
//!   `WouldBlock` as ET requires. `EPOLLOUT` interest is added only while a
//!   flush is blocked on a full socket buffer and removed as soon as the
//!   queue drains, so an idle writable socket never wakes the loop.
//! - Responses are queued as per-response buffers and flushed with
//!   `write_vectored` (writev on Linux): a pipelined burst of N responses
//!   leaves in one syscall instead of N.
//! - Connection slots live in a slab with generation-tagged ids
//!   (`gen << 32 | slot`), used verbatim as the epoll cookie — stale events
//!   for a recycled slot fail the generation check and are dropped.
//! - The connection budget is enforced at accept time: over-budget (or
//!   draining) peers get a pre-serialized `503` + `Connection: close`
//!   before any parse cost is paid.
//!
//! Close discipline matches the scan loop: a connection dies only once its
//! output queue is flushed and every surfaced request has been answered —
//! a half-close or `Connection: close` observed mid-pipeline never drops
//! in-flight responses.

use crate::parse::{ParseStatus, Request, RequestParser};
use crate::server::{shed_response_bytes, ConnCounters, ConnId, ConnectionEvent, ServerConfig};
use crate::sys::{Epoll, EpollEvent, EPOLLERR, EPOLLET, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP};
use crate::{Response, StatusCode};
use std::collections::VecDeque;
use std::io::{self, IoSlice, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Epoll cookie for the listening socket (never a valid connection id:
/// connection slots are bounded far below `u32::MAX`).
const LISTENER_COOKIE: u64 = u64::MAX;

/// Max `IoSlice`s per `write_vectored` call (Linux caps at `IOV_MAX`
/// = 1024; 64 already amortizes the syscall for any realistic pipeline).
const MAX_IOVEC: usize = 64;

/// Base interest mask for every connection.
const CONN_INTEREST: u32 = EPOLLIN | EPOLLRDHUP | EPOLLET;

/// Per-connection state machine.
#[derive(Debug)]
struct RConn {
    stream: TcpStream,
    /// Generation for stale-cookie detection; mirrored in `gens[slot]`.
    gen: u32,
    parser: RequestParser,
    /// Queued response buffers, flushed with vectored writes.
    out: VecDeque<Vec<u8>>,
    /// Write progress within `out.front()`.
    front_written: usize,
    /// Peer half-closed; flush everything queued/in-flight before closing.
    eof: bool,
    /// Close once output drains and all surfaced requests are answered.
    close_after_drain: bool,
    /// Whether any response was ever queued (governs the reap-time 408).
    responded: bool,
    /// Requests surfaced to the owner but not yet answered via `send`.
    outstanding: usize,
    /// `EPOLLOUT` currently registered (a flush hit `WouldBlock`).
    want_write: bool,
    /// Last byte movement or queued response; the idle deadline is
    /// measured from here, never from accept time.
    last_activity: Instant,
    dead: bool,
}

impl RConn {
    fn should_close(&self) -> bool {
        self.dead
            || (self.out.is_empty()
                && self.outstanding == 0
                && (self.close_after_drain || self.eof))
    }
}

/// Readiness-driven epoll listener; see the module docs for the design.
#[derive(Debug)]
pub struct ReactorServer {
    listener: TcpListener,
    epoll: Epoll,
    conns: Vec<Option<RConn>>,
    /// Per-slot generation counters (bumped on free).
    gens: Vec<u32>,
    free: Vec<u32>,
    live: usize,
    config: ServerConfig,
    counters: Arc<ConnCounters>,
    draining: bool,
    shed_bytes: Vec<u8>,
    events_buf: Vec<EpollEvent>,
    /// Connections whose close condition was met outside `poll` (e.g. the
    /// final `send` drained inline); edge-triggering means no further
    /// kernel event will arrive for them, so the next poll finishes the
    /// close here.
    pending_close: Vec<ConnId>,
    last_reap: Instant,
}

fn conn_id(slot: u32, gen: u32) -> ConnId {
    (u64::from(gen) << 32) | u64::from(slot)
}

fn split_id(id: ConnId) -> (u32, u32) {
    (id as u32, (id >> 32) as u32)
}

impl ReactorServer {
    /// Bind to `addr` and create the epoll instance.
    ///
    /// # Errors
    ///
    /// Propagates socket and epoll errors.
    pub fn bind(addr: SocketAddr, config: ServerConfig) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let epoll = Epoll::new()?;
        // Level-triggered on purpose: pending accepts re-report until the
        // queue is drained, so a burst can never be lost to a missed edge.
        epoll.add(listener.as_raw_fd(), EPOLLIN, LISTENER_COOKIE)?;
        Ok(ReactorServer {
            listener,
            epoll,
            conns: Vec::new(),
            gens: Vec::new(),
            free: Vec::new(),
            live: 0,
            config,
            counters: Arc::new(ConnCounters::default()),
            draining: false,
            shed_bytes: shed_response_bytes(),
            events_buf: vec![EpollEvent { events: 0, data: 0 }; 256],
            pending_close: Vec::new(),
            last_reap: Instant::now(),
        })
    }

    /// The bound local address (useful with port 0).
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Number of live connections.
    pub fn connection_count(&self) -> usize {
        self.live
    }

    /// The shared lifecycle counters.
    pub fn counters(&self) -> Arc<ConnCounters> {
        Arc::clone(&self.counters)
    }

    /// Stop accepting (socket-tier 503 for new peers); existing
    /// connections close once their queued and in-flight responses have
    /// been delivered.
    pub fn begin_drain(&mut self) {
        self.draining = true;
        for slot in 0..self.conns.len() {
            if let Some(conn) = &mut self.conns[slot] {
                conn.close_after_drain = true;
                // Idle keep-alive connections have nothing outstanding and
                // nothing queued, so no kernel event will ever fire for
                // them again — schedule the close check explicitly.
                self.pending_close.push(conn_id(slot as u32, conn.gen));
            }
        }
    }

    /// Connections with queued-but-unflushed response bytes.
    pub fn unflushed(&self) -> usize {
        self.conns
            .iter()
            .flatten()
            .filter(|c| !c.out.is_empty())
            .count()
    }

    /// One reactor iteration: wait up to `timeout` for readiness, then
    /// service exactly the ready connections. Returns the batch of events.
    pub fn poll(&mut self, timeout: Duration) -> Vec<ConnectionEvent> {
        let mut events = Vec::new();

        // Closes deferred from `send` (no further kernel event will come
        // for an edge-triggered connection whose queue drained inline).
        for id in std::mem::take(&mut self.pending_close) {
            let (slot, gen) = split_id(id);
            if let Some(Some(conn)) = self.conns.get(slot as usize) {
                if conn.gen == gen && conn.should_close() {
                    self.close_conn(slot, &mut events);
                }
            }
        }

        // Cap the wait so the idle reaper runs even on a quiet socket.
        let reap_every = self.reap_interval();
        let mut timeout_ms = timeout.as_millis().min(i32::MAX as u128) as i32;
        if let Some(interval) = reap_every {
            timeout_ms = timeout_ms.min(interval.as_millis().max(1) as i32);
        }
        let n = self
            .epoll
            .wait(&mut self.events_buf, timeout_ms)
            .unwrap_or(0);
        for i in 0..n {
            let ev = self.events_buf[i];
            let (data, mask) = (ev.data, ev.events);
            if data == LISTENER_COOKIE {
                self.accept_ready(&mut events);
            } else {
                self.conn_ready(data, mask, &mut events);
            }
        }

        if let Some(interval) = reap_every {
            let now = Instant::now();
            if now.duration_since(self.last_reap) >= interval {
                self.last_reap = now;
                self.reap_idle(now, &mut events);
            }
        }
        events
    }

    /// Queue `bytes` for connection `id` and flush opportunistically.
    /// Returns `false` if the connection is gone.
    pub fn send(&mut self, id: ConnId, bytes: &[u8]) -> bool {
        let (slot, gen) = split_id(id);
        let Some(Some(conn)) = self.conns.get_mut(slot as usize) else {
            return false;
        };
        if conn.gen != gen {
            return false;
        }
        conn.out.push_back(bytes.to_vec());
        conn.responded = true;
        conn.outstanding = conn.outstanding.saturating_sub(1);
        conn.last_activity = Instant::now();
        self.counters.responses.fetch_add(1, Ordering::Relaxed);
        // Flush now: the socket is almost always writable, and waiting for
        // the next poll would add a full scheduling round-trip of latency.
        Self::flush_conn(conn, &self.counters);
        self.update_write_interest(slot);
        if let Some(Some(conn)) = self.conns.get(slot as usize) {
            if conn.should_close() {
                self.pending_close.push(id);
            }
        }
        true
    }

    fn reap_interval(&self) -> Option<Duration> {
        if self.config.idle_timeout.is_zero() {
            None
        } else {
            Some(
                (self.config.idle_timeout / 4)
                    .clamp(Duration::from_millis(1), Duration::from_millis(250)),
            )
        }
    }

    /// Drain the accept queue; over-budget or draining peers are shed with
    /// the pre-serialized 503 before any parse cost is paid.
    fn accept_ready(&mut self, events: &mut Vec<ConnectionEvent>) {
        loop {
            match self.listener.accept() {
                Ok((mut stream, _)) => {
                    let over_budget =
                        self.config.max_connections > 0 && self.live >= self.config.max_connections;
                    if over_budget || self.draining {
                        self.counters.shed.fetch_add(1, Ordering::Relaxed);
                        // Best-effort: a brand-new socket buffer is empty.
                        let _ = stream.set_nonblocking(true);
                        let _ = stream.write(&self.shed_bytes);
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let slot = match self.alloc_slot() {
                        Some(s) => s,
                        None => continue,
                    };
                    let gen = self.gens[slot as usize];
                    let id = conn_id(slot, gen);
                    if self
                        .epoll
                        .add(stream.as_raw_fd(), CONN_INTEREST, id)
                        .is_err()
                    {
                        self.free.push(slot);
                        continue;
                    }
                    self.conns[slot as usize] = Some(RConn {
                        stream,
                        gen,
                        parser: RequestParser::new(self.config.max_request_size),
                        out: VecDeque::new(),
                        front_written: 0,
                        eof: false,
                        close_after_drain: false,
                        responded: false,
                        outstanding: 0,
                        want_write: false,
                        last_activity: Instant::now(),
                        dead: false,
                    });
                    self.live += 1;
                    self.counters.accepted.fetch_add(1, Ordering::Relaxed);
                    // Bytes may have raced registration; ET reports
                    // readiness present at ADD time, but draining now saves
                    // that extra epoll round-trip.
                    self.conn_ready(id, EPOLLIN, events);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }
    }

    fn alloc_slot(&mut self) -> Option<u32> {
        if let Some(slot) = self.free.pop() {
            return Some(slot);
        }
        // Slots are u32-indexed so ids pack into gen<<32|slot.
        if self.conns.len() >= u32::MAX as usize {
            return None;
        }
        let slot = self.conns.len() as u32;
        self.conns.push(None);
        self.gens.push(0);
        Some(slot)
    }

    /// Service one ready connection: drain reads (ET contract), surface
    /// parsed requests, flush writes, and close if the state machine says
    /// so.
    fn conn_ready(&mut self, id: ConnId, mask: u32, events: &mut Vec<ConnectionEvent>) {
        let (slot, gen) = split_id(id);
        let Some(Some(conn)) = self.conns.get_mut(slot as usize) else {
            return; // stale cookie for a recycled slot
        };
        if conn.gen != gen {
            return;
        }

        if mask & EPOLLRDHUP != 0 {
            // Peer half-closed; any final bytes are still drained below.
            conn.eof = true;
        }

        let mut buf = [0u8; 16 * 1024];
        if mask & EPOLLIN != 0 || mask & (EPOLLERR | EPOLLHUP) != 0 {
            // ET contract: read until WouldBlock (or EOF/error), else the
            // edge is lost and the connection stalls.
            loop {
                match conn.stream.read(&mut buf) {
                    Ok(0) => {
                        conn.eof = true;
                        break;
                    }
                    Ok(n) => {
                        conn.last_activity = Instant::now();
                        self.counters
                            .bytes_in
                            .fetch_add(n as u64, Ordering::Relaxed);
                        match conn.parser.feed(&buf[..n]) {
                            Ok(ParseStatus::Complete(req)) => {
                                Self::surface(conn, id, req, &self.counters, events);
                                while let Ok(ParseStatus::Complete(r)) = conn.parser.advance() {
                                    Self::surface(conn, id, r, &self.counters, events);
                                }
                            }
                            Ok(ParseStatus::NeedMore) => {}
                            Err(_) => {
                                let resp =
                                    Response::error(StatusCode::BadRequest, "malformed request");
                                conn.out.push_back(resp.to_bytes());
                                conn.close_after_drain = true;
                                conn.responded = true;
                                conn.eof = true; // stop reading garbage
                                break;
                            }
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        conn.dead = true;
                        break;
                    }
                }
            }
        }

        if mask & EPOLLOUT != 0 || !conn.out.is_empty() {
            Self::flush_conn(conn, &self.counters);
        }
        if mask & (EPOLLERR | EPOLLHUP) != 0 && conn.out.is_empty() {
            conn.dead = true;
        }

        if conn.should_close() {
            self.close_conn(slot, events);
        } else {
            self.update_write_interest(slot);
        }
    }

    fn surface(
        conn: &mut RConn,
        id: ConnId,
        req: Request,
        counters: &ConnCounters,
        events: &mut Vec<ConnectionEvent>,
    ) {
        if req.close {
            conn.close_after_drain = true;
        }
        conn.outstanding += 1;
        counters.requests.fetch_add(1, Ordering::Relaxed);
        events.push(ConnectionEvent::Request(id, req));
    }

    /// Flush the output queue with vectored writes until drained or
    /// `WouldBlock`.
    fn flush_conn(conn: &mut RConn, counters: &ConnCounters) {
        while !conn.out.is_empty() {
            let mut slices: Vec<IoSlice<'_>> = Vec::with_capacity(conn.out.len().min(MAX_IOVEC));
            for (i, bufv) in conn.out.iter().take(MAX_IOVEC).enumerate() {
                let start = if i == 0 { conn.front_written } else { 0 };
                slices.push(IoSlice::new(&bufv[start..]));
            }
            match conn.stream.write_vectored(&slices) {
                Ok(0) => {
                    conn.dead = true;
                    return;
                }
                Ok(mut n) => {
                    conn.last_activity = Instant::now();
                    counters.bytes_out.fetch_add(n as u64, Ordering::Relaxed);
                    // Retire fully-written buffers from the front.
                    while n > 0 {
                        let front_len = conn.out.front().map_or(0, Vec::len);
                        let remaining = front_len - conn.front_written;
                        if n >= remaining {
                            conn.out.pop_front();
                            conn.front_written = 0;
                            n -= remaining;
                        } else {
                            conn.front_written += n;
                            n = 0;
                        }
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    conn.dead = true;
                    return;
                }
            }
        }
    }

    /// Register `EPOLLOUT` only while a flush is blocked; deregister the
    /// moment the queue drains so an idle writable socket never wakes the
    /// loop.
    fn update_write_interest(&mut self, slot: u32) {
        let Some(Some(conn)) = self.conns.get_mut(slot as usize) else {
            return;
        };
        let need = !conn.out.is_empty();
        if need == conn.want_write {
            return;
        }
        let mut interest = CONN_INTEREST;
        if need {
            interest |= EPOLLOUT;
        }
        let id = conn_id(slot, conn.gen);
        if self
            .epoll
            .modify(conn.stream.as_raw_fd(), interest, id)
            .is_ok()
        {
            if let Some(Some(conn)) = self.conns.get_mut(slot as usize) {
                conn.want_write = need;
            }
        }
    }

    fn close_conn(&mut self, slot: u32, events: &mut Vec<ConnectionEvent>) {
        let Some(conn) = self.conns.get_mut(slot as usize).and_then(Option::take) else {
            return;
        };
        let _ = self.epoll.delete(conn.stream.as_raw_fd());
        let id = conn_id(slot, conn.gen);
        self.gens[slot as usize] = self.gens[slot as usize].wrapping_add(1);
        self.free.push(slot);
        self.live -= 1;
        self.counters.closed.fetch_add(1, Ordering::Relaxed);
        events.push(ConnectionEvent::Closed(id));
        drop(conn);
    }

    /// Reap connections idle past the deadline (measured from last
    /// activity). Runs amortized — at most every `idle/4`, capped at
    /// 250 ms — so the scan cost stays negligible.
    fn reap_idle(&mut self, now: Instant, events: &mut Vec<ConnectionEvent>) {
        let idle = self.config.idle_timeout;
        let mut victims = Vec::new();
        for (slot, entry) in self.conns.iter_mut().enumerate() {
            if let Some(conn) = entry {
                if now.duration_since(conn.last_activity) > idle {
                    if !conn.responded {
                        let resp = Response::error(
                            StatusCode::RequestTimeout,
                            "idle connection timed out",
                        );
                        let _ = conn.stream.write(&resp.to_bytes());
                    }
                    self.counters.reaped.fetch_add(1, Ordering::Relaxed);
                    victims.push(slot as u32);
                }
            }
        }
        for slot in victims {
            self.close_conn(slot, events);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::Backend;
    use crate::Response;
    use std::net::Shutdown;

    fn bind_reactor(max_connections: usize, idle: Duration) -> ReactorServer {
        ReactorServer::bind(
            "127.0.0.1:0".parse().unwrap(),
            ServerConfig {
                max_request_size: 1 << 20,
                idle_timeout: idle,
                max_connections,
                backend: Backend::Reactor,
            },
        )
        .unwrap()
    }

    fn poll_until<F: FnMut(&mut ReactorServer) -> bool>(server: &mut ReactorServer, mut done: F) {
        let deadline = Instant::now() + Duration::from_secs(5);
        while !done(server) {
            assert!(Instant::now() < deadline, "poll_until timed out");
        }
    }

    #[test]
    fn reactor_end_to_end_roundtrip() {
        let mut server = bind_reactor(0, Duration::from_secs(30));
        let addr = server.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(b"POST /fn/echo HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello")
                .unwrap();
            s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
            let mut resp = Vec::new();
            let mut buf = [0u8; 1024];
            loop {
                match s.read(&mut buf) {
                    Ok(0) | Err(_) => break,
                    Ok(n) => {
                        resp.extend_from_slice(&buf[..n]);
                        if resp.ends_with(b"HELLO") {
                            break;
                        }
                    }
                }
            }
            let _ = s.shutdown(Shutdown::Both);
            String::from_utf8(resp).unwrap()
        });
        let mut answered = false;
        poll_until(&mut server, |srv| {
            for ev in srv.poll(Duration::from_millis(10)) {
                if let ConnectionEvent::Request(id, req) = ev {
                    assert_eq!(req.path, "/fn/echo");
                    srv.send(id, &Response::ok(req.body.to_ascii_uppercase()).to_bytes());
                    answered = true;
                }
            }
            answered
        });
        poll_until(&mut server, |srv| {
            srv.poll(Duration::from_millis(10));
            srv.connection_count() == 0
        });
        let resp = client.join().unwrap();
        assert!(resp.starts_with("HTTP/1.1 200 OK"), "{resp}");
        assert!(resp.ends_with("HELLO"), "{resp}");
        let snap = server.counters().snapshot();
        assert_eq!(snap.accepted, 1);
        assert_eq!(snap.closed, 1);
        assert_eq!(snap.requests, 1);
        assert_eq!(snap.responses, 1);
    }

    #[test]
    fn slot_reuse_bumps_generation() {
        let mut server = bind_reactor(0, Duration::from_secs(30));
        let addr = server.local_addr().unwrap();

        let first = TcpStream::connect(addr).unwrap();
        poll_until(&mut server, |srv| {
            srv.poll(Duration::from_millis(5));
            srv.connection_count() == 1
        });
        drop(first);
        let mut first_id = None;
        poll_until(&mut server, |srv| {
            for ev in srv.poll(Duration::from_millis(5)) {
                if let ConnectionEvent::Closed(id) = ev {
                    first_id = Some(id);
                }
            }
            srv.connection_count() == 0
        });

        let _second = TcpStream::connect(addr).unwrap();
        poll_until(&mut server, |srv| {
            srv.poll(Duration::from_millis(5));
            srv.connection_count() == 1
        });
        let first_id = first_id.unwrap();
        // Same slot, new generation: a send to the stale id must fail.
        assert!(!server.send(first_id, b"stale"));
    }
}
