//! Listener front ends: the shared connection vocabulary (events, counters,
//! configuration), the legacy single-thread scan loop ([`PollServer`]), and
//! the [`HttpServer`] facade that selects between it and the epoll-backed
//! [`ReactorServer`](crate::ReactorServer).
//!
//! Both backends speak the same protocol to their owner: call
//! [`HttpServer::poll`] in a loop, consume the returned events, and queue
//! response bytes with [`HttpServer::send`]. The poll backend scans every
//! connection per iteration (O(connections) syscalls); the reactor touches
//! only ready connections and is the production default.

use crate::parse::{ParseStatus, Request, RequestParser};
use crate::{Response, StatusCode};
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Unique id for a connection within one server instance.
pub type ConnId = u64;

/// Event surfaced by one poll iteration.
#[derive(Debug)]
pub enum ConnectionEvent {
    /// A complete request arrived on the connection.
    Request(ConnId, Request),
    /// The connection closed (peer hangup, error, or after
    /// `Connection: close`).
    Closed(ConnId),
}

/// Which intake implementation serves the socket.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// Readiness-driven epoll reactor: per-connection state machines, only
    /// ready connections are touched. The production default.
    #[default]
    Reactor,
    /// The legacy non-blocking scan loop: every connection is read/flushed
    /// every iteration. Kept as the compat/ablation configuration.
    Poll,
}

impl Backend {
    /// Human-readable name (used in banners and bench output).
    pub fn name(self) -> &'static str {
        match self {
            Backend::Reactor => "reactor",
            Backend::Poll => "poll",
        }
    }
}

/// Front-end configuration shared by both backends.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Largest accepted request (head + body).
    pub max_request_size: usize,
    /// Connections with no activity (no byte movement in either direction
    /// and no response queued) for this long are reaped; the deadline
    /// resets on every byte, so slow-but-live keep-alive clients survive.
    /// `Duration::ZERO` disables reaping.
    pub idle_timeout: Duration,
    /// Connection budget: when this many connections are live, further
    /// accepts are answered with a pre-serialized `503` +
    /// `Connection: close` before any parse cost is paid. 0 = unlimited.
    pub max_connections: usize,
    /// Which implementation to use.
    pub backend: Backend,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_request_size: 4 << 20,
            idle_timeout: Duration::from_secs(10),
            max_connections: 0,
            backend: Backend::default(),
        }
    }
}

/// Per-connection-lifecycle counters, shared (via `Arc`) with whoever
/// renders metrics. All monotonic; the live-connection gauge is
/// `accepted - closed - shed`.
#[derive(Debug, Default)]
pub struct ConnCounters {
    /// Connections accepted and registered.
    pub accepted: AtomicU64,
    /// Registered connections that ended (any reason, including reaping).
    pub closed: AtomicU64,
    /// Accepts answered with the socket-tier 503 (budget or drain) and
    /// immediately closed — never registered, never parsed.
    pub shed: AtomicU64,
    /// Connections reaped by the idle deadline (also counted in `closed`).
    pub reaped: AtomicU64,
    /// Complete requests parsed and surfaced.
    pub requests: AtomicU64,
    /// Responses queued by the owner.
    pub responses: AtomicU64,
    /// Request bytes read off sockets.
    pub bytes_in: AtomicU64,
    /// Response bytes written to sockets.
    pub bytes_out: AtomicU64,
}

impl ConnCounters {
    /// A point-in-time copy.
    pub fn snapshot(&self) -> ConnSnapshot {
        ConnSnapshot {
            accepted: self.accepted.load(Ordering::Relaxed),
            closed: self.closed.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            reaped: self.reaped.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            responses: self.responses.load(Ordering::Relaxed),
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of [`ConnCounters`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConnSnapshot {
    pub accepted: u64,
    pub closed: u64,
    pub shed: u64,
    pub reaped: u64,
    pub requests: u64,
    pub responses: u64,
    pub bytes_in: u64,
    pub bytes_out: u64,
}

impl ConnSnapshot {
    /// Connections currently live (accepted, not yet closed).
    pub fn active(&self) -> u64 {
        self.accepted.saturating_sub(self.closed)
    }
}

/// The pre-serialized socket-tier load-shed answer: `503` with
/// `Connection: close`, written best-effort into the (empty) socket buffer
/// of a just-accepted connection before it is dropped.
pub(crate) fn shed_response_bytes() -> Vec<u8> {
    let mut resp = Response::error(
        StatusCode::ServiceUnavailable,
        "connection budget exhausted",
    );
    resp.close = true;
    resp.to_bytes()
}

/// Front-end facade selecting a backend at bind time; both sides expose the
/// identical poll/send protocol, so the listener core and the torture suite
/// drive either interchangeably.
#[derive(Debug)]
pub enum HttpServer {
    /// Epoll-backed readiness reactor.
    Reactor(crate::ReactorServer),
    /// Legacy scan loop.
    Poll(PollServer),
}

impl HttpServer {
    /// Bind to `addr` with the configured backend.
    ///
    /// # Errors
    ///
    /// Propagates socket and epoll errors.
    pub fn bind(addr: SocketAddr, config: ServerConfig) -> io::Result<HttpServer> {
        match config.backend {
            Backend::Reactor => Ok(HttpServer::Reactor(crate::ReactorServer::bind(
                addr, config,
            )?)),
            Backend::Poll => Ok(HttpServer::Poll(PollServer::bind_with(addr, config)?)),
        }
    }

    /// The bound local address (useful with port 0).
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        match self {
            HttpServer::Reactor(s) => s.local_addr(),
            HttpServer::Poll(s) => s.local_addr(),
        }
    }

    /// Which backend is serving.
    pub fn backend(&self) -> Backend {
        match self {
            HttpServer::Reactor(_) => Backend::Reactor,
            HttpServer::Poll(_) => Backend::Poll,
        }
    }

    /// Number of live connections.
    pub fn connection_count(&self) -> usize {
        match self {
            HttpServer::Reactor(s) => s.connection_count(),
            HttpServer::Poll(s) => s.connection_count(),
        }
    }

    /// One intake iteration; see the backend docs. The reactor blocks in
    /// `epoll_wait` for up to `timeout` (millisecond resolution; sub-ms
    /// rounds down to a non-blocking poll); the scan loop is always
    /// non-blocking and ignores `timeout`.
    pub fn poll(&mut self, timeout: Duration) -> Vec<ConnectionEvent> {
        match self {
            HttpServer::Reactor(s) => s.poll(timeout),
            HttpServer::Poll(s) => s.poll(),
        }
    }

    /// Queue response bytes for connection `id`. Returns `false` if the
    /// connection is gone.
    pub fn send(&mut self, id: ConnId, bytes: &[u8]) -> bool {
        match self {
            HttpServer::Reactor(s) => s.send(id, bytes),
            HttpServer::Poll(s) => s.send(id, bytes),
        }
    }

    /// Stop accepting new connections: further accepts get the socket-tier
    /// 503, existing connections are closed as soon as their queued and
    /// in-flight responses have been delivered.
    pub fn begin_drain(&mut self) {
        match self {
            HttpServer::Reactor(s) => s.begin_drain(),
            HttpServer::Poll(s) => s.begin_drain(),
        }
    }

    /// Connections with queued-but-unflushed response bytes (the shutdown
    /// path polls until this reaches zero so no delivered completion is
    /// dropped on the floor).
    pub fn unflushed(&self) -> usize {
        match self {
            HttpServer::Reactor(s) => s.unflushed(),
            HttpServer::Poll(s) => s.unflushed(),
        }
    }

    /// The shared lifecycle counters.
    pub fn counters(&self) -> Arc<ConnCounters> {
        match self {
            HttpServer::Reactor(s) => s.counters(),
            HttpServer::Poll(s) => s.counters(),
        }
    }
}

/// One client connection owned by the poll server.
#[derive(Debug)]
pub struct Connection {
    stream: TcpStream,
    parser: RequestParser,
    /// Bytes queued for writing.
    out: Vec<u8>,
    /// Write progress within `out`.
    written: usize,
    /// Close once the output queue drains and every surfaced request has
    /// been answered (armed by `Connection: close` or a parse error).
    close_after_write: bool,
    /// Whether any response bytes were ever queued (governs the 408 on
    /// idle reap, not the close decision).
    responded: bool,
    /// Peer half-closed (read returned EOF). Queued and in-flight
    /// responses are still flushed before the connection is torn down —
    /// honoring EOF immediately would drop pipelined responses.
    eof: bool,
    /// Requests surfaced to the owner but not yet answered via `send`.
    outstanding: usize,
    /// Requests parsed but not yet consumed by the runtime.
    inbox: Vec<Request>,
    /// Last time bytes moved on this connection (either direction) or a
    /// response was queued; idle reaping is measured from here — never
    /// from accept time — so slow-but-live clients are not reaped.
    last_activity: Instant,
    dead: bool,
}

/// A minimal single-threaded non-blocking HTTP front end that scans every
/// connection per iteration.
///
/// Call [`poll`](Self::poll) in a loop; it accepts new connections, reads
/// available bytes, parses requests, flushes queued responses, and returns
/// the batch of events. Kept as the compat/ablation backend; the epoll
/// [`ReactorServer`](crate::ReactorServer) replaces it in production.
#[derive(Debug)]
pub struct PollServer {
    listener: TcpListener,
    conns: HashMap<ConnId, Connection>,
    next_id: ConnId,
    config: ServerConfig,
    counters: Arc<ConnCounters>,
    draining: bool,
    shed_bytes: Vec<u8>,
}

impl PollServer {
    /// Bind to `addr` in non-blocking mode. Connections with no activity
    /// for `idle_timeout` are reaped (a slow-loris client holding a
    /// half-sent request does not pin a slot forever); `Duration::ZERO`
    /// disables reaping.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn bind(
        addr: SocketAddr,
        max_request_size: usize,
        idle_timeout: Duration,
    ) -> io::Result<Self> {
        Self::bind_with(
            addr,
            ServerConfig {
                max_request_size,
                idle_timeout,
                backend: Backend::Poll,
                ..ServerConfig::default()
            },
        )
    }

    /// Bind with a full [`ServerConfig`] (the `backend` field is ignored —
    /// this constructor always builds the scan-loop backend).
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn bind_with(addr: SocketAddr, config: ServerConfig) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        Ok(PollServer {
            listener,
            conns: HashMap::new(),
            next_id: 1,
            config,
            counters: Arc::new(ConnCounters::default()),
            draining: false,
            shed_bytes: shed_response_bytes(),
        })
    }

    /// The bound local address (useful with port 0).
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Number of live connections.
    pub fn connection_count(&self) -> usize {
        self.conns.len()
    }

    /// The shared lifecycle counters.
    pub fn counters(&self) -> Arc<ConnCounters> {
        Arc::clone(&self.counters)
    }

    /// Stop accepting (socket-tier 503 for new peers); existing
    /// connections close once their responses are delivered.
    pub fn begin_drain(&mut self) {
        self.draining = true;
        for conn in self.conns.values_mut() {
            conn.close_after_write = true;
        }
    }

    /// Connections with queued-but-unflushed response bytes.
    pub fn unflushed(&self) -> usize {
        self.conns
            .values()
            .filter(|c| c.written < c.out.len())
            .count()
    }

    /// One non-blocking iteration: accept, read/parse, flush writes.
    /// Returns all events produced by this iteration; an empty vector means
    /// nothing was ready (caller may sleep briefly or do other work).
    pub fn poll(&mut self) -> Vec<ConnectionEvent> {
        let mut events = Vec::new();

        // Accept as many as are pending; over-budget (or draining) peers
        // get the pre-serialized 503 before any parse cost is paid.
        loop {
            match self.listener.accept() {
                Ok((mut stream, _)) => {
                    let over_budget = self.config.max_connections > 0
                        && self.conns.len() >= self.config.max_connections;
                    if over_budget || self.draining {
                        self.counters.shed.fetch_add(1, Ordering::Relaxed);
                        // Best-effort: the socket buffer of a brand-new
                        // connection is empty, so this almost never blocks.
                        let _ = stream.set_nonblocking(true);
                        let _ = stream.write(&self.shed_bytes);
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let id = self.next_id;
                    self.next_id += 1;
                    self.counters.accepted.fetch_add(1, Ordering::Relaxed);
                    self.conns.insert(
                        id,
                        Connection {
                            stream,
                            parser: RequestParser::new(self.config.max_request_size),
                            out: Vec::new(),
                            written: 0,
                            close_after_write: false,
                            responded: false,
                            eof: false,
                            outstanding: 0,
                            inbox: Vec::new(),
                            last_activity: Instant::now(),
                            dead: false,
                        },
                    );
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }

        let mut buf = [0u8; 16 * 1024];
        let mut closed = Vec::new();
        let now = Instant::now();
        for (&id, conn) in self.conns.iter_mut() {
            // Read available bytes (unless the peer already half-closed).
            while !conn.eof {
                match conn.stream.read(&mut buf) {
                    Ok(0) => {
                        // Half-close: stop reading, but flush queued and
                        // in-flight responses before tearing down.
                        conn.eof = true;
                        break;
                    }
                    Ok(n) => {
                        conn.last_activity = now;
                        self.counters
                            .bytes_in
                            .fetch_add(n as u64, Ordering::Relaxed);
                        match conn.parser.feed(&buf[..n]) {
                            Ok(ParseStatus::Complete(req)) => {
                                conn.inbox.push(req);
                                // Drain any pipelined requests.
                                while let Ok(ParseStatus::Complete(r)) = conn.parser.advance() {
                                    conn.inbox.push(r);
                                }
                            }
                            Ok(ParseStatus::NeedMore) => {}
                            Err(_) => {
                                // Malformed: 400 and close.
                                let resp =
                                    Response::error(StatusCode::BadRequest, "malformed request");
                                conn.out.extend_from_slice(&resp.to_bytes());
                                conn.close_after_write = true;
                                conn.responded = true;
                                conn.eof = true; // stop reading garbage
                                break;
                            }
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        conn.dead = true;
                        break;
                    }
                }
            }
            for req in conn.inbox.drain(..) {
                if req.close {
                    conn.close_after_write = true;
                }
                conn.outstanding += 1;
                self.counters.requests.fetch_add(1, Ordering::Relaxed);
                events.push(ConnectionEvent::Request(id, req));
            }
            // Flush queued output.
            while conn.written < conn.out.len() {
                match conn.stream.write(&conn.out[conn.written..]) {
                    Ok(0) => {
                        conn.dead = true;
                        break;
                    }
                    Ok(n) => {
                        conn.written += n;
                        conn.last_activity = now;
                        self.counters
                            .bytes_out
                            .fetch_add(n as u64, Ordering::Relaxed);
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        conn.dead = true;
                        break;
                    }
                }
            }
            if conn.written == conn.out.len() {
                conn.out.clear();
                conn.written = 0;
                // Close only when everything queued has been flushed AND
                // every surfaced request has been answered: an EOF (or a
                // `Connection: close`) observed mid-pipeline must not drop
                // the responses still in flight.
                if conn.outstanding == 0 && (conn.close_after_write || conn.eof) {
                    conn.dead = true;
                }
            }
            // Idle reaping: no bytes moved in either direction for the
            // configured window, measured from the last activity (never
            // from accept). A best-effort 408 is written directly (the
            // socket buffer is almost certainly empty for an idle peer).
            if !conn.dead
                && !self.config.idle_timeout.is_zero()
                && now.duration_since(conn.last_activity) > self.config.idle_timeout
            {
                if !conn.responded {
                    let resp =
                        Response::error(StatusCode::RequestTimeout, "idle connection timed out");
                    let _ = conn.stream.write(&resp.to_bytes());
                }
                self.counters.reaped.fetch_add(1, Ordering::Relaxed);
                conn.dead = true;
            }
            if conn.dead {
                closed.push(id);
            }
        }
        for id in closed {
            self.conns.remove(&id);
            self.counters.closed.fetch_add(1, Ordering::Relaxed);
            events.push(ConnectionEvent::Closed(id));
        }
        events
    }

    /// Queue `bytes` to be written to connection `id`. Returns `false` if
    /// the connection is gone.
    pub fn send(&mut self, id: ConnId, bytes: &[u8]) -> bool {
        match self.conns.get_mut(&id) {
            Some(c) => {
                c.out.extend_from_slice(bytes);
                c.responded = true;
                c.outstanding = c.outstanding.saturating_sub(1);
                c.last_activity = Instant::now();
                self.counters.responses.fetch_add(1, Ordering::Relaxed);
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Response;
    use std::net::Shutdown;
    use std::time::{Duration, Instant};

    fn poll_until<F: FnMut(&mut PollServer) -> bool>(server: &mut PollServer, mut done: F) {
        let deadline = Instant::now() + Duration::from_secs(5);
        while !done(server) {
            assert!(Instant::now() < deadline, "poll_until timed out");
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    #[test]
    fn end_to_end_request_response() {
        let mut server = PollServer::bind(
            "127.0.0.1:0".parse().unwrap(),
            1 << 20,
            Duration::from_secs(30),
        )
        .unwrap();
        let addr = server.local_addr().unwrap();

        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(b"POST /fn/echo HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello")
                .unwrap();
            let mut resp = Vec::new();
            s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
            let mut buf = [0u8; 1024];
            loop {
                match s.read(&mut buf) {
                    Ok(0) => break,
                    Ok(n) => {
                        resp.extend_from_slice(&buf[..n]);
                        if resp.windows(4).any(|w| w == b"\r\n\r\n") && resp.ends_with(b"HELLO") {
                            break;
                        }
                    }
                    Err(_) => break,
                }
            }
            let _ = s.shutdown(Shutdown::Both);
            resp
        });

        let mut answered = false;
        poll_until(&mut server, |srv| {
            for ev in srv.poll() {
                if let ConnectionEvent::Request(id, req) = ev {
                    assert_eq!(req.path, "/fn/echo");
                    let body = req.body.to_ascii_uppercase();
                    srv.send(id, &Response::ok(body).to_bytes());
                    answered = true;
                }
            }
            answered
        });
        // Keep polling until the write drains and the client hangs up.
        poll_until(&mut server, |srv| {
            srv.poll();
            srv.connection_count() == 0
        });

        let resp = client.join().unwrap();
        let s = String::from_utf8(resp).unwrap();
        assert!(s.starts_with("HTTP/1.1 200 OK"));
        assert!(s.ends_with("HELLO"));

        let snap = server.counters().snapshot();
        assert_eq!(snap.accepted, 1);
        assert_eq!(snap.closed, 1);
        assert_eq!(snap.requests, 1);
        assert_eq!(snap.responses, 1);
        assert!(snap.bytes_in > 0 && snap.bytes_out > 0);
        assert_eq!(snap.active(), 0);
    }

    #[test]
    fn malformed_request_gets_400_and_close() {
        let mut server = PollServer::bind(
            "127.0.0.1:0".parse().unwrap(),
            1 << 20,
            Duration::from_secs(30),
        )
        .unwrap();
        let addr = server.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(b"NOT-HTTP\r\n\r\n").unwrap();
            let mut resp = Vec::new();
            s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
            let mut buf = [0u8; 1024];
            while let Ok(n) = s.read(&mut buf) {
                if n == 0 {
                    break;
                }
                resp.extend_from_slice(&buf[..n]);
            }
            resp
        });
        poll_until(&mut server, |srv| {
            srv.poll();
            srv.connection_count() == 0
        });
        let resp = String::from_utf8(client.join().unwrap()).unwrap();
        assert!(resp.starts_with("HTTP/1.1 400"), "{resp}");
    }

    #[test]
    fn half_close_mid_flush_still_delivers_pipelined_responses() {
        // Regression: the peer sends two pipelined requests and immediately
        // shuts down its write half. Honoring the EOF before the responses
        // are queued+flushed used to tear the connection down and drop
        // them; both answers must still arrive, in order.
        let mut server = PollServer::bind(
            "127.0.0.1:0".parse().unwrap(),
            1 << 20,
            Duration::from_secs(30),
        )
        .unwrap();
        let addr = server.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(
                b"POST /a HTTP/1.1\r\nContent-Length: 3\r\n\r\none\
                  POST /b HTTP/1.1\r\nContent-Length: 3\r\n\r\ntwo",
            )
            .unwrap();
            // Half-close before any response exists.
            s.shutdown(Shutdown::Write).unwrap();
            s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
            let mut resp = Vec::new();
            let mut buf = [0u8; 1024];
            while let Ok(n) = s.read(&mut buf) {
                if n == 0 {
                    break;
                }
                resp.extend_from_slice(&buf[..n]);
            }
            String::from_utf8(resp).unwrap()
        });
        // Collect both requests first, then answer them one poll later so
        // the EOF is definitely observed before any response is queued.
        let mut pending = Vec::new();
        poll_until(&mut server, |srv| {
            for ev in srv.poll() {
                if let ConnectionEvent::Request(id, req) = ev {
                    pending.push((id, req.body));
                }
            }
            pending.len() == 2
        });
        for (id, body) in pending.drain(..) {
            assert!(server.send(id, &Response::ok(body).to_bytes()));
        }
        poll_until(&mut server, |srv| {
            srv.poll();
            srv.connection_count() == 0
        });
        let resp = client.join().unwrap();
        let one = resp.find("one").expect("first response delivered");
        let two = resp.find("two").expect("second response delivered");
        assert!(one < two, "responses out of order: {resp}");
    }

    #[test]
    fn connection_budget_sheds_with_503_close() {
        let mut server = PollServer::bind_with(
            "127.0.0.1:0".parse().unwrap(),
            ServerConfig {
                max_connections: 1,
                idle_timeout: Duration::from_secs(30),
                backend: Backend::Poll,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let addr = server.local_addr().unwrap();
        // First connection occupies the only slot.
        let first = TcpStream::connect(addr).unwrap();
        poll_until(&mut server, |srv| {
            srv.poll();
            srv.connection_count() == 1
        });
        // Second connection is shed at the socket tier.
        let shed = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
            let mut resp = Vec::new();
            let mut buf = [0u8; 1024];
            while let Ok(n) = s.read(&mut buf) {
                if n == 0 {
                    break;
                }
                resp.extend_from_slice(&buf[..n]);
            }
            String::from_utf8(resp).unwrap()
        });
        poll_until(&mut server, |srv| {
            srv.poll();
            srv.counters().snapshot().shed == 1
        });
        let resp = shed.join().unwrap();
        assert!(resp.starts_with("HTTP/1.1 503"), "{resp}");
        assert!(resp.contains("Connection: close"), "{resp}");
        drop(first);
    }

    #[test]
    fn slow_loris_connection_is_reaped() {
        let mut server = PollServer::bind(
            "127.0.0.1:0".parse().unwrap(),
            1 << 20,
            Duration::from_millis(50),
        )
        .unwrap();
        let addr = server.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            // Half a request, then silence: the server must not wait forever.
            s.write_all(b"POST /fn HTTP/1.1\r\nContent-Length: 100\r\n\r\npartial")
                .unwrap();
            s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
            let mut resp = Vec::new();
            let mut buf = [0u8; 1024];
            while let Ok(n) = s.read(&mut buf) {
                if n == 0 {
                    break;
                }
                resp.extend_from_slice(&buf[..n]);
            }
            resp
        });
        // Wait for the connection to appear, then for the reaper to kill it.
        poll_until(&mut server, |srv| {
            srv.poll();
            srv.connection_count() == 1
        });
        let start = Instant::now();
        poll_until(&mut server, |srv| {
            srv.poll();
            srv.connection_count() == 0
        });
        assert!(
            start.elapsed() < Duration::from_secs(3),
            "idle reap took too long"
        );
        assert_eq!(server.counters().snapshot().reaped, 1);
        let resp = String::from_utf8(client.join().unwrap()).unwrap();
        assert!(resp.starts_with("HTTP/1.1 408"), "{resp}");
    }

    #[test]
    fn active_connection_survives_idle_reaper() {
        let idle = Duration::from_millis(800);
        let mut server = PollServer::bind("127.0.0.1:0".parse().unwrap(), 1 << 20, idle).unwrap();
        let addr = server.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            // Trickle a complete request slowly: each chunk lands well within
            // the idle window, but the whole request takes longer than one
            // window — it can only succeed if activity resets the timer. The
            // worst client-side gap is measured so a scheduler stall on a
            // loaded test machine (sleep overshooting the idle window) is
            // distinguishable from a reaper bug.
            let mut max_gap = Duration::ZERO;
            let mut last = Instant::now();
            for chunk in [
                &b"POST /fn HTTP/1.1\r\n"[..],
                &b"Content-Length: 4\r\n\r\n"[..],
                &b"pi"[..],
                &b"ng"[..],
            ] {
                std::thread::sleep(Duration::from_millis(300));
                s.write_all(chunk).unwrap();
                max_gap = max_gap.max(last.elapsed());
                last = Instant::now();
            }
            s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
            let mut resp = Vec::new();
            let mut buf = [0u8; 1024];
            while let Ok(n) = s.read(&mut buf) {
                if n == 0 {
                    break;
                }
                resp.extend_from_slice(&buf[..n]);
                if resp.ends_with(b"pong") {
                    break;
                }
            }
            (resp, max_gap)
        });
        poll_until(&mut server, |srv| {
            for ev in srv.poll() {
                if let ConnectionEvent::Request(id, _) = ev {
                    srv.send(id, &Response::ok(b"pong".to_vec()).to_bytes());
                }
            }
            // `send` only queues; later polls perform the actual write. Keep
            // polling until the response reaches the client and the
            // connection winds down (also covers the reaped-under-stall
            // case, where the 408 closes it).
            srv.connection_count() == 0
        });
        let (resp, max_gap) = client.join().unwrap();
        let resp = String::from_utf8(resp).unwrap();
        if max_gap < idle {
            assert!(
                resp.starts_with("HTTP/1.1 200"),
                "reaped despite activity (max client gap {max_gap:?}): {resp}"
            );
        } else {
            // The client genuinely went idle past the window; either outcome
            // is correct, so just require a well-formed response.
            assert!(
                resp.starts_with("HTTP/1.1 200") || resp.starts_with("HTTP/1.1 408"),
                "{resp}"
            );
        }
    }

    #[test]
    fn many_concurrent_connections() {
        let mut server = PollServer::bind(
            "127.0.0.1:0".parse().unwrap(),
            1 << 20,
            Duration::from_secs(30),
        )
        .unwrap();
        let addr = server.local_addr().unwrap();
        const N: usize = 32;
        let clients: Vec<_> = (0..N)
            .map(|i| {
                std::thread::spawn(move || {
                    let mut s = TcpStream::connect(addr).unwrap();
                    let body = format!("client-{i}");
                    s.write_all(
                        format!(
                            "POST /fn HTTP/1.1\r\nContent-Length: {}\r\n\r\n{}",
                            body.len(),
                            body
                        )
                        .as_bytes(),
                    )
                    .unwrap();
                    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
                    let mut resp = Vec::new();
                    let mut buf = [0u8; 1024];
                    loop {
                        match s.read(&mut buf) {
                            Ok(0) | Err(_) => break,
                            Ok(n) => {
                                resp.extend_from_slice(&buf[..n]);
                                if resp.ends_with(body.as_bytes()) {
                                    break;
                                }
                            }
                        }
                    }
                    String::from_utf8(resp).unwrap()
                })
            })
            .collect();

        let mut served = 0;
        poll_until(&mut server, |srv| {
            for ev in srv.poll() {
                if let ConnectionEvent::Request(id, req) = ev {
                    srv.send(id, &Response::ok(req.body).to_bytes());
                    served += 1;
                }
            }
            served == N
        });
        // Drain writes.
        for _ in 0..200 {
            server.poll();
            std::thread::sleep(Duration::from_millis(1));
        }
        for (i, c) in clients.into_iter().enumerate() {
            let resp = c.join().unwrap();
            assert!(resp.contains(&format!("client-{i}")));
        }
    }
}
