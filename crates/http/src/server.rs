//! A non-blocking TCP accept/read/write loop for the listener core.
//!
//! This substitutes for the paper's epoll + libuv intake path: a single
//! thread polls the listening socket and all client connections without
//! blocking, parsing requests incrementally and queueing response bytes.

use crate::parse::{ParseStatus, Request, RequestParser};
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::{Duration, Instant};

/// One client connection owned by the poll server.
#[derive(Debug)]
pub struct Connection {
    stream: TcpStream,
    parser: RequestParser,
    /// Bytes queued for writing.
    out: Vec<u8>,
    /// Write progress within `out`.
    written: usize,
    /// Close once the output queue drains (armed only after a response has
    /// been queued, so pending function responses are not cut off).
    close_after_write: bool,
    /// Whether any response bytes were ever queued.
    responded: bool,
    /// Requests parsed but not yet consumed by the runtime.
    inbox: Vec<Request>,
    /// Last time bytes moved on this connection (either direction) or a
    /// response was queued; idle reaping is measured from here.
    last_activity: Instant,
    dead: bool,
}

/// Unique id for a connection within a [`PollServer`].
pub type ConnId = u64;

/// Event surfaced by one poll iteration.
#[derive(Debug)]
pub enum ConnectionEvent {
    /// A complete request arrived on the connection.
    Request(ConnId, Request),
    /// The connection closed (peer hangup, error, or after
    /// `Connection: close`).
    Closed(ConnId),
}

/// A minimal single-threaded non-blocking HTTP server front end.
///
/// Call [`poll`](Self::poll) in a loop; it accepts new connections, reads
/// available bytes, parses requests, flushes queued responses, and returns
/// the batch of events.
#[derive(Debug)]
pub struct PollServer {
    listener: TcpListener,
    conns: HashMap<ConnId, Connection>,
    next_id: ConnId,
    max_request_size: usize,
    idle_timeout: Duration,
}

impl PollServer {
    /// Bind to `addr` in non-blocking mode. Connections with no byte
    /// movement for `idle_timeout` are reaped (a slow-loris client holding
    /// a half-sent request does not pin a slot forever); `Duration::ZERO`
    /// disables reaping.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn bind(
        addr: SocketAddr,
        max_request_size: usize,
        idle_timeout: Duration,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        Ok(PollServer {
            listener,
            conns: HashMap::new(),
            next_id: 1,
            max_request_size,
            idle_timeout,
        })
    }

    /// The bound local address (useful with port 0).
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Number of live connections.
    pub fn connection_count(&self) -> usize {
        self.conns.len()
    }

    /// One non-blocking iteration: accept, read/parse, flush writes.
    /// Returns all events produced by this iteration; an empty vector means
    /// nothing was ready (caller may sleep briefly or do other work).
    pub fn poll(&mut self) -> Vec<ConnectionEvent> {
        let mut events = Vec::new();

        // Accept as many as are pending.
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let id = self.next_id;
                    self.next_id += 1;
                    self.conns.insert(
                        id,
                        Connection {
                            stream,
                            parser: RequestParser::new(self.max_request_size),
                            out: Vec::new(),
                            written: 0,
                            close_after_write: false,
                            responded: false,
                            inbox: Vec::new(),
                            last_activity: Instant::now(),
                            dead: false,
                        },
                    );
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }

        let mut buf = [0u8; 16 * 1024];
        let mut closed = Vec::new();
        let now = Instant::now();
        for (&id, conn) in self.conns.iter_mut() {
            // Read available bytes.
            loop {
                match conn.stream.read(&mut buf) {
                    Ok(0) => {
                        conn.dead = true;
                        break;
                    }
                    Ok(n) => {
                        conn.last_activity = now;
                        match conn.parser.feed(&buf[..n]) {
                            Ok(ParseStatus::Complete(req)) => {
                                conn.inbox.push(req);
                                // Drain any pipelined requests.
                                while let Ok(ParseStatus::Complete(r)) = conn.parser.advance() {
                                    conn.inbox.push(r);
                                }
                            }
                            Ok(ParseStatus::NeedMore) => {}
                            Err(_) => {
                                // Malformed: 400 and close.
                                let resp = crate::Response::error(
                                    crate::StatusCode::BadRequest,
                                    "malformed request",
                                );
                                conn.out.extend_from_slice(&resp.to_bytes());
                                conn.close_after_write = true;
                                conn.responded = true;
                                break;
                            }
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        conn.dead = true;
                        break;
                    }
                }
            }
            for req in conn.inbox.drain(..) {
                if req.close {
                    conn.close_after_write = true;
                }
                events.push(ConnectionEvent::Request(id, req));
            }
            // Flush queued output.
            while conn.written < conn.out.len() {
                match conn.stream.write(&conn.out[conn.written..]) {
                    Ok(0) => {
                        conn.dead = true;
                        break;
                    }
                    Ok(n) => {
                        conn.written += n;
                        conn.last_activity = now;
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        conn.dead = true;
                        break;
                    }
                }
            }
            if conn.written == conn.out.len() {
                conn.out.clear();
                conn.written = 0;
                if conn.close_after_write && conn.responded {
                    conn.dead = true;
                }
            }
            // Idle reaping: no bytes moved in either direction for the
            // configured window. A best-effort 408 is written directly (the
            // socket buffer is almost certainly empty for an idle peer).
            if !conn.dead
                && !self.idle_timeout.is_zero()
                && now.duration_since(conn.last_activity) > self.idle_timeout
            {
                if !conn.responded {
                    let resp = crate::Response::error(
                        crate::StatusCode::RequestTimeout,
                        "idle connection timed out",
                    );
                    let _ = conn.stream.write(&resp.to_bytes());
                }
                conn.dead = true;
            }
            if conn.dead {
                closed.push(id);
            }
        }
        for id in closed {
            self.conns.remove(&id);
            events.push(ConnectionEvent::Closed(id));
        }
        events
    }

    /// Queue `bytes` to be written to connection `id`. Returns `false` if
    /// the connection is gone.
    pub fn send(&mut self, id: ConnId, bytes: &[u8]) -> bool {
        match self.conns.get_mut(&id) {
            Some(c) => {
                c.out.extend_from_slice(bytes);
                c.responded = true;
                c.last_activity = Instant::now();
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Response;
    use std::net::Shutdown;
    use std::time::{Duration, Instant};

    fn poll_until<F: FnMut(&mut PollServer) -> bool>(server: &mut PollServer, mut done: F) {
        let deadline = Instant::now() + Duration::from_secs(5);
        while !done(server) {
            assert!(Instant::now() < deadline, "poll_until timed out");
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    #[test]
    fn end_to_end_request_response() {
        let mut server = PollServer::bind(
            "127.0.0.1:0".parse().unwrap(),
            1 << 20,
            Duration::from_secs(30),
        )
        .unwrap();
        let addr = server.local_addr().unwrap();

        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(b"POST /fn/echo HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello")
                .unwrap();
            let mut resp = Vec::new();
            s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
            let mut buf = [0u8; 1024];
            loop {
                match s.read(&mut buf) {
                    Ok(0) => break,
                    Ok(n) => {
                        resp.extend_from_slice(&buf[..n]);
                        if resp.windows(4).any(|w| w == b"\r\n\r\n") && resp.ends_with(b"HELLO") {
                            break;
                        }
                    }
                    Err(_) => break,
                }
            }
            let _ = s.shutdown(Shutdown::Both);
            resp
        });

        let mut answered = false;
        poll_until(&mut server, |srv| {
            for ev in srv.poll() {
                if let ConnectionEvent::Request(id, req) = ev {
                    assert_eq!(req.path, "/fn/echo");
                    let body = req.body.to_ascii_uppercase();
                    srv.send(id, &Response::ok(body).to_bytes());
                    answered = true;
                }
            }
            answered
        });
        // Keep polling until the write drains and the client hangs up.
        poll_until(&mut server, |srv| {
            srv.poll();
            srv.connection_count() == 0
        });

        let resp = client.join().unwrap();
        let s = String::from_utf8(resp).unwrap();
        assert!(s.starts_with("HTTP/1.1 200 OK"));
        assert!(s.ends_with("HELLO"));
    }

    #[test]
    fn malformed_request_gets_400_and_close() {
        let mut server = PollServer::bind(
            "127.0.0.1:0".parse().unwrap(),
            1 << 20,
            Duration::from_secs(30),
        )
        .unwrap();
        let addr = server.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(b"NOT-HTTP\r\n\r\n").unwrap();
            let mut resp = Vec::new();
            s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
            let mut buf = [0u8; 1024];
            while let Ok(n) = s.read(&mut buf) {
                if n == 0 {
                    break;
                }
                resp.extend_from_slice(&buf[..n]);
            }
            resp
        });
        poll_until(&mut server, |srv| {
            srv.poll();
            srv.connection_count() == 0
        });
        let resp = String::from_utf8(client.join().unwrap()).unwrap();
        assert!(resp.starts_with("HTTP/1.1 400"), "{resp}");
    }

    #[test]
    fn slow_loris_connection_is_reaped() {
        let mut server = PollServer::bind(
            "127.0.0.1:0".parse().unwrap(),
            1 << 20,
            Duration::from_millis(50),
        )
        .unwrap();
        let addr = server.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            // Half a request, then silence: the server must not wait forever.
            s.write_all(b"POST /fn HTTP/1.1\r\nContent-Length: 100\r\n\r\npartial")
                .unwrap();
            s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
            let mut resp = Vec::new();
            let mut buf = [0u8; 1024];
            while let Ok(n) = s.read(&mut buf) {
                if n == 0 {
                    break;
                }
                resp.extend_from_slice(&buf[..n]);
            }
            resp
        });
        // Wait for the connection to appear, then for the reaper to kill it.
        poll_until(&mut server, |srv| {
            srv.poll();
            srv.connection_count() == 1
        });
        let start = Instant::now();
        poll_until(&mut server, |srv| {
            srv.poll();
            srv.connection_count() == 0
        });
        assert!(
            start.elapsed() < Duration::from_secs(3),
            "idle reap took too long"
        );
        let resp = String::from_utf8(client.join().unwrap()).unwrap();
        assert!(resp.starts_with("HTTP/1.1 408"), "{resp}");
    }

    #[test]
    fn active_connection_survives_idle_reaper() {
        let idle = Duration::from_millis(800);
        let mut server = PollServer::bind("127.0.0.1:0".parse().unwrap(), 1 << 20, idle).unwrap();
        let addr = server.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            // Trickle a complete request slowly: each chunk lands well within
            // the idle window, but the whole request takes longer than one
            // window — it can only succeed if activity resets the timer. The
            // worst client-side gap is measured so a scheduler stall on a
            // loaded test machine (sleep overshooting the idle window) is
            // distinguishable from a reaper bug.
            let mut max_gap = Duration::ZERO;
            let mut last = Instant::now();
            for chunk in [
                &b"POST /fn HTTP/1.1\r\n"[..],
                &b"Content-Length: 4\r\n\r\n"[..],
                &b"pi"[..],
                &b"ng"[..],
            ] {
                std::thread::sleep(Duration::from_millis(300));
                s.write_all(chunk).unwrap();
                max_gap = max_gap.max(last.elapsed());
                last = Instant::now();
            }
            s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
            let mut resp = Vec::new();
            let mut buf = [0u8; 1024];
            while let Ok(n) = s.read(&mut buf) {
                if n == 0 {
                    break;
                }
                resp.extend_from_slice(&buf[..n]);
                if resp.ends_with(b"pong") {
                    break;
                }
            }
            (resp, max_gap)
        });
        poll_until(&mut server, |srv| {
            for ev in srv.poll() {
                if let ConnectionEvent::Request(id, _) = ev {
                    srv.send(id, &Response::ok(b"pong".to_vec()).to_bytes());
                }
            }
            // `send` only queues; later polls perform the actual write. Keep
            // polling until the response reaches the client and the
            // connection winds down (also covers the reaped-under-stall
            // case, where the 408 closes it).
            srv.connection_count() == 0
        });
        let (resp, max_gap) = client.join().unwrap();
        let resp = String::from_utf8(resp).unwrap();
        if max_gap < idle {
            assert!(
                resp.starts_with("HTTP/1.1 200"),
                "reaped despite activity (max client gap {max_gap:?}): {resp}"
            );
        } else {
            // The client genuinely went idle past the window; either outcome
            // is correct, so just require a well-formed response.
            assert!(
                resp.starts_with("HTTP/1.1 200") || resp.starts_with("HTTP/1.1 408"),
                "{resp}"
            );
        }
    }

    #[test]
    fn many_concurrent_connections() {
        let mut server = PollServer::bind(
            "127.0.0.1:0".parse().unwrap(),
            1 << 20,
            Duration::from_secs(30),
        )
        .unwrap();
        let addr = server.local_addr().unwrap();
        const N: usize = 32;
        let clients: Vec<_> = (0..N)
            .map(|i| {
                std::thread::spawn(move || {
                    let mut s = TcpStream::connect(addr).unwrap();
                    let body = format!("client-{i}");
                    s.write_all(
                        format!(
                            "POST /fn HTTP/1.1\r\nContent-Length: {}\r\n\r\n{}",
                            body.len(),
                            body
                        )
                        .as_bytes(),
                    )
                    .unwrap();
                    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
                    let mut resp = Vec::new();
                    let mut buf = [0u8; 1024];
                    loop {
                        match s.read(&mut buf) {
                            Ok(0) | Err(_) => break,
                            Ok(n) => {
                                resp.extend_from_slice(&buf[..n]);
                                if resp.ends_with(body.as_bytes()) {
                                    break;
                                }
                            }
                        }
                    }
                    String::from_utf8(resp).unwrap()
                })
            })
            .collect();

        let mut served = 0;
        poll_until(&mut server, |srv| {
            for ev in srv.poll() {
                if let ConnectionEvent::Request(id, req) = ev {
                    srv.send(id, &Response::ok(req.body).to_bytes());
                    served += 1;
                }
            }
            served == N
        });
        // Drain writes.
        for _ in 0..200 {
            server.poll();
            std::thread::sleep(Duration::from_millis(1));
        }
        for (i, c) in clients.into_iter().enumerate() {
            let resp = c.join().unwrap();
            assert!(resp.contains(&format!("client-{i}")));
        }
    }
}
