//! Incremental HTTP/1.1 request parsing.

use std::error::Error;
use std::fmt;

/// A parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method, upper-case (`GET`, `POST`, …).
    pub method: String,
    /// Request target, e.g. `/fn/echo`.
    pub path: String,
    /// Header name/value pairs in arrival order; names lower-cased.
    pub headers: Vec<(String, String)>,
    /// Request body (empty when no `Content-Length`).
    pub body: Vec<u8>,
    /// Whether the client asked for `Connection: close`.
    pub close: bool,
}

impl Request {
    /// Look up a header by (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// Malformed request line or header.
    Malformed(&'static str),
    /// Headers or body exceed the configured maximum.
    TooLarge,
    /// Invalid `Content-Length` value.
    BadContentLength,
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::Malformed(what) => write!(f, "malformed http request: {what}"),
            HttpError::TooLarge => write!(f, "request exceeds configured size limit"),
            HttpError::BadContentLength => write!(f, "invalid content-length"),
        }
    }
}

impl Error for HttpError {}

/// Result of feeding bytes to the parser.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseStatus {
    /// More bytes are needed.
    NeedMore,
    /// A complete request was parsed. Any pipelined surplus bytes stay
    /// buffered for the next `feed` call.
    Complete(Request),
}

/// Incremental request parser: feed it network reads as they arrive.
#[derive(Debug)]
pub struct RequestParser {
    buf: Vec<u8>,
    max_size: usize,
    /// Parsed head, waiting for the body.
    pending: Option<(Request, usize)>,
}

impl RequestParser {
    /// Create a parser that rejects requests larger than `max_size` bytes
    /// (head + body).
    pub fn new(max_size: usize) -> Self {
        RequestParser {
            buf: Vec::new(),
            max_size,
            pending: None,
        }
    }

    /// Number of buffered, not-yet-consumed bytes.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Feed newly received bytes; returns a complete request as soon as one
    /// is available.
    ///
    /// # Errors
    ///
    /// Returns [`HttpError`] for malformed or oversized requests; the
    /// connection should be closed.
    pub fn feed(&mut self, bytes: &[u8]) -> Result<ParseStatus, HttpError> {
        if self.buf.len() + bytes.len() > self.max_size {
            return Err(HttpError::TooLarge);
        }
        self.buf.extend_from_slice(bytes);
        self.advance()
    }

    /// Try to produce the next pipelined request from already-buffered data.
    ///
    /// # Errors
    ///
    /// Same as [`feed`](Self::feed).
    pub fn advance(&mut self) -> Result<ParseStatus, HttpError> {
        // Body phase.
        if let Some((req, want)) = self.pending.take() {
            return self.try_body(req, want);
        }
        // Head phase: find CRLFCRLF.
        let Some(head_end) = find_double_crlf(&self.buf) else {
            return Ok(ParseStatus::NeedMore);
        };
        let head = &self.buf[..head_end];
        let mut lines = head.split(|&b| b == b'\n').map(|l| {
            let l = if l.last() == Some(&b'\r') {
                &l[..l.len() - 1]
            } else {
                l
            };
            l
        });
        let request_line = lines.next().ok_or(HttpError::Malformed("empty head"))?;
        let rl = std::str::from_utf8(request_line).map_err(|_| HttpError::Malformed("non-utf8"))?;
        let mut parts = rl.split_whitespace();
        let method = parts
            .next()
            .ok_or(HttpError::Malformed("missing method"))?
            .to_ascii_uppercase();
        let path = parts
            .next()
            .ok_or(HttpError::Malformed("missing path"))?
            .to_string();
        let version = parts
            .next()
            .ok_or(HttpError::Malformed("missing version"))?;
        if !version.starts_with("HTTP/1.") {
            return Err(HttpError::Malformed("unsupported version"));
        }
        if parts.next().is_some() {
            return Err(HttpError::Malformed("garbage after version"));
        }

        let mut headers = Vec::new();
        let mut content_length = 0usize;
        let mut close = version == "HTTP/1.0";
        for line in lines {
            if line.is_empty() {
                continue;
            }
            let s = std::str::from_utf8(line).map_err(|_| HttpError::Malformed("non-utf8"))?;
            let (name, value) = s
                .split_once(':')
                .ok_or(HttpError::Malformed("header missing colon"))?;
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim().to_string();
            if name.is_empty() {
                return Err(HttpError::Malformed("empty header name"));
            }
            if name == "content-length" {
                content_length = value.parse().map_err(|_| HttpError::BadContentLength)?;
            }
            if name == "connection" {
                let v = value.to_ascii_lowercase();
                if v == "close" {
                    close = true;
                } else if v == "keep-alive" {
                    close = false;
                }
            }
            headers.push((name, value));
        }
        if head_end + 4 + content_length > self.max_size {
            return Err(HttpError::TooLarge);
        }
        self.buf.drain(..head_end + 4);
        let req = Request {
            method,
            path,
            headers,
            body: Vec::new(),
            close,
        };
        self.try_body(req, content_length)
    }

    fn try_body(&mut self, mut req: Request, want: usize) -> Result<ParseStatus, HttpError> {
        if self.buf.len() < want {
            self.pending = Some((req, want));
            return Ok(ParseStatus::NeedMore);
        }
        req.body = self.buf.drain(..want).collect();
        Ok(ParseStatus::Complete(req))
    }
}

fn find_double_crlf(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_get() {
        let mut p = RequestParser::new(4096);
        let st = p.feed(b"GET /x HTTP/1.1\r\nHost: a\r\n\r\n").unwrap();
        let ParseStatus::Complete(req) = st else {
            panic!("incomplete")
        };
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/x");
        assert_eq!(req.header("host"), Some("a"));
        assert_eq!(req.header("HOST"), Some("a"));
        assert!(req.body.is_empty());
        assert!(!req.close);
    }

    #[test]
    fn parses_post_body_across_fragments() {
        let mut p = RequestParser::new(4096);
        assert_eq!(
            p.feed(b"POST /fn HTTP/1.1\r\nConte").unwrap(),
            ParseStatus::NeedMore
        );
        assert_eq!(
            p.feed(b"nt-Length: 10\r\n\r\n12345").unwrap(),
            ParseStatus::NeedMore
        );
        let st = p.feed(b"67890").unwrap();
        let ParseStatus::Complete(req) = st else {
            panic!("incomplete")
        };
        assert_eq!(req.body, b"1234567890");
    }

    #[test]
    fn pipelined_requests() {
        let mut p = RequestParser::new(4096);
        let two = b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n";
        let ParseStatus::Complete(r1) = p.feed(two).unwrap() else {
            panic!()
        };
        assert_eq!(r1.path, "/a");
        let ParseStatus::Complete(r2) = p.advance().unwrap() else {
            panic!()
        };
        assert_eq!(r2.path, "/b");
        assert_eq!(p.advance().unwrap(), ParseStatus::NeedMore);
    }

    #[test]
    fn connection_close_and_http10() {
        let mut p = RequestParser::new(4096);
        let ParseStatus::Complete(r) = p
            .feed(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap()
        else {
            panic!()
        };
        assert!(r.close);
        let ParseStatus::Complete(r) = p.feed(b"GET / HTTP/1.0\r\n\r\n").unwrap() else {
            panic!()
        };
        assert!(r.close);
        let ParseStatus::Complete(r) = p
            .feed(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")
            .unwrap()
        else {
            panic!()
        };
        assert!(!r.close);
    }

    #[test]
    fn rejects_malformed() {
        assert!(RequestParser::new(4096).feed(b"BROKEN\r\n\r\n").is_err());
        assert!(RequestParser::new(4096)
            .feed(b"GET / FTP/1.1\r\n\r\n")
            .is_err());
        assert!(RequestParser::new(4096)
            .feed(b"GET / HTTP/1.1\r\nBad-Header\r\n\r\n")
            .is_err());
        assert!(RequestParser::new(4096)
            .feed(b"POST / HTTP/1.1\r\nContent-Length: x\r\n\r\n")
            .is_err());
    }

    #[test]
    fn rejects_oversized() {
        let mut p = RequestParser::new(16);
        assert_eq!(
            p.feed(b"POST /very-long-path HTTP/1.1\r\n"),
            Err(HttpError::TooLarge)
        );
        // Declared body exceeds the limit even though the head fits.
        let mut p = RequestParser::new(128);
        assert!(matches!(
            p.feed(b"POST / HTTP/1.1\r\nContent-Length: 10000\r\n\r\n"),
            Err(HttpError::TooLarge)
        ));
    }
}
