//! Minimal HTTP/1.1 machinery for the Sledge runtime: an incremental
//! request parser, a response serializer, and a non-blocking connection
//! state machine used by the listener core.
//!
//! This plays the role of the paper's request-forwarding layer (epoll-based
//! HTTP intake feeding function instantiation) without any external
//! dependencies.
//!
//! # Examples
//!
//! ```
//! use sledge_http::{RequestParser, ParseStatus, Response};
//!
//! let mut p = RequestParser::new(1 << 20);
//! let bytes = b"POST /fn/echo HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello";
//! match p.feed(bytes).unwrap() {
//!     ParseStatus::Complete(req) => {
//!         assert_eq!(req.method, "POST");
//!         assert_eq!(req.path, "/fn/echo");
//!         assert_eq!(req.body, b"hello");
//!     }
//!     ParseStatus::NeedMore => panic!("request was complete"),
//! }
//!
//! let resp = Response::ok(b"world".to_vec()).to_bytes();
//! assert!(resp.starts_with(b"HTTP/1.1 200 OK\r\n"));
//! ```

mod parse;
mod response;
mod server;

pub use parse::{HttpError, ParseStatus, Request, RequestParser};
pub use response::{Response, StatusCode};
pub use server::{Connection, ConnectionEvent, PollServer};
