//! Minimal HTTP/1.1 machinery for the Sledge runtime: an incremental
//! request parser, a response serializer, and two interchangeable listener
//! front ends — the production epoll readiness reactor
//! ([`ReactorServer`]) and the legacy non-blocking scan loop
//! ([`PollServer`]) — behind a common [`HttpServer`] facade.
//!
//! This plays the role of the paper's request-forwarding layer (epoll-based
//! HTTP intake feeding function instantiation) without any external
//! dependencies: the epoll syscalls are wrapped directly in [`mod@sys`].
//!
//! # Examples
//!
//! ```
//! use sledge_http::{RequestParser, ParseStatus, Response};
//!
//! let mut p = RequestParser::new(1 << 20);
//! let bytes = b"POST /fn/echo HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello";
//! match p.feed(bytes).unwrap() {
//!     ParseStatus::Complete(req) => {
//!         assert_eq!(req.method, "POST");
//!         assert_eq!(req.path, "/fn/echo");
//!         assert_eq!(req.body, b"hello");
//!     }
//!     ParseStatus::NeedMore => panic!("request was complete"),
//! }
//!
//! let resp = Response::ok(b"world".to_vec()).to_bytes();
//! assert!(resp.starts_with(b"HTTP/1.1 200 OK\r\n"));
//! ```

pub mod client;
mod parse;
mod reactor;
mod response;
mod server;
pub mod sys;

pub use client::{format_request, ClientConfig, ClientResponse, HttpClient};
pub use parse::{HttpError, ParseStatus, Request, RequestParser};
pub use reactor::ReactorServer;
pub use response::{Response, StatusCode};
pub use server::{
    Backend, ConnCounters, ConnId, ConnSnapshot, Connection, ConnectionEvent, HttpServer,
    PollServer, ServerConfig,
};
