//! Minimal blocking HTTP/1.1 client with keep-alive and pipelining.
//!
//! This is the outbound twin of the listener front ends: a small
//! `TcpStream`-backed client that keeps its connection open across
//! requests, supports writing a pipelined burst and draining the matching
//! responses, and transparently re-dials once when a reused keep-alive
//! connection turns out to have been closed by the peer. It serves every
//! in-tree HTTP consumer — the load generator, the cluster router's
//! forwarding/probe paths, and tests — so connection handling and response
//! parsing live in exactly one place.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Connection knobs for [`HttpClient`].
#[derive(Debug, Clone, Copy)]
pub struct ClientConfig {
    /// Dial timeout.
    pub connect_timeout: Duration,
    /// Per-read timeout on the socket (`None` = block forever).
    pub read_timeout: Option<Duration>,
    /// Disable Nagle batching (on by default: every in-tree consumer is
    /// latency-sensitive request/response traffic).
    pub nodelay: bool,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connect_timeout: Duration::from_secs(2),
            read_timeout: Some(Duration::from_secs(10)),
            nodelay: true,
        }
    }
}

/// A parsed HTTP/1.1 response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientResponse {
    /// Numeric status code from the status line.
    pub status: u16,
    /// Header name/value pairs in arrival order; names lower-cased.
    pub headers: Vec<(String, String)>,
    /// Response body (sized by `Content-Length`; empty when absent).
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// Whether the status is 2xx.
    pub fn is_success(&self) -> bool {
        (200..300).contains(&self.status)
    }

    /// Look up a header by (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Serialize one HTTP/1.1 request. `Content-Length` is always emitted so
/// requests are safely pipelinable; pass extra headers as `(name, value)`
/// pairs.
pub fn format_request(method: &str, path: &str, headers: &[(&str, &str)], body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(body.len() + 128);
    out.extend_from_slice(method.as_bytes());
    out.push(b' ');
    out.extend_from_slice(path.as_bytes());
    out.extend_from_slice(b" HTTP/1.1\r\n");
    for (n, v) in headers {
        out.extend_from_slice(n.as_bytes());
        out.extend_from_slice(b": ");
        out.extend_from_slice(v.as_bytes());
        out.extend_from_slice(b"\r\n");
    }
    out.extend_from_slice(format!("Content-Length: {}\r\n\r\n", body.len()).as_bytes());
    out.extend_from_slice(body);
    out
}

/// A keep-alive HTTP/1.1 connection to one address.
#[derive(Debug)]
pub struct HttpClient {
    addr: SocketAddr,
    config: ClientConfig,
    stream: Option<BufReader<TcpStream>>,
}

impl HttpClient {
    /// A client for `addr` with default timeouts. Nothing is dialed until
    /// the first request.
    pub fn new(addr: SocketAddr) -> Self {
        Self::with_config(addr, ClientConfig::default())
    }

    /// A client with explicit connection knobs.
    pub fn with_config(addr: SocketAddr, config: ClientConfig) -> Self {
        HttpClient {
            addr,
            config,
            stream: None,
        }
    }

    /// The address this client dials.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Whether a keep-alive connection is currently open.
    pub fn is_connected(&self) -> bool {
        self.stream.is_some()
    }

    /// Drop the current connection (the next request re-dials).
    pub fn disconnect(&mut self) {
        self.stream = None;
    }

    fn ensure_connected(&mut self) -> io::Result<&mut BufReader<TcpStream>> {
        if self.stream.is_none() {
            let stream = TcpStream::connect_timeout(&self.addr, self.config.connect_timeout)?;
            stream.set_nodelay(self.config.nodelay)?;
            stream.set_read_timeout(self.config.read_timeout)?;
            self.stream = Some(BufReader::new(stream));
        }
        Ok(self.stream.as_mut().unwrap())
    }

    /// Write pre-serialized request bytes (e.g. a pipelined burst built
    /// with [`format_request`]), connecting first if needed. On error the
    /// connection is dropped.
    pub fn send_raw(&mut self, bytes: &[u8]) -> io::Result<()> {
        let r = self
            .ensure_connected()
            .and_then(|s| s.get_mut().write_all(bytes));
        if r.is_err() {
            self.stream = None;
        }
        r
    }

    /// Write one request; pair with [`read_response`](Self::read_response).
    pub fn send(
        &mut self,
        method: &str,
        path: &str,
        headers: &[(&str, &str)],
        body: &[u8],
    ) -> io::Result<()> {
        self.send_raw(&format_request(method, path, headers, body))
    }

    /// Read the next response off the connection. On any error (EOF,
    /// timeout, malformed framing) the connection is dropped so the next
    /// request re-dials; a `Connection: close` response likewise retires
    /// the socket after the body is read.
    pub fn read_response(&mut self) -> io::Result<ClientResponse> {
        let Some(reader) = self.stream.as_mut() else {
            return Err(io::Error::new(
                io::ErrorKind::NotConnected,
                "no request in flight",
            ));
        };
        match read_one_response(reader) {
            Ok(resp) => {
                let close = resp
                    .header("connection")
                    .is_some_and(|v| v.eq_ignore_ascii_case("close"));
                if close {
                    self.stream = None;
                }
                Ok(resp)
            }
            Err(e) => {
                self.stream = None;
                Err(e)
            }
        }
    }

    /// One full request/response exchange.
    ///
    /// A reused keep-alive connection may have been closed by the peer
    /// between requests; if the failure happens on a reused connection,
    /// the exchange is retried once on a fresh dial. A failure on a fresh
    /// connection is returned as-is — retrying it is the caller's policy
    /// decision (the cluster router, for instance, fails over to another
    /// node instead).
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        headers: &[(&str, &str)],
        body: &[u8],
    ) -> io::Result<ClientResponse> {
        let reused = self.is_connected();
        let bytes = format_request(method, path, headers, body);
        let attempt = |c: &mut Self| -> io::Result<ClientResponse> {
            c.send_raw(&bytes)?;
            c.read_response()
        };
        match attempt(self) {
            Err(_) if reused => attempt(self),
            other => other,
        }
    }
}

/// Read one HTTP/1.1 response (status line, headers, `Content-Length`
/// body) off a buffered stream.
fn read_one_response(r: &mut BufReader<TcpStream>) -> io::Result<ClientResponse> {
    let mut line = String::new();
    if r.read_line(&mut line)? == 0 {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "eof before status line",
        ));
    }
    let t = line.trim_end();
    let status: u16 = t
        .strip_prefix("HTTP/1.")
        .and_then(|rest| rest.split_whitespace().nth(1))
        .and_then(|code| code.parse().ok())
        .ok_or_else(|| io::Error::other(format!("bad status line: {t}")))?;

    let mut headers = Vec::new();
    let mut content_length = 0usize;
    loop {
        line.clear();
        if r.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "eof mid-headers",
            ));
        }
        let t = line.trim_end();
        if t.is_empty() {
            break;
        }
        let Some((k, v)) = t.split_once(':') else {
            return Err(io::Error::other(format!("malformed header: {t}")));
        };
        let name = k.trim().to_ascii_lowercase();
        let value = v.trim().to_string();
        if name == "content-length" {
            content_length = value.parse().map_err(io::Error::other)?;
        }
        headers.push((name, value));
    }
    let mut body = vec![0u8; content_length];
    r.read_exact(&mut body)?;
    Ok(ClientResponse {
        status,
        headers,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    /// A tiny echo server: answers every request with its body, tracking
    /// how many connections it accepted. `close_after` makes it close each
    /// connection after N responses (simulating keep-alive expiry).
    fn echo_server(close_after: Option<usize>) -> (SocketAddr, Arc<AtomicUsize>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let accepted = Arc::new(AtomicUsize::new(0));
        let counter = accepted.clone();
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                let Ok(stream) = stream else { break };
                counter.fetch_add(1, Ordering::SeqCst);
                std::thread::spawn(move || {
                    let mut reader = BufReader::new(stream);
                    let mut served = 0usize;
                    loop {
                        // Parse one request: headers then body.
                        let mut line = String::new();
                        if reader.read_line(&mut line).unwrap_or(0) == 0 {
                            return;
                        }
                        let mut len = 0usize;
                        loop {
                            let mut h = String::new();
                            if reader.read_line(&mut h).unwrap_or(0) == 0 {
                                return;
                            }
                            let t = h.trim_end();
                            if t.is_empty() {
                                break;
                            }
                            if let Some((k, v)) = t.split_once(':') {
                                if k.eq_ignore_ascii_case("content-length") {
                                    len = v.trim().parse().unwrap_or(0);
                                }
                            }
                        }
                        let mut body = vec![0u8; len];
                        if reader.read_exact(&mut body).is_err() {
                            return;
                        }
                        let resp = format!("HTTP/1.1 200 OK\r\nContent-Length: {len}\r\n\r\n");
                        let s = reader.get_mut();
                        if s.write_all(resp.as_bytes()).is_err() || s.write_all(&body).is_err() {
                            return;
                        }
                        served += 1;
                        if close_after == Some(served) {
                            return;
                        }
                    }
                });
            }
        });
        (addr, accepted)
    }

    #[test]
    fn request_roundtrip_and_keepalive_reuse() {
        let (addr, accepted) = echo_server(None);
        let mut c = HttpClient::new(addr);
        for i in 0..5 {
            let body = format!("hello-{i}");
            let resp = c.request("POST", "/echo", &[], body.as_bytes()).unwrap();
            assert_eq!(resp.status, 200);
            assert!(resp.is_success());
            assert_eq!(resp.body, body.as_bytes());
        }
        // All five requests rode one connection.
        assert_eq!(accepted.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn pipelined_burst_drains_in_order() {
        let (addr, _) = echo_server(None);
        let mut c = HttpClient::new(addr);
        let mut burst = Vec::new();
        for i in 0..4 {
            burst.extend_from_slice(&format_request(
                "POST",
                "/echo",
                &[],
                format!("req-{i}").as_bytes(),
            ));
        }
        c.send_raw(&burst).unwrap();
        for i in 0..4 {
            let resp = c.read_response().unwrap();
            assert_eq!(resp.status, 200);
            assert_eq!(resp.body, format!("req-{i}").as_bytes());
        }
    }

    #[test]
    fn stale_keepalive_connection_is_redialed_once() {
        // Server closes every connection after one response: each request
        // after the first hits a dead socket and must transparently
        // reconnect.
        let (addr, accepted) = echo_server(Some(1));
        let mut c = HttpClient::new(addr);
        for i in 0..3 {
            let resp = c.request("POST", "/x", &[], b"ping").unwrap();
            assert_eq!(resp.status, 200, "request {i}");
        }
        assert_eq!(accepted.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn connect_failure_is_reported() {
        // A port with nothing listening: grab one, then drop the listener.
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let mut c = HttpClient::with_config(
            addr,
            ClientConfig {
                connect_timeout: Duration::from_millis(200),
                ..Default::default()
            },
        );
        assert!(c.request("GET", "/", &[], b"").is_err());
        assert!(!c.is_connected());
    }

    #[test]
    fn non_success_statuses_are_responses_not_errors() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let mut buf = [0u8; 1024];
            let _ = s.read(&mut buf);
            s.write_all(b"HTTP/1.1 503 Service Unavailable\r\nRetry-After: 2\r\nContent-Length: 4\r\n\r\nbusy")
                .unwrap();
        });
        let mut c = HttpClient::new(addr);
        let resp = c.request("GET", "/", &[], b"").unwrap();
        assert_eq!(resp.status, 503);
        assert!(!resp.is_success());
        assert_eq!(resp.header("retry-after"), Some("2"));
        assert_eq!(resp.body, b"busy");
    }

    #[test]
    fn formats_requests_with_content_length() {
        let bytes = format_request("POST", "/fn/echo", &[("X-A", "b")], b"abc");
        let s = String::from_utf8(bytes).unwrap();
        assert!(s.starts_with("POST /fn/echo HTTP/1.1\r\n"));
        assert!(s.contains("X-A: b\r\n"));
        assert!(s.ends_with("Content-Length: 3\r\n\r\nabc"));
    }
}
