//! HTTP response construction and serialization.

use std::fmt;
use std::time::Duration;

/// Format a back-off hint as `Retry-After` delta-seconds: rounded up to
/// whole seconds, minimum 1 (the header has second granularity, and a `0`
/// would invite an immediate retry, defeating the back-off). Every emitter
/// of the header — circuit-breaker 503s and admission-control 429s alike —
/// must go through this so clients see one consistent format.
pub fn retry_after_secs(hint: Duration) -> u64 {
    hint.as_secs_f64().ceil().max(1.0) as u64
}

/// The subset of status codes the runtime emits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StatusCode {
    /// 200
    Ok,
    /// 400
    BadRequest,
    /// 404
    NotFound,
    /// 429
    TooManyRequests,
    /// 408
    RequestTimeout,
    /// 500
    InternalServerError,
    /// 503
    ServiceUnavailable,
    /// 504
    GatewayTimeout,
}

impl StatusCode {
    /// Numeric code.
    pub fn code(self) -> u16 {
        match self {
            StatusCode::Ok => 200,
            StatusCode::BadRequest => 400,
            StatusCode::NotFound => 404,
            StatusCode::TooManyRequests => 429,
            StatusCode::RequestTimeout => 408,
            StatusCode::InternalServerError => 500,
            StatusCode::ServiceUnavailable => 503,
            StatusCode::GatewayTimeout => 504,
        }
    }

    /// Canonical reason phrase.
    pub fn reason(self) -> &'static str {
        match self {
            StatusCode::Ok => "OK",
            StatusCode::BadRequest => "Bad Request",
            StatusCode::NotFound => "Not Found",
            StatusCode::TooManyRequests => "Too Many Requests",
            StatusCode::RequestTimeout => "Request Timeout",
            StatusCode::InternalServerError => "Internal Server Error",
            StatusCode::ServiceUnavailable => "Service Unavailable",
            StatusCode::GatewayTimeout => "Gateway Timeout",
        }
    }
}

impl fmt::Display for StatusCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.code(), self.reason())
    }
}

/// An HTTP/1.1 response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status line code.
    pub status: StatusCode,
    /// Extra headers (`Content-Length` is added automatically).
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
    /// Whether to signal `Connection: close`.
    pub close: bool,
}

impl Response {
    /// A `200 OK` response with the given body.
    pub fn ok(body: Vec<u8>) -> Self {
        Response {
            status: StatusCode::Ok,
            headers: Vec::new(),
            body,
            close: false,
        }
    }

    /// An error response with a short text body.
    pub fn error(status: StatusCode, message: &str) -> Self {
        Response {
            status,
            headers: Vec::new(),
            body: message.as_bytes().to_vec(),
            close: false,
        }
    }

    /// Add a header (builder style).
    pub fn header(mut self, name: &str, value: &str) -> Self {
        self.headers.push((name.to_string(), value.to_string()));
        self
    }

    /// Attach a `Retry-After` header formatted by [`retry_after_secs`].
    pub fn retry_after(self, hint: Duration) -> Self {
        self.header("Retry-After", &retry_after_secs(hint).to_string())
    }

    /// Serialize to wire bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.body.len() + 128);
        out.extend_from_slice(b"HTTP/1.1 ");
        out.extend_from_slice(self.status.to_string().as_bytes());
        out.extend_from_slice(b"\r\n");
        for (n, v) in &self.headers {
            out.extend_from_slice(n.as_bytes());
            out.extend_from_slice(b": ");
            out.extend_from_slice(v.as_bytes());
            out.extend_from_slice(b"\r\n");
        }
        out.extend_from_slice(format!("Content-Length: {}\r\n", self.body.len()).as_bytes());
        if self.close {
            out.extend_from_slice(b"Connection: close\r\n");
        }
        out.extend_from_slice(b"\r\n");
        out.extend_from_slice(&self.body);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serializes_with_content_length() {
        let r = Response::ok(b"abc".to_vec()).header("X-Fn", "echo");
        let bytes = r.to_bytes();
        let s = String::from_utf8(bytes).unwrap();
        assert!(s.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(s.contains("X-Fn: echo\r\n"));
        assert!(s.contains("Content-Length: 3\r\n"));
        assert!(s.ends_with("\r\n\r\nabc"));
    }

    #[test]
    fn error_statuses() {
        for (st, code) in [
            (StatusCode::BadRequest, 400),
            (StatusCode::NotFound, 404),
            (StatusCode::RequestTimeout, 408),
            (StatusCode::TooManyRequests, 429),
            (StatusCode::InternalServerError, 500),
            (StatusCode::ServiceUnavailable, 503),
            (StatusCode::GatewayTimeout, 504),
        ] {
            assert_eq!(st.code(), code);
            let bytes = Response::error(st, "nope").to_bytes();
            assert!(String::from_utf8(bytes)
                .unwrap()
                .starts_with(&format!("HTTP/1.1 {code}")));
        }
    }

    #[test]
    fn retry_after_rounds_up_to_whole_seconds_min_one() {
        // Ceil-to-seconds with a floor of 1: sub-second hints and zero both
        // become "1"; exact seconds pass through; fractions round up.
        for (hint, secs) in [
            (Duration::ZERO, 1),
            (Duration::from_millis(1), 1),
            (Duration::from_millis(999), 1),
            (Duration::from_secs(1), 1),
            (Duration::from_millis(1001), 2),
            (Duration::from_millis(2500), 3),
            (Duration::from_secs(60), 60),
        ] {
            assert_eq!(retry_after_secs(hint), secs, "hint {hint:?}");
        }
        // The builder emits exactly that format — 503 breakers and 429
        // admission rejections share it.
        for status in [StatusCode::ServiceUnavailable, StatusCode::TooManyRequests] {
            let r = Response::error(status, "later").retry_after(Duration::from_millis(1400));
            let s = String::from_utf8(r.to_bytes()).unwrap();
            assert!(s.contains("Retry-After: 2\r\n"), "{s}");
        }
    }

    #[test]
    fn close_header_emitted() {
        let mut r = Response::ok(vec![]);
        r.close = true;
        let s = String::from_utf8(r.to_bytes()).unwrap();
        assert!(s.contains("Connection: close\r\n"));
    }
}
