//! Thin raw-syscall wrappers around Linux `epoll` — the only kernel
//! interface the reactor needs. No external crates: libc is already linked
//! into every Rust binary on the supported targets, so plain `extern "C"`
//! declarations suffice (the same trick `std` itself uses).
//!
//! Only the subset the reactor uses is wrapped: create, add/modify/delete
//! interest, and wait. Vectored writes go through
//! `std::io::Write::write_vectored`, which is already `writev` on Linux.

#![allow(clippy::upper_case_acronyms)]

use std::io;
use std::os::fd::RawFd;

/// Readable (or a peer is waiting in the accept queue).
pub const EPOLLIN: u32 = 0x001;
/// Writable without blocking.
pub const EPOLLOUT: u32 = 0x004;
/// Error condition (always reported, never needs registering).
pub const EPOLLERR: u32 = 0x008;
/// Hangup (always reported, never needs registering).
pub const EPOLLHUP: u32 = 0x010;
/// Peer shut down the write half (half-close detection without a read).
pub const EPOLLRDHUP: u32 = 0x2000;
/// Edge-triggered registration.
pub const EPOLLET: u32 = 1 << 31;

const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;
const EPOLL_CLOEXEC: i32 = 0o2000000;

/// The kernel ABI `struct epoll_event`. Packed on x86_64 (the kernel
/// declares it `__attribute__((packed))` there so 32- and 64-bit layouts
/// agree); naturally aligned everywhere else.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Debug, Clone, Copy)]
pub struct EpollEvent {
    /// Ready-event bitmask (`EPOLLIN` | …).
    pub events: u32,
    /// Caller-chosen cookie, returned verbatim with each ready event.
    pub data: u64,
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    fn close(fd: i32) -> i32;
}

fn cvt(ret: i32) -> io::Result<i32> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// An owned epoll instance; the fd is closed on drop.
#[derive(Debug)]
pub struct Epoll {
    fd: RawFd,
}

impl Epoll {
    /// Create a new epoll instance (close-on-exec).
    ///
    /// # Errors
    ///
    /// Propagates the `epoll_create1` errno.
    pub fn new() -> io::Result<Epoll> {
        // SAFETY: no pointers involved; the returned fd is owned here.
        let fd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        Ok(Epoll { fd })
    }

    fn ctl(&self, op: i32, fd: RawFd, events: u32, data: u64) -> io::Result<()> {
        let mut ev = EpollEvent { events, data };
        // SAFETY: `ev` outlives the call; the kernel copies it out.
        cvt(unsafe { epoll_ctl(self.fd, op, fd, &mut ev) })?;
        Ok(())
    }

    /// Register `fd` with the given interest mask and cookie.
    ///
    /// # Errors
    ///
    /// Propagates the `epoll_ctl` errno.
    pub fn add(&self, fd: RawFd, events: u32, data: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, events, data)
    }

    /// Change the interest mask (and cookie) of a registered `fd`.
    ///
    /// # Errors
    ///
    /// Propagates the `epoll_ctl` errno.
    pub fn modify(&self, fd: RawFd, events: u32, data: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, events, data)
    }

    /// Deregister `fd`. Closing the fd deregisters it implicitly, but an
    /// explicit delete keeps the interest list exact while the fd lives.
    ///
    /// # Errors
    ///
    /// Propagates the `epoll_ctl` errno.
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Wait up to `timeout_ms` (0 = poll, negative = forever) for ready
    /// events; returns how many were written into `events`. `EINTR` is
    /// retried with a zero timeout so callers never see it.
    ///
    /// # Errors
    ///
    /// Propagates any other `epoll_wait` errno.
    pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        match self.wait_once(events, timeout_ms) {
            // Don't restart the full timeout after a signal; a zero-timeout
            // retry keeps the caller's deadline math honest (a second EINTR
            // reads as an empty poll).
            Err(e) if e.kind() == io::ErrorKind::Interrupted => match self.wait_once(events, 0) {
                Err(e) if e.kind() == io::ErrorKind::Interrupted => Ok(0),
                other => other,
            },
            other => other,
        }
    }

    fn wait_once(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        // SAFETY: the buffer is valid for `events.len()` entries and the
        // kernel writes at most `maxevents` of them.
        let n = unsafe {
            epoll_wait(
                self.fd,
                events.as_mut_ptr(),
                events.len() as i32,
                timeout_ms,
            )
        };
        cvt(n).map(|n| n as usize)
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        // SAFETY: `fd` is owned and closed exactly once.
        unsafe {
            close(self.fd);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    #[test]
    fn epoll_reports_listener_readiness() {
        let ep = Epoll::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        ep.add(listener.as_raw_fd(), EPOLLIN, 7).unwrap();

        let mut events = [EpollEvent { events: 0, data: 0 }; 8];
        // Nothing pending: a zero-timeout wait returns no events.
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);

        let addr = listener.local_addr().unwrap();
        let _client = TcpStream::connect(addr).unwrap();
        // A pending accept must surface as EPOLLIN with our cookie.
        let n = ep.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        let (data, mask) = (events[0].data, events[0].events);
        assert_eq!(data, 7);
        assert_ne!(mask & EPOLLIN, 0);
    }

    #[test]
    fn modify_and_delete_change_interest() {
        let ep = Epoll::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        server_side.set_nonblocking(true).unwrap();

        ep.add(server_side.as_raw_fd(), EPOLLIN, 1).unwrap();
        let mut events = [EpollEvent { events: 0, data: 0 }; 8];
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0, "no bytes yet");

        // EPOLLOUT on an idle socket is immediately ready.
        ep.modify(server_side.as_raw_fd(), EPOLLIN | EPOLLOUT, 2)
            .unwrap();
        let n = ep.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        let (data, mask) = (events[0].data, events[0].events);
        assert_eq!(data, 2);
        assert_ne!(mask & EPOLLOUT, 0);

        // After delete, even incoming bytes surface nothing.
        ep.delete(server_side.as_raw_fd()).unwrap();
        let mut c = client;
        c.write_all(b"x").unwrap();
        assert_eq!(ep.wait(&mut events, 50).unwrap(), 0);
    }
}
