//! The Nuclio-style baseline: a container+process-per-invocation serverless
//! model, used as the comparison system for the paper's Figures 6–8 and
//! Table 3.
//!
//! The paper's Nuclio deployment keeps a warm container per tenant whose
//! "serverless management" shell forks a process per invocation (Figure 1c),
//! tuned to `maxWorker = 16` concurrent processes. This crate reproduces
//! that execution model with real OS processes:
//!
//! * [`ProcessPool`] — a dispatcher plus a bounded set of *invocation slots*;
//!   each request spawns a real process (`fork + exec` via `std::process`),
//!   ships the request body over the child's stdin pipe, and reads the
//!   response from its stdout pipe — the same copy-across-the-kernel
//!   boundaries the paper attributes Nuclio's overheads to.
//! * [`ThreadPool`] — an in-process thread-per-request variant, used as an
//!   ablation point between Sledge and the process model.
//! * [`fork_exec_wait`] — the Table 3 churn measurement primitive.
//!
//! Child processes re-execute the *current* binary with
//! `SLEDGE_BASELINE_WORKER=<fn>` set; call [`worker_child_main`] early in
//! `main` of any binary that drives this pool (the benches and tests do).

use bytes::Bytes;
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use parking_lot::Mutex;
use std::io::{Read, Write};
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Environment variable selecting worker-child mode.
pub const WORKER_ENV: &str = "SLEDGE_BASELINE_WORKER";

/// A native function the baseline can serve: body in, body out.
pub type NativeFn = fn(&[u8]) -> Vec<u8>;

/// A named function table for the baseline (the "deployed functions" of the
/// tenant container).
#[derive(Clone, Default)]
pub struct FunctionTable {
    entries: Vec<(String, NativeFn)>,
}

impl FunctionTable {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a function under `name`.
    pub fn register(&mut self, name: impl Into<String>, f: NativeFn) -> &mut Self {
        self.entries.push((name.into(), f));
        self
    }

    /// Look up a function.
    pub fn get(&self, name: &str) -> Option<NativeFn> {
        self.entries
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, f)| *f)
    }
}

/// If this process was spawned as a worker child, run the function over
/// stdin/stdout and exit. Call first thing in `main`.
///
/// Protocol: the parent writes the entire request body to stdin and closes
/// it; the child writes the entire response to stdout and exits.
pub fn worker_child_main(table: &FunctionTable) {
    let Ok(name) = std::env::var(WORKER_ENV) else {
        return;
    };
    let mut body = Vec::new();
    std::io::stdin()
        .read_to_end(&mut body)
        .expect("worker child: read stdin");
    let out = match table.get(&name) {
        Some(f) => f(&body),
        None => b"unknown function".to_vec(),
    };
    std::io::stdout()
        .write_all(&out)
        .expect("worker child: write stdout");
    std::process::exit(0);
}

/// Result of one baseline invocation.
#[derive(Debug)]
pub struct BaselineCompletion {
    /// Response body (empty on failure).
    pub body: Vec<u8>,
    /// Whether the invocation succeeded.
    pub ok: bool,
    /// Arrival → completion.
    pub total: Duration,
    /// Time spent creating the process (the "cold start of process
    /// creation" the paper describes for Nuclio).
    pub spawn: Duration,
}

/// Handle for one pending baseline invocation.
pub struct BaselineHandle {
    rx: Receiver<BaselineCompletion>,
}

impl BaselineHandle {
    /// Wait for the invocation to finish.
    pub fn wait(self) -> Option<BaselineCompletion> {
        self.rx.recv().ok()
    }
}

struct Job {
    function: String,
    body: Bytes,
    tx: Sender<BaselineCompletion>,
    arrival: Instant,
}

/// The process-per-invocation pool (Nuclio's shell function processor).
pub struct ProcessPool {
    jobs: Sender<Job>,
    threads: Vec<JoinHandle<()>>,
    rejected: Arc<Mutex<u64>>,
}

impl ProcessPool {
    /// Create a pool with `max_workers` concurrent invocation slots (the
    /// paper tunes Nuclio to 16) and a bounded backlog.
    ///
    /// `exe` is the binary to spawn for children; pass
    /// `std::env::current_exe()` in binaries that call
    /// [`worker_child_main`].
    pub fn new(exe: std::path::PathBuf, max_workers: usize, backlog: usize) -> Self {
        let (tx, rx) = bounded::<Job>(backlog);
        let rejected = Arc::new(Mutex::new(0u64));
        let mut threads = Vec::new();
        for _ in 0..max_workers {
            let rx = rx.clone();
            let exe = exe.clone();
            threads.push(std::thread::spawn(move || {
                while let Ok(job) = rx.recv() {
                    let completion = run_in_child(&exe, &job);
                    let _ = job.tx.send(completion);
                }
            }));
        }
        ProcessPool {
            jobs: tx,
            threads,
            rejected,
        }
    }

    /// Submit a request; returns a handle. If the backlog is full the
    /// handle resolves immediately to a failed completion (the 503 path).
    pub fn invoke(&self, function: &str, body: impl Into<Bytes>) -> BaselineHandle {
        let (tx, rx) = bounded(1);
        let job = Job {
            function: function.to_string(),
            body: body.into(),
            tx,
            arrival: Instant::now(),
        };
        if let Err(e) = self.jobs.try_send(job) {
            *self.rejected.lock() += 1;
            let job = e.into_inner();
            let _ = job.tx.send(BaselineCompletion {
                body: Vec::new(),
                ok: false,
                total: Duration::ZERO,
                spawn: Duration::ZERO,
            });
        }
        BaselineHandle { rx }
    }

    /// Number of rejected (overloaded) requests.
    pub fn rejected(&self) -> u64 {
        *self.rejected.lock()
    }

    /// Stop accepting work and join the slots.
    pub fn shutdown(self) {
        drop(self.jobs);
        for t in self.threads {
            let _ = t.join();
        }
    }
}

fn run_in_child(exe: &std::path::Path, job: &Job) -> BaselineCompletion {
    let spawn_start = Instant::now();
    let child = Command::new(exe)
        .env(WORKER_ENV, &job.function)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn();
    let mut child: Child = match child {
        Ok(c) => c,
        Err(_) => {
            return BaselineCompletion {
                body: Vec::new(),
                ok: false,
                total: job.arrival.elapsed(),
                spawn: spawn_start.elapsed(),
            }
        }
    };
    let spawn = spawn_start.elapsed();

    // Ship the request body (copy #1: parent → kernel pipe → child). For
    // large payloads the child may block writing its response before we
    // finish writing the request, so drain stdout on a helper thread.
    let mut stdin = child.stdin.take();
    let mut stdout = child.stdout.take();
    let body_copy = job.body.clone();
    let writer = std::thread::spawn(move || {
        stdin
            .take()
            .map(|mut s| s.write_all(&body_copy).is_ok())
            .unwrap_or(false)
    });
    let mut body = Vec::new();
    let ok_out = stdout
        .take()
        .map(|mut s| s.read_to_end(&mut body).is_ok())
        .unwrap_or(false);
    let ok_in = writer.join().unwrap_or(false);
    let status_ok = child.wait().map(|s| s.success()).unwrap_or(false);

    BaselineCompletion {
        ok: ok_in && ok_out && status_ok,
        body,
        total: job.arrival.elapsed(),
        spawn,
    }
}

/// Measure one `fork + exec + wait` of a trivial child — the native churn
/// cost of Table 3. Uses the given program (e.g. `/bin/true`).
///
/// # Errors
///
/// Propagates spawn errors.
pub fn fork_exec_wait(program: &str) -> std::io::Result<Duration> {
    let start = Instant::now();
    let mut child = Command::new(program)
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()?;
    let _ = child.wait()?;
    Ok(start.elapsed())
}

/// An in-process thread-per-request executor: the "shared container,
/// process amortized" ablation point between full process churn and Sledge.
pub struct ThreadPool {
    jobs: Sender<(NativeFn, Bytes, Sender<BaselineCompletion>, Instant)>,
    threads: Vec<JoinHandle<()>>,
}

impl ThreadPool {
    /// Create a pool with `workers` threads.
    pub fn new(workers: usize) -> Self {
        let (tx, rx) = unbounded::<(NativeFn, Bytes, Sender<BaselineCompletion>, Instant)>();
        let mut threads = Vec::new();
        for _ in 0..workers {
            let rx = rx.clone();
            threads.push(std::thread::spawn(move || {
                while let Ok((f, body, tx, arrival)) = rx.recv() {
                    let out = f(&body);
                    let _ = tx.send(BaselineCompletion {
                        body: out,
                        ok: true,
                        total: arrival.elapsed(),
                        spawn: Duration::ZERO,
                    });
                }
            }));
        }
        ThreadPool { jobs: tx, threads }
    }

    /// Submit a request.
    pub fn invoke(&self, f: NativeFn, body: impl Into<Bytes>) -> BaselineHandle {
        let (tx, rx) = bounded(1);
        let _ = self.jobs.send((f, body.into(), tx, Instant::now()));
        BaselineHandle { rx }
    }

    /// Stop and join.
    pub fn shutdown(self) {
        drop(self.jobs);
        for t in self.threads {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fork_exec_wait_measures_something() {
        let d = fork_exec_wait("/bin/true").unwrap();
        assert!(d > Duration::ZERO);
        assert!(d < Duration::from_secs(2));
    }

    #[test]
    fn thread_pool_round_trips() {
        fn upper(b: &[u8]) -> Vec<u8> {
            b.to_ascii_uppercase()
        }
        let pool = ThreadPool::new(4);
        let hs: Vec<_> = (0..50)
            .map(|i| pool.invoke(upper, format!("req{i}").into_bytes()))
            .collect();
        for (i, h) in hs.into_iter().enumerate() {
            let c = h.wait().unwrap();
            assert!(c.ok);
            assert_eq!(c.body, format!("REQ{i}").to_ascii_uppercase().into_bytes());
        }
        pool.shutdown();
    }

    #[test]
    fn function_table_lookup() {
        fn f(_: &[u8]) -> Vec<u8> {
            vec![1]
        }
        let mut t = FunctionTable::new();
        t.register("a", f);
        assert!(t.get("a").is_some());
        assert!(t.get("b").is_none());
    }
}
