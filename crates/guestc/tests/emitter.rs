//! White-box tests of the DSL emitter: exact instruction sequences for the
//! core lowering patterns (while, for, break/continue depths, if/else).

use sledge_guestc::dsl::*;
use sledge_guestc::{FuncBuilder, ModuleBuilder};
use sledge_wasm::instr::{BlockType, Instr};
use sledge_wasm::types::ValType;

fn instrs_of(f: FuncBuilder) -> Vec<Instr> {
    let mut mb = ModuleBuilder::new("t");
    mb.memory(1, Some(1));
    let main = mb.add_func("main", f);
    mb.export_func(main, "main");
    let m = mb.build().unwrap();
    m.code[0].instrs.clone()
}

#[test]
fn while_lowering_shape() {
    let mut f = FuncBuilder::new(&[ValType::I32], None);
    let n = f.arg(0);
    f.extend([
        while_(
            gt_s(local(n), i32c(0)),
            vec![set(n, sub(local(n), i32c(1)))],
        ),
        ret(None),
    ]);
    let got = instrs_of(f);
    use Instr::*;
    assert_eq!(
        got,
        vec![
            Block(BlockType::Empty),
            Loop(BlockType::Empty),
            LocalGet(0),
            I32Const(0),
            I32GtS,
            I32Eqz,
            BrIf(1), // exit the block when the condition fails
            LocalGet(0),
            I32Const(1),
            I32Sub,
            LocalSet(0),
            Br(0), // back to the loop head
            End,
            End,
            Return,
            End,
        ]
    );
}

#[test]
fn break_targets_the_enclosing_block_continue_targets_the_loop() {
    let mut f = FuncBuilder::new(&[], None);
    let i = f.local(ValType::I32);
    f.extend([
        while_(
            i32c(1),
            vec![
                if_(eq(local(i), i32c(3)), vec![brk()]),
                if_(eq(local(i), i32c(1)), vec![cont()]),
                set(i, add(local(i), i32c(1))),
            ],
        ),
        ret(None),
    ]);
    let got = instrs_of(f);
    // Find the two Br instructions emitted inside `if` arms: break must be
    // depth 2 (if -> loop -> block) and continue depth 1 (if -> loop).
    let brs: Vec<u32> = got
        .windows(2)
        .filter_map(|w| match (&w[0], &w[1]) {
            // A Br directly before an End that is inside an If.
            (Instr::Br(d), Instr::End) => Some(*d),
            _ => None,
        })
        .collect();
    assert!(brs.contains(&2), "break depth: {got:?}");
    assert!(brs.contains(&1), "continue depth: {got:?}");
}

#[test]
fn for_loop_emits_increment_after_body() {
    let mut f = FuncBuilder::new(&[], None);
    let i = f.local(ValType::I32);
    f.extend([
        for_loop(i, i32c(0), lt_s(local(i), i32c(4)), 2, vec![Stmt::Nop]),
        ret(None),
    ]);
    let got = instrs_of(f);
    use Instr::*;
    // Init, then loop with condition and +2 increment.
    assert_eq!(&got[0..2], &[I32Const(0), LocalSet(0)]);
    assert!(got
        .windows(3)
        .any(|w| w == [LocalGet(0), I32Const(2), I32Add]));
    let _ = got;
}

use sledge_guestc::Stmt;

#[test]
fn if_else_emits_both_arms() {
    let mut f = FuncBuilder::new(&[ValType::I32], Some(ValType::I32));
    let x = f.arg(0);
    f.push(if_else(
        eqz(local(x)),
        vec![ret(Some(i32c(1)))],
        vec![ret(Some(i32c(2)))],
    ));
    // Fallback return is a trap (value function falling off the end).
    let got = instrs_of(f);
    use Instr::*;
    assert_eq!(
        got,
        vec![
            LocalGet(0),
            I32Eqz,
            If(BlockType::Empty),
            I32Const(1),
            Return,
            Else,
            I32Const(2),
            Return,
            End,
            Unreachable,
            End,
        ]
    );
}

#[test]
fn void_call_in_exec_is_not_dropped() {
    let mut mb = ModuleBuilder::new("t");
    mb.memory(1, Some(1));
    let mut void_fn = FuncBuilder::new(&[], None);
    void_fn.push(ret(None));
    let v = mb.add_func("void", void_fn);
    let mut f = FuncBuilder::new(&[], None);
    f.extend([exec(call(v, vec![])), ret(None)]);
    let main = mb.add_func("main", f);
    mb.export_func(main, "main");
    let m = mb.build().unwrap();
    let got = &m.code[1].instrs;
    assert!(
        !got.contains(&Instr::Drop),
        "void call must not emit Drop: {got:?}"
    );
    assert!(got.contains(&Instr::Call(0)));
}

#[test]
#[should_panic(expected = "break outside of a loop")]
fn break_outside_loop_panics() {
    let mut f = FuncBuilder::new(&[], None);
    f.push(brk());
    let _ = instrs_of(f);
}

#[test]
#[should_panic(expected = "set: type mismatch")]
fn type_mismatch_in_set_panics() {
    let mut f = FuncBuilder::new(&[], None);
    let i = f.local(ValType::I32);
    f.push(set(i, f64c(1.0)));
    let _ = instrs_of(f);
}

#[test]
fn indirect_calls_via_dsl_signature_dispatch_correctly() {
    use awsm::{translate, EngineConfig, Instance, NullHost, Tier, Value};
    let mut mb = ModuleBuilder::new("t");
    mb.memory(1, Some(1));
    let sig = mb.signature(&[ValType::I32], Some(ValType::I32));
    let mut d = FuncBuilder::new(&[ValType::I32], Some(ValType::I32));
    let x = d.arg(0);
    d.push(ret(Some(mul(local(x), i32c(2)))));
    let double = mb.add_func("double", d);
    let mut q = FuncBuilder::new(&[ValType::I32], Some(ValType::I32));
    let x = q.arg(0);
    q.push(ret(Some(mul(local(x), local(x)))));
    let square = mb.add_func("square", q);
    mb.table(&[double, square]);

    let mut m = FuncBuilder::new(&[ValType::I32, ValType::I32], Some(ValType::I32));
    let (sel, v) = (m.arg(0), m.arg(1));
    m.push(ret(Some(call_indirect(&sig, local(sel), vec![local(v)]))));
    let main = mb.add_func("main", m);
    mb.export_func(main, "main");
    let module = mb.build().unwrap();

    let cm = std::sync::Arc::new(translate(&module, Tier::Optimized).unwrap());
    for (sel, v, want) in [(0, 21, 42u64), (1, 9, 81)] {
        let mut inst = Instance::new(std::sync::Arc::clone(&cm), EngineConfig::default()).unwrap();
        let got = inst
            .call_complete("main", &[Value::I32(sel), Value::I32(v)], &mut NullHost)
            .unwrap();
        assert_eq!(got, Some(want));
    }
}
