//! A typed, tree-structured guest-language front end that compiles to
//! WebAssembly.
//!
//! In the Sledge paper, tenants write functions in C/C++ and compile them to
//! Wasm with clang/LLVM. This crate plays that role for the reproduction: it
//! provides a small structured language — expressions, statements, loops,
//! functions — that compiles down to `sledge-wasm` modules. Every guest
//! application and every PolyBench kernel in the `sledge-apps` crate is
//! written in this DSL.
//!
//! The DSL is deliberately C-shaped: explicit scalar types, flat linear
//! memory addressed in bytes, `while`/`for` loops with `break`/`continue`,
//! and calls to imported host functions (the runtime's POSIX-ish layer).
//!
//! # Examples
//!
//! A function computing `n * (n + 1) / 2` with a loop:
//!
//! ```
//! use sledge_guestc::dsl::*;
//! use sledge_guestc::{FuncBuilder, ModuleBuilder};
//! use sledge_wasm::types::ValType;
//!
//! let mut mb = ModuleBuilder::new("triangle");
//! let mut f = FuncBuilder::new(&[ValType::I32], Some(ValType::I32));
//! let n = f.arg(0);
//! let acc = f.local(ValType::I32);
//! let i = f.local(ValType::I32);
//! f.extend([
//!     set(acc, i32c(0)),
//!     for_loop(i, i32c(1), le_s(local(i), local(n)), 1, vec![
//!         set(acc, add(local(acc), local(i))),
//!     ]),
//!     ret(Some(local(acc))),
//! ]);
//! let main = mb.add_func("main", f);
//! mb.export_func(main, "main");
//! let module = mb.build()?;
//! assert!(module.exported_func("main").is_some());
//! # Ok::<(), sledge_guestc::BuildError>(())
//! ```
//!
//! # Panics
//!
//! DSL *type errors* (adding an `i32` to an `f64`, passing the wrong number
//! of call arguments, …) panic at module-construction time with a message
//! naming the offending construct — they are programming errors in the guest
//! source, the analogue of a C compiler diagnostic. Structural problems that
//! can only be detected whole-module (bad exports, missing memory) are
//! reported as [`BuildError`] from [`ModuleBuilder::build`].

mod builder;
mod emit;
mod expr;
mod stmt;

pub use builder::{BuildError, FuncBuilder, ModuleBuilder};
pub use expr::{BinOp, Cast, CmpOp, Expr, FnRef, Local, Scalar, SigRef, UnOp};
pub use stmt::Stmt;

/// Convenience constructors for the whole DSL; intended for glob import.
pub mod dsl {
    pub use crate::expr::helpers::*;
    pub use crate::stmt::helpers::*;
}
