//! Typed expression trees for the guest DSL.

use sledge_wasm::types::ValType;

/// A function-local variable (parameter or declared local).
///
/// Carries its type so expression types can be inferred bottom-up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Local {
    pub(crate) idx: u32,
    /// Value type of the local.
    pub ty: ValType,
}

impl Local {
    /// Raw Wasm local index (parameters first).
    pub fn index(self) -> u32 {
        self.idx
    }
}

/// A function-signature handle for indirect calls, interned on the module
/// builder (see `ModuleBuilder::signature`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SigRef {
    pub(crate) idx: u32,
    pub(crate) params: Vec<ValType>,
    pub(crate) result: Option<ValType>,
}

impl SigRef {
    /// Type index in the module's type section.
    pub fn index(&self) -> u32 {
        self.idx
    }
}

/// A reference to a declared or imported function, usable in [`Expr::Call`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FnRef {
    pub(crate) idx: u32,
    pub(crate) nparams: u32,
    pub(crate) result: Option<ValType>,
}

impl FnRef {
    /// Function index in the module's function index space.
    pub fn index(self) -> u32 {
        self.idx
    }

    /// The function's result type, if any.
    pub fn result(self) -> Option<ValType> {
        self.result
    }
}

/// The width/signedness of a memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scalar {
    /// 32-bit integer.
    I32,
    /// 64-bit integer.
    I64,
    /// 32-bit float.
    F32,
    /// 64-bit float.
    F64,
    /// Unsigned byte, widened to `i32`.
    U8,
    /// Signed byte, widened to `i32`.
    I8,
    /// Unsigned 16-bit, widened to `i32`.
    U16,
    /// Signed 16-bit, widened to `i32`.
    I16,
}

impl Scalar {
    /// The value type this scalar loads as / stores from.
    pub fn val_type(self) -> ValType {
        match self {
            Scalar::I32 | Scalar::U8 | Scalar::I8 | Scalar::U16 | Scalar::I16 => ValType::I32,
            Scalar::I64 => ValType::I64,
            Scalar::F32 => ValType::F32,
            Scalar::F64 => ValType::F64,
        }
    }

    /// Size of the access in bytes.
    pub fn size(self) -> u32 {
        match self {
            Scalar::U8 | Scalar::I8 => 1,
            Scalar::U16 | Scalar::I16 => 2,
            Scalar::I32 | Scalar::F32 => 4,
            Scalar::I64 | Scalar::F64 => 8,
        }
    }
}

/// Binary arithmetic/bitwise operators. Integer-only operators panic when
/// applied to floats and vice versa (at emit time).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    /// Signed division (float division for float operands).
    DivS,
    /// Unsigned division (integers only).
    DivU,
    /// Signed remainder (integers only).
    RemS,
    /// Unsigned remainder (integers only).
    RemU,
    And,
    Or,
    Xor,
    Shl,
    ShrS,
    ShrU,
    Rotl,
    Rotr,
    /// Float minimum (floats only).
    Min,
    /// Float maximum (floats only).
    Max,
    /// IEEE copysign (floats only).
    Copysign,
}

/// Comparison operators; all yield `i32` 0/1. For float operands the
/// signed/unsigned distinction collapses (`LtS`/`LtU` both mean `lt`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    Ne,
    LtS,
    LtU,
    GtS,
    GtU,
    LeS,
    LeU,
    GeS,
    GeU,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// Float negation.
    Neg,
    /// Float absolute value.
    Abs,
    /// Float square root.
    Sqrt,
    /// Float ceiling.
    Ceil,
    /// Float floor.
    Floor,
    /// Float truncation toward zero.
    Trunc,
    /// Float round-to-nearest-even.
    Nearest,
    /// Count leading zeros (integers).
    Clz,
    /// Count trailing zeros (integers).
    Ctz,
    /// Population count (integers).
    Popcnt,
    /// `== 0`, yields `i32` (integers).
    Eqz,
}

/// Explicit numeric conversions, named `<src>_to_<dst>`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cast {
    I32ToI64S,
    I32ToI64U,
    I64ToI32,
    I32ToF32S,
    I32ToF32U,
    I32ToF64S,
    I32ToF64U,
    I64ToF32S,
    I64ToF64S,
    I64ToF64U,
    F32ToF64,
    F64ToF32,
    F32ToI32S,
    F32ToI32U,
    F64ToI32S,
    F64ToI32U,
    F64ToI64S,
    F64ToI64U,
    F64BitsToI64,
    I64BitsToF64,
    F32BitsToI32,
    I32BitsToF32,
}

impl Cast {
    /// `(source type, destination type)` of the conversion.
    pub fn signature(self) -> (ValType, ValType) {
        use Cast::*;
        use ValType::*;
        match self {
            I32ToI64S | I32ToI64U => (I32, I64),
            I64ToI32 => (I64, I32),
            I32ToF32S | I32ToF32U => (I32, F32),
            I32ToF64S | I32ToF64U => (I32, F64),
            I64ToF32S => (I64, F32),
            I64ToF64S | I64ToF64U => (I64, F64),
            F32ToF64 => (F32, F64),
            F64ToF32 => (F64, F32),
            F32ToI32S | F32ToI32U => (F32, I32),
            F64ToI32S | F64ToI32U => (F64, I32),
            F64ToI64S | F64ToI64U => (F64, I64),
            F64BitsToI64 => (F64, I64),
            I64BitsToF64 => (I64, F64),
            F32BitsToI32 => (F32, I32),
            I32BitsToF32 => (I32, F32),
        }
    }
}

/// A typed expression tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    ConstI32(i32),
    ConstI64(i64),
    ConstF32(f32),
    ConstF64(f64),
    /// Read a local.
    Local(Local),
    /// Read a global (type recorded at construction).
    GlobalGet(u32, ValType),
    /// Binary operation; both operands must have the same type.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Comparison; yields `i32`.
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    /// Unary operation.
    Un(UnOp, Box<Expr>),
    /// Numeric conversion.
    Cast(Cast, Box<Expr>),
    /// Load `scalar` from `addr + offset`.
    Load(Scalar, Box<Expr>, u32),
    /// Direct call.
    Call(FnRef, Vec<Expr>),
    /// Indirect call through the module's function table: the last operand
    /// is the table index.
    CallIndirect(SigRef, Box<Expr>, Vec<Expr>),
    /// `cond ? then : else` — both arms always evaluated (wasm `select`).
    Select(Box<Expr>, Box<Expr>, Box<Expr>),
    /// Current memory size in pages.
    MemorySize,
    /// Grow memory by N pages; yields previous size or -1.
    MemoryGrow(Box<Expr>),
    /// Assign to a local and yield the value (wasm `local.tee`).
    Tee(Local, Box<Expr>),
}

impl Expr {
    /// The expression's value type, or `None` for a call to a void function.
    ///
    /// # Panics
    ///
    /// Panics on ill-typed trees (e.g. `i32 + f64`); this is the DSL's
    /// compile-time diagnostic.
    pub fn ty(&self) -> Option<ValType> {
        match self {
            Expr::ConstI32(_) => Some(ValType::I32),
            Expr::ConstI64(_) => Some(ValType::I64),
            Expr::ConstF32(_) => Some(ValType::F32),
            Expr::ConstF64(_) => Some(ValType::F64),
            Expr::Local(l) => Some(l.ty),
            Expr::GlobalGet(_, t) => Some(*t),
            Expr::Bin(op, a, b) => {
                let ta = a.ty().unwrap_or_else(|| panic!("void operand of {op:?}"));
                let tb = b.ty().unwrap_or_else(|| panic!("void operand of {op:?}"));
                assert_eq!(ta, tb, "operand type mismatch in {op:?}: {ta} vs {tb}");
                Some(ta)
            }
            Expr::Cmp(op, a, b) => {
                let ta = a.ty().unwrap_or_else(|| panic!("void operand of {op:?}"));
                let tb = b.ty().unwrap_or_else(|| panic!("void operand of {op:?}"));
                assert_eq!(ta, tb, "operand type mismatch in {op:?}: {ta} vs {tb}");
                Some(ValType::I32)
            }
            Expr::Un(op, a) => {
                let t = a.ty().unwrap_or_else(|| panic!("void operand of {op:?}"));
                if *op == UnOp::Eqz {
                    Some(ValType::I32)
                } else {
                    Some(t)
                }
            }
            Expr::Cast(c, a) => {
                let (src, dst) = c.signature();
                let t = a.ty().unwrap_or_else(|| panic!("void operand of {c:?}"));
                assert_eq!(t, src, "cast {c:?} applied to {t}");
                Some(dst)
            }
            Expr::Load(s, addr, _) => {
                assert_eq!(addr.ty(), Some(ValType::I32), "load address must be i32");
                Some(s.val_type())
            }
            Expr::Call(f, args) => {
                assert_eq!(
                    args.len() as u32,
                    f.nparams,
                    "call to fn #{} expects {} args, got {}",
                    f.idx,
                    f.nparams,
                    args.len()
                );
                f.result
            }
            Expr::CallIndirect(sig, index, args) => {
                assert_eq!(
                    index.ty(),
                    Some(ValType::I32),
                    "indirect call table index must be i32"
                );
                assert_eq!(
                    args.len(),
                    sig.params.len(),
                    "indirect call signature expects {} args, got {}",
                    sig.params.len(),
                    args.len()
                );
                for (i, (a, p)) in args.iter().zip(&sig.params).enumerate() {
                    assert_eq!(a.ty(), Some(*p), "indirect call arg {i} type");
                }
                sig.result
            }
            Expr::Select(c, a, b) => {
                assert_eq!(c.ty(), Some(ValType::I32), "select condition must be i32");
                let ta = a.ty().expect("void select arm");
                let tb = b.ty().expect("void select arm");
                assert_eq!(ta, tb, "select arm type mismatch: {ta} vs {tb}");
                Some(ta)
            }
            Expr::MemorySize => Some(ValType::I32),
            Expr::MemoryGrow(n) => {
                assert_eq!(n.ty(), Some(ValType::I32), "memory.grow takes i32");
                Some(ValType::I32)
            }
            Expr::Tee(l, v) => {
                assert_eq!(v.ty(), Some(l.ty), "tee type mismatch");
                Some(l.ty)
            }
        }
    }
}

/// Free-function constructors for expressions.
pub mod helpers {
    use super::*;

    /// `i32` constant.
    pub fn i32c(v: i32) -> Expr {
        Expr::ConstI32(v)
    }
    /// `i64` constant.
    pub fn i64c(v: i64) -> Expr {
        Expr::ConstI64(v)
    }
    /// `f32` constant.
    pub fn f32c(v: f32) -> Expr {
        Expr::ConstF32(v)
    }
    /// `f64` constant.
    pub fn f64c(v: f64) -> Expr {
        Expr::ConstF64(v)
    }
    /// Read a local.
    pub fn local(l: Local) -> Expr {
        Expr::Local(l)
    }
    /// Read a global.
    pub fn global(idx: u32, ty: ValType) -> Expr {
        Expr::GlobalGet(idx, ty)
    }

    fn bin(op: BinOp, a: Expr, b: Expr) -> Expr {
        Expr::Bin(op, Box::new(a), Box::new(b))
    }
    /// Addition.
    pub fn add(a: Expr, b: Expr) -> Expr {
        bin(BinOp::Add, a, b)
    }
    /// Subtraction.
    pub fn sub(a: Expr, b: Expr) -> Expr {
        bin(BinOp::Sub, a, b)
    }
    /// Multiplication.
    pub fn mul(a: Expr, b: Expr) -> Expr {
        bin(BinOp::Mul, a, b)
    }
    /// Signed / float division.
    pub fn div(a: Expr, b: Expr) -> Expr {
        bin(BinOp::DivS, a, b)
    }
    /// Unsigned division.
    pub fn div_u(a: Expr, b: Expr) -> Expr {
        bin(BinOp::DivU, a, b)
    }
    /// Signed remainder.
    pub fn rem(a: Expr, b: Expr) -> Expr {
        bin(BinOp::RemS, a, b)
    }
    /// Unsigned remainder.
    pub fn rem_u(a: Expr, b: Expr) -> Expr {
        bin(BinOp::RemU, a, b)
    }
    /// Bitwise and.
    pub fn and(a: Expr, b: Expr) -> Expr {
        bin(BinOp::And, a, b)
    }
    /// Bitwise or.
    pub fn or(a: Expr, b: Expr) -> Expr {
        bin(BinOp::Or, a, b)
    }
    /// Bitwise xor.
    pub fn xor(a: Expr, b: Expr) -> Expr {
        bin(BinOp::Xor, a, b)
    }
    /// Shift left.
    pub fn shl(a: Expr, b: Expr) -> Expr {
        bin(BinOp::Shl, a, b)
    }
    /// Arithmetic shift right.
    pub fn shr_s(a: Expr, b: Expr) -> Expr {
        bin(BinOp::ShrS, a, b)
    }
    /// Logical shift right.
    pub fn shr_u(a: Expr, b: Expr) -> Expr {
        bin(BinOp::ShrU, a, b)
    }
    /// Float minimum.
    pub fn fmin(a: Expr, b: Expr) -> Expr {
        bin(BinOp::Min, a, b)
    }
    /// Float maximum.
    pub fn fmax(a: Expr, b: Expr) -> Expr {
        bin(BinOp::Max, a, b)
    }

    fn cmp(op: CmpOp, a: Expr, b: Expr) -> Expr {
        Expr::Cmp(op, Box::new(a), Box::new(b))
    }
    /// Equality.
    pub fn eq(a: Expr, b: Expr) -> Expr {
        cmp(CmpOp::Eq, a, b)
    }
    /// Inequality.
    pub fn ne(a: Expr, b: Expr) -> Expr {
        cmp(CmpOp::Ne, a, b)
    }
    /// Signed / float less-than.
    pub fn lt_s(a: Expr, b: Expr) -> Expr {
        cmp(CmpOp::LtS, a, b)
    }
    /// Unsigned less-than.
    pub fn lt_u(a: Expr, b: Expr) -> Expr {
        cmp(CmpOp::LtU, a, b)
    }
    /// Signed / float greater-than.
    pub fn gt_s(a: Expr, b: Expr) -> Expr {
        cmp(CmpOp::GtS, a, b)
    }
    /// Unsigned greater-than.
    pub fn gt_u(a: Expr, b: Expr) -> Expr {
        cmp(CmpOp::GtU, a, b)
    }
    /// Signed / float less-or-equal.
    pub fn le_s(a: Expr, b: Expr) -> Expr {
        cmp(CmpOp::LeS, a, b)
    }
    /// Unsigned less-or-equal.
    pub fn le_u(a: Expr, b: Expr) -> Expr {
        cmp(CmpOp::LeU, a, b)
    }
    /// Signed / float greater-or-equal.
    pub fn ge_s(a: Expr, b: Expr) -> Expr {
        cmp(CmpOp::GeS, a, b)
    }
    /// Unsigned greater-or-equal.
    pub fn ge_u(a: Expr, b: Expr) -> Expr {
        cmp(CmpOp::GeU, a, b)
    }

    fn un(op: UnOp, a: Expr) -> Expr {
        Expr::Un(op, Box::new(a))
    }
    /// Float negation.
    pub fn neg(a: Expr) -> Expr {
        un(UnOp::Neg, a)
    }
    /// Float absolute value.
    pub fn abs(a: Expr) -> Expr {
        un(UnOp::Abs, a)
    }
    /// Float square root.
    pub fn sqrt(a: Expr) -> Expr {
        un(UnOp::Sqrt, a)
    }
    /// Float floor.
    pub fn floor(a: Expr) -> Expr {
        un(UnOp::Floor, a)
    }
    /// Logical not: `a == 0`.
    pub fn eqz(a: Expr) -> Expr {
        un(UnOp::Eqz, a)
    }

    /// Numeric conversion.
    pub fn cast(c: Cast, a: Expr) -> Expr {
        Expr::Cast(c, Box::new(a))
    }
    /// `i32` → `f64` (signed).
    pub fn i2d(a: Expr) -> Expr {
        cast(Cast::I32ToF64S, a)
    }
    /// `f64` → `i32` (signed truncation).
    pub fn d2i(a: Expr) -> Expr {
        cast(Cast::F64ToI32S, a)
    }
    /// `i32` → `f32` (signed).
    pub fn i2f(a: Expr) -> Expr {
        cast(Cast::I32ToF32S, a)
    }
    /// `f32` → `f64`.
    pub fn f2d(a: Expr) -> Expr {
        cast(Cast::F32ToF64, a)
    }
    /// `f64` → `f32`.
    pub fn d2f(a: Expr) -> Expr {
        cast(Cast::F64ToF32, a)
    }
    /// `i32` → `i64` (signed).
    pub fn i2l(a: Expr) -> Expr {
        cast(Cast::I32ToI64S, a)
    }
    /// `i64` → `i32` (wrap).
    pub fn l2i(a: Expr) -> Expr {
        cast(Cast::I64ToI32, a)
    }

    /// Load a scalar from `addr` (+ constant `offset` bytes).
    pub fn load(s: Scalar, addr: Expr, offset: u32) -> Expr {
        Expr::Load(s, Box::new(addr), offset)
    }
    /// Load an `i32` from `addr`.
    pub fn load_i32(addr: Expr) -> Expr {
        load(Scalar::I32, addr, 0)
    }
    /// Load an `f64` from `addr`.
    pub fn load_f64(addr: Expr) -> Expr {
        load(Scalar::F64, addr, 0)
    }
    /// Load an unsigned byte from `addr` as `i32`.
    pub fn load_u8(addr: Expr) -> Expr {
        load(Scalar::U8, addr, 0)
    }

    /// Call a function.
    pub fn call(f: FnRef, args: Vec<Expr>) -> Expr {
        Expr::Call(f, args)
    }
    /// Indirect call through the function table (`table[index](args…)`).
    pub fn call_indirect(sig: &SigRef, index: Expr, args: Vec<Expr>) -> Expr {
        Expr::CallIndirect(sig.clone(), Box::new(index), args)
    }
    /// `cond ? a : b` (both arms evaluated).
    pub fn select(cond: Expr, a: Expr, b: Expr) -> Expr {
        Expr::Select(Box::new(cond), Box::new(a), Box::new(b))
    }
    /// Assign and yield (wasm `local.tee`).
    pub fn tee(l: Local, v: Expr) -> Expr {
        Expr::Tee(l, Box::new(v))
    }
}

#[cfg(test)]
mod tests {
    use super::helpers::*;
    use super::*;

    #[test]
    fn type_inference_bottom_up() {
        let l = Local {
            idx: 0,
            ty: ValType::F64,
        };
        let e = add(local(l), f64c(1.0));
        assert_eq!(e.ty(), Some(ValType::F64));
        assert_eq!(lt_s(local(l), f64c(0.0)).ty(), Some(ValType::I32));
        assert_eq!(d2i(local(l)).ty(), Some(ValType::I32));
    }

    #[test]
    #[should_panic(expected = "operand type mismatch")]
    fn mixed_type_addition_panics() {
        let _ = add(i32c(1), f64c(2.0)).ty();
    }

    #[test]
    #[should_panic(expected = "expects 2 args")]
    fn wrong_arity_call_panics() {
        let f = FnRef {
            idx: 0,
            nparams: 2,
            result: Some(ValType::I32),
        };
        let _ = call(f, vec![i32c(1)]).ty();
    }

    #[test]
    fn scalar_sizes() {
        assert_eq!(Scalar::U8.size(), 1);
        assert_eq!(Scalar::I16.size(), 2);
        assert_eq!(Scalar::F32.size(), 4);
        assert_eq!(Scalar::F64.size(), 8);
        assert_eq!(Scalar::U8.val_type(), ValType::I32);
    }
}
