//! Function and module builders: the DSL's code-generation entry points.

use crate::emit::Emitter;
use crate::expr::{FnRef, Local, SigRef};
use crate::stmt::Stmt;
use sledge_wasm::module::{
    ConstExpr, DataSegment, ElementSegment, Export, FuncBody, Global, Import, Module,
};
use sledge_wasm::types::{FuncType, GlobalType, Limits, MemoryType, TableType, ValType};
use sledge_wasm::ValidateError;
use std::error::Error;
use std::fmt;

/// Error produced by [`ModuleBuilder::build`].
#[derive(Debug)]
pub enum BuildError {
    /// A declared function was never given a body.
    UndefinedFunc(String),
    /// The assembled module failed Wasm validation — a bug in the guest
    /// program or the DSL lowering.
    Invalid(ValidateError),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::UndefinedFunc(n) => write!(f, "function {n:?} declared but not defined"),
            BuildError::Invalid(e) => write!(f, "generated module is invalid: {e}"),
        }
    }
}

impl Error for BuildError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            BuildError::Invalid(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ValidateError> for BuildError {
    fn from(e: ValidateError) -> Self {
        BuildError::Invalid(e)
    }
}

/// Builds one guest function: parameters, locals, and a statement body.
///
/// # Examples
///
/// See the crate-level example.
#[derive(Debug, Clone)]
pub struct FuncBuilder {
    params: Vec<ValType>,
    result: Option<ValType>,
    locals: Vec<ValType>,
    body: Vec<Stmt>,
}

impl FuncBuilder {
    /// Start a function with the given parameter and result types.
    pub fn new(params: &[ValType], result: Option<ValType>) -> Self {
        FuncBuilder {
            params: params.to_vec(),
            result,
            locals: Vec::new(),
            body: Vec::new(),
        }
    }

    /// Handle for parameter `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn arg(&self, i: usize) -> Local {
        Local {
            idx: i as u32,
            ty: self.params[i],
        }
    }

    /// Declare a new zero-initialized local of type `ty`.
    pub fn local(&mut self, ty: ValType) -> Local {
        let idx = (self.params.len() + self.locals.len()) as u32;
        self.locals.push(ty);
        Local { idx, ty }
    }

    /// Declare `n` locals of the same type.
    pub fn locals(&mut self, ty: ValType, n: usize) -> Vec<Local> {
        (0..n).map(|_| self.local(ty)).collect()
    }

    /// Append one statement.
    pub fn push(&mut self, s: Stmt) -> &mut Self {
        self.body.push(s);
        self
    }

    /// Append many statements.
    pub fn extend(&mut self, stmts: impl IntoIterator<Item = Stmt>) -> &mut Self {
        self.body.extend(stmts);
        self
    }

    fn finish(self) -> (FuncType, FuncBody) {
        let ty = FuncType::new(
            self.params,
            self.result.map(|t| vec![t]).unwrap_or_default(),
        );
        let instrs = Emitter::new(self.result).emit_body(&self.body);
        (ty, FuncBody::new(self.locals, instrs))
    }
}

struct PendingFunc {
    name: String,
    ty: FuncType,
    body: Option<FuncBody>,
}

/// Builds a whole guest module: imports, functions, memory, data, globals,
/// a function table, and exports.
///
/// Import declarations must precede function declarations (imported
/// functions occupy the front of the function index space).
pub struct ModuleBuilder {
    name: String,
    /// Signatures interned for indirect calls; emitted first in the type
    /// section so their indices are stable.
    signatures: Vec<FuncType>,
    imports: Vec<(String, String, FuncType)>,
    funcs: Vec<PendingFunc>,
    memory: Option<(u32, Option<u32>)>,
    data: Vec<(u32, Vec<u8>)>,
    globals: Vec<(GlobalType, ConstExpr)>,
    exports: Vec<(String, FnRef)>,
    export_memory: bool,
    table: Vec<FnRef>,
}

impl ModuleBuilder {
    /// Start a module named `name` (recorded in the custom name section).
    pub fn new(name: impl Into<String>) -> Self {
        ModuleBuilder {
            name: name.into(),
            signatures: Vec::new(),
            imports: Vec::new(),
            funcs: Vec::new(),
            memory: None,
            data: Vec::new(),
            globals: Vec::new(),
            exports: Vec::new(),
            export_memory: false,
            table: Vec::new(),
        }
    }

    /// Intern a function signature for `call_indirect` use. Must be called
    /// before [`build`](Self::build); indices are assigned eagerly.
    pub fn signature(&mut self, params: &[ValType], result: Option<ValType>) -> SigRef {
        let ty = FuncType::new(params.to_vec(), result.map(|t| vec![t]).unwrap_or_default());
        let idx = match self.signatures.iter().position(|t| *t == ty) {
            Some(i) => i as u32,
            None => {
                self.signatures.push(ty);
                (self.signatures.len() - 1) as u32
            }
        };
        SigRef {
            idx,
            params: params.to_vec(),
            result,
        }
    }

    /// Import a host function. Must be called before any `declare`/`add_func`.
    ///
    /// # Panics
    ///
    /// Panics if a local function has already been declared.
    pub fn import_func(
        &mut self,
        module: impl Into<String>,
        name: impl Into<String>,
        params: &[ValType],
        result: Option<ValType>,
    ) -> FnRef {
        assert!(
            self.funcs.is_empty(),
            "imports must be declared before local functions"
        );
        let idx = self.imports.len() as u32;
        let ty = FuncType::new(params.to_vec(), result.map(|t| vec![t]).unwrap_or_default());
        self.imports.push((module.into(), name.into(), ty));
        FnRef {
            idx,
            nparams: params.len() as u32,
            result,
        }
    }

    /// Declare a function signature without a body (for recursion /
    /// forward references). Define it later with [`ModuleBuilder::define`].
    pub fn declare(
        &mut self,
        name: impl Into<String>,
        params: &[ValType],
        result: Option<ValType>,
    ) -> FnRef {
        let idx = (self.imports.len() + self.funcs.len()) as u32;
        self.funcs.push(PendingFunc {
            name: name.into(),
            ty: FuncType::new(params.to_vec(), result.map(|t| vec![t]).unwrap_or_default()),
            body: None,
        });
        FnRef {
            idx,
            nparams: params.len() as u32,
            result,
        }
    }

    /// Provide the body for a previously [`declare`](Self::declare)d function.
    ///
    /// # Panics
    ///
    /// Panics if `f` is an import, already defined, or if the builder's
    /// signature differs from the declaration.
    pub fn define(&mut self, f: FnRef, fb: FuncBuilder) {
        let local_idx = (f.idx as usize)
            .checked_sub(self.imports.len())
            .expect("cannot define an imported function");
        let (ty, body) = fb.finish();
        let slot = &mut self.funcs[local_idx];
        assert_eq!(slot.ty, ty, "definition signature differs from declaration");
        assert!(
            slot.body.is_none(),
            "function {:?} defined twice",
            slot.name
        );
        slot.body = Some(body);
    }

    /// Declare and define a function in one step.
    pub fn add_func(&mut self, name: impl Into<String>, fb: FuncBuilder) -> FnRef {
        let f = self.declare(name, &fb.params.clone(), fb.result);
        self.define(f, fb);
        f
    }

    /// Give the module a linear memory of `min` pages (optionally bounded).
    pub fn memory(&mut self, min: u32, max: Option<u32>) -> &mut Self {
        self.memory = Some((min, max));
        self
    }

    /// Also export the memory under the name `"memory"`.
    pub fn export_memory(&mut self) -> &mut Self {
        self.export_memory = true;
        self
    }

    /// Add a data segment at byte `offset`.
    pub fn data(&mut self, offset: u32, bytes: impl Into<Vec<u8>>) -> &mut Self {
        self.data.push((offset, bytes.into()));
        self
    }

    /// Add a mutable `i32` global; returns its index.
    pub fn global_i32(&mut self, init: i32) -> u32 {
        self.globals.push((
            GlobalType {
                value: ValType::I32,
                mutable: true,
            },
            ConstExpr::I32(init),
        ));
        (self.globals.len() - 1) as u32
    }

    /// Add a mutable `f64` global; returns its index.
    pub fn global_f64(&mut self, init: f64) -> u32 {
        self.globals.push((
            GlobalType {
                value: ValType::F64,
                mutable: true,
            },
            ConstExpr::F64(init),
        ));
        (self.globals.len() - 1) as u32
    }

    /// Export function `f` under `name`.
    pub fn export_func(&mut self, f: FnRef, name: impl Into<String>) -> &mut Self {
        self.exports.push((name.into(), f));
        self
    }

    /// Populate the module's function table with `funcs` (for
    /// `call_indirect`); slot `i` holds `funcs[i]`.
    pub fn table(&mut self, funcs: &[FnRef]) -> &mut Self {
        self.table = funcs.to_vec();
        self
    }

    /// Assemble and validate the module.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::UndefinedFunc`] if any declared function lacks a
    /// body, or [`BuildError::Invalid`] if the assembled module fails Wasm
    /// validation (which would indicate a DSL bug or an ill-typed guest
    /// program that slipped past the eager checks).
    pub fn build(self) -> Result<Module, BuildError> {
        let mut m = Module::new();
        m.name = Some(self.name);
        // Interned indirect-call signatures come first so SigRef indices
        // are the final type indices.
        for ty in self.signatures {
            m.types.push(ty);
        }
        for (module, name, ty) in self.imports {
            let t = m.push_type(ty);
            m.imports.push(Import::func(module, name, t));
        }
        for f in self.funcs {
            let body = f.body.ok_or(BuildError::UndefinedFunc(f.name))?;
            let t = m.push_type(f.ty);
            m.push_function(t, body);
        }
        if let Some((min, max)) = self.memory {
            m.memories.push(MemoryType {
                limits: Limits { min, max },
            });
        }
        for (offset, bytes) in self.data {
            m.data.push(DataSegment {
                offset: ConstExpr::I32(offset as i32),
                bytes,
            });
        }
        for (ty, init) in self.globals {
            m.globals.push(Global { ty, init });
        }
        for (name, f) in self.exports {
            m.exports.push(Export::func(name, f.idx));
        }
        if self.export_memory {
            m.exports.push(Export::memory("memory", 0));
        }
        if !self.table.is_empty() {
            let n = self.table.len() as u32;
            m.tables.push(TableType {
                limits: Limits::bounded(n, n),
            });
            m.elements.push(ElementSegment {
                offset: ConstExpr::I32(0),
                funcs: self.table.iter().map(|f| f.idx).collect(),
            });
        }
        sledge_wasm::validate::validate_module(&m)?;
        Ok(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::*;
    use crate::expr::Scalar;

    #[test]
    fn build_loop_function_validates() {
        let mut mb = ModuleBuilder::new("t");
        let mut f = FuncBuilder::new(&[ValType::I32], Some(ValType::I32));
        let n = f.arg(0);
        let acc = f.local(ValType::I32);
        let i = f.local(ValType::I32);
        f.extend([
            for_loop(
                i,
                i32c(0),
                lt_s(local(i), local(n)),
                1,
                vec![set(acc, add(local(acc), local(i)))],
            ),
            ret(Some(local(acc))),
        ]);
        let main = mb.add_func("main", f);
        mb.export_func(main, "main");
        mb.build().unwrap();
    }

    #[test]
    fn break_and_continue_emit_correct_depths() {
        let mut mb = ModuleBuilder::new("t");
        let mut f = FuncBuilder::new(&[], Some(ValType::I32));
        let i = f.local(ValType::I32);
        f.extend([
            while_(
                i32c(1),
                vec![
                    set(i, add(local(i), i32c(1))),
                    if_(gt_s(local(i), i32c(10)), vec![brk()]),
                    if_(eq(rem(local(i), i32c(2)), i32c(0)), vec![cont()]),
                ],
            ),
            ret(Some(local(i))),
        ]);
        let main = mb.add_func("main", f);
        mb.export_func(main, "main");
        mb.build().unwrap();
    }

    #[test]
    fn memory_and_data_segments() {
        let mut mb = ModuleBuilder::new("t");
        mb.memory(1, Some(4));
        mb.data(64, vec![1, 2, 3, 4]);
        let mut f = FuncBuilder::new(&[], Some(ValType::I32));
        f.push(ret(Some(load(Scalar::U8, i32c(64), 2))));
        let main = mb.add_func("main", f);
        mb.export_func(main, "main");
        let m = mb.build().unwrap();
        assert_eq!(m.data.len(), 1);
    }

    #[test]
    fn recursion_via_declare_define() {
        let mut mb = ModuleBuilder::new("t");
        let fact = mb.declare("fact", &[ValType::I32], Some(ValType::I32));
        let mut f = FuncBuilder::new(&[ValType::I32], Some(ValType::I32));
        let n = f.arg(0);
        f.push(if_else(
            le_s(local(n), i32c(1)),
            vec![ret(Some(i32c(1)))],
            vec![ret(Some(mul(
                local(n),
                call(fact, vec![sub(local(n), i32c(1))]),
            )))],
        ));
        mb.define(fact, f);
        mb.export_func(fact, "fact");
        mb.build().unwrap();
    }

    #[test]
    fn undefined_function_is_an_error() {
        let mut mb = ModuleBuilder::new("t");
        mb.declare("ghost", &[], None);
        assert!(matches!(mb.build(), Err(BuildError::UndefinedFunc(_))));
    }

    #[test]
    fn imports_then_funcs_index_space() {
        let mut mb = ModuleBuilder::new("t");
        let h = mb.import_func("env", "clock_ns", &[], Some(ValType::I64));
        let mut f = FuncBuilder::new(&[], Some(ValType::I64));
        f.push(ret(Some(call(h, vec![]))));
        let main = mb.add_func("main", f);
        assert_eq!(h.index(), 0);
        assert_eq!(main.index(), 1);
        mb.export_func(main, "main");
        mb.build().unwrap();
    }

    #[test]
    fn table_for_indirect_calls() {
        let mut mb = ModuleBuilder::new("t");
        let mut f1 = FuncBuilder::new(&[], Some(ValType::I32));
        f1.push(ret(Some(i32c(7))));
        let a = mb.add_func("a", f1);
        let mut f2 = FuncBuilder::new(&[], Some(ValType::I32));
        f2.push(ret(Some(i32c(9))));
        let b = mb.add_func("b", f2);
        mb.table(&[a, b]);
        mb.export_func(a, "a");
        let m = mb.build().unwrap();
        assert_eq!(m.elements[0].funcs, vec![a.index(), b.index()]);
    }

    #[test]
    #[should_panic(expected = "imports must be declared before local functions")]
    fn late_import_panics() {
        let mut mb = ModuleBuilder::new("t");
        let mut f = FuncBuilder::new(&[], None);
        f.push(ret(None));
        mb.add_func("main", f);
        mb.import_func("env", "late", &[], None);
    }
}
