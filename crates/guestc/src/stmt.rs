//! Statements of the guest DSL.

use crate::expr::{Expr, Local, Scalar};

/// One statement of the guest language.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `local = expr;`
    Set(Local, Expr),
    /// `global[idx] = expr;`
    SetGlobal(u32, Expr),
    /// `*(scalar*)(addr + offset) = value;`
    Store(Scalar, Expr, u32, Expr),
    /// `if (cond) { then } else { else }`
    If(Expr, Vec<Stmt>, Vec<Stmt>),
    /// `while (cond) { body }`
    While(Expr, Vec<Stmt>),
    /// Infinite loop; exit with [`Stmt::Break`].
    Loop(Vec<Stmt>),
    /// Break out of the innermost `while`/`loop`.
    Break,
    /// Continue to the condition check / head of the innermost loop.
    Continue,
    /// `return expr?;`
    Return(Option<Expr>),
    /// Evaluate for side effects; a non-void result is dropped.
    Exec(Expr),
    /// No-op.
    Nop,
    /// Trap unconditionally (`unreachable`).
    Unreachable,
    /// Statement grouping without any control-flow label.
    Seq(Vec<Stmt>),
}

/// Free-function constructors for statements.
pub mod helpers {
    use super::*;
    use crate::expr::helpers::{add, local};

    /// `l = e;`
    pub fn set(l: Local, e: Expr) -> Stmt {
        Stmt::Set(l, e)
    }
    /// `global[idx] = e;`
    pub fn set_global(idx: u32, e: Expr) -> Stmt {
        Stmt::SetGlobal(idx, e)
    }
    /// Store `value` at `addr` (+ constant `offset`).
    pub fn store(s: Scalar, addr: Expr, offset: u32, value: Expr) -> Stmt {
        Stmt::Store(s, addr, offset, value)
    }
    /// Store an `i32` at `addr`.
    pub fn store_i32(addr: Expr, value: Expr) -> Stmt {
        Stmt::Store(Scalar::I32, addr, 0, value)
    }
    /// Store an `f64` at `addr`.
    pub fn store_f64(addr: Expr, value: Expr) -> Stmt {
        Stmt::Store(Scalar::F64, addr, 0, value)
    }
    /// Store the low byte of an `i32` at `addr`.
    pub fn store_u8(addr: Expr, value: Expr) -> Stmt {
        Stmt::Store(Scalar::U8, addr, 0, value)
    }
    /// `if (cond) { then }`
    pub fn if_(cond: Expr, then: Vec<Stmt>) -> Stmt {
        Stmt::If(cond, then, Vec::new())
    }
    /// `if (cond) { then } else { els }`
    pub fn if_else(cond: Expr, then: Vec<Stmt>, els: Vec<Stmt>) -> Stmt {
        Stmt::If(cond, then, els)
    }
    /// `while (cond) { body }`
    pub fn while_(cond: Expr, body: Vec<Stmt>) -> Stmt {
        Stmt::While(cond, body)
    }
    /// `for (i = init; cond; i += step) { body }`
    ///
    /// `cond` is an arbitrary i32 expression re-evaluated each iteration; the
    /// induction variable is advanced by the constant `step` after the body.
    pub fn for_loop(i: Local, init: Expr, cond: Expr, step: i32, mut body: Vec<Stmt>) -> Stmt {
        let inc = set(i, add(local(i), Expr::ConstI32(step)));
        body.push(inc);
        Stmt::Seq(vec![set(i, init), Stmt::While(cond, body)])
    }
    /// `return e?;`
    pub fn ret(e: Option<Expr>) -> Stmt {
        Stmt::Return(e)
    }
    /// Evaluate for side effects.
    pub fn exec(e: Expr) -> Stmt {
        Stmt::Exec(e)
    }
    /// Break the innermost loop.
    pub fn brk() -> Stmt {
        Stmt::Break
    }
    /// Continue the innermost loop.
    pub fn cont() -> Stmt {
        Stmt::Continue
    }
}
