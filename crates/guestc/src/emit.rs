//! Lowering from the DSL's statement/expression trees to flat Wasm
//! instruction sequences.

use crate::expr::{BinOp, Cast, CmpOp, Expr, Scalar, UnOp};
use crate::stmt::Stmt;
use sledge_wasm::instr::{BlockType, Instr, MemArg};
use sledge_wasm::types::ValType;

/// What kind of branch target an open structured instruction provides.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Label {
    /// A `block` wrapped around a loop: `break` target.
    LoopExit,
    /// The `loop` instruction itself: `continue` target.
    LoopHead,
    /// An `if`/`else` arm or plain block: not a break/continue target.
    Plain,
}

/// The per-function emitter.
pub(crate) struct Emitter {
    out: Vec<Instr>,
    labels: Vec<Label>,
    result: Option<ValType>,
}

impl Emitter {
    pub(crate) fn new(result: Option<ValType>) -> Self {
        Emitter {
            out: Vec::new(),
            labels: Vec::new(),
            result,
        }
    }

    /// Emit a full function body (appends the final `end` and, if the
    /// function returns a value, a trapping fallback for control paths that
    /// reach the end without `return`).
    pub(crate) fn emit_body(mut self, stmts: &[Stmt]) -> Vec<Instr> {
        for s in stmts {
            self.stmt(s);
        }
        if self.result.is_some() {
            // A value-returning function must not fall off the end; mirror
            // C's undefined-return with an explicit trap.
            self.out.push(Instr::Unreachable);
        }
        self.out.push(Instr::End);
        self.out
    }

    fn branch_depth_to(&self, want: Label, what: &str) -> u32 {
        for (d, l) in self.labels.iter().rev().enumerate() {
            if *l == want {
                return d as u32;
            }
        }
        panic!("{what} outside of a loop");
    }

    fn stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::Set(l, e) => {
                assert_eq!(e.ty(), Some(l.ty), "set: type mismatch for local {}", l.idx);
                self.expr(e);
                self.out.push(Instr::LocalSet(l.idx));
            }
            Stmt::SetGlobal(g, e) => {
                assert!(e.ty().is_some(), "set_global: void expression");
                self.expr(e);
                self.out.push(Instr::GlobalSet(*g));
            }
            Stmt::Store(sc, addr, offset, value) => {
                assert_eq!(addr.ty(), Some(ValType::I32), "store address must be i32");
                assert_eq!(
                    value.ty(),
                    Some(sc.val_type()),
                    "store value type mismatch for {sc:?}"
                );
                self.expr(addr);
                self.expr(value);
                let m = MemArg {
                    align: 0,
                    offset: *offset,
                };
                self.out.push(match sc {
                    Scalar::I32 => Instr::I32Store(m),
                    Scalar::I64 => Instr::I64Store(m),
                    Scalar::F32 => Instr::F32Store(m),
                    Scalar::F64 => Instr::F64Store(m),
                    Scalar::U8 | Scalar::I8 => Instr::I32Store8(m),
                    Scalar::U16 | Scalar::I16 => Instr::I32Store16(m),
                });
            }
            Stmt::If(cond, then, els) => {
                assert_eq!(cond.ty(), Some(ValType::I32), "if condition must be i32");
                self.expr(cond);
                self.out.push(Instr::If(BlockType::Empty));
                self.labels.push(Label::Plain);
                for s in then {
                    self.stmt(s);
                }
                if !els.is_empty() {
                    self.out.push(Instr::Else);
                    for s in els {
                        self.stmt(s);
                    }
                }
                self.labels.pop();
                self.out.push(Instr::End);
            }
            Stmt::While(cond, body) => {
                assert_eq!(cond.ty(), Some(ValType::I32), "while condition must be i32");
                self.out.push(Instr::Block(BlockType::Empty));
                self.labels.push(Label::LoopExit);
                self.out.push(Instr::Loop(BlockType::Empty));
                self.labels.push(Label::LoopHead);
                // if (!cond) break;
                self.expr(cond);
                self.out.push(Instr::I32Eqz);
                self.out.push(Instr::BrIf(1));
                for s in body {
                    self.stmt(s);
                }
                self.out.push(Instr::Br(0)); // back to head
                self.labels.pop();
                self.out.push(Instr::End); // loop
                self.labels.pop();
                self.out.push(Instr::End); // block
            }
            Stmt::Loop(body) => {
                self.out.push(Instr::Block(BlockType::Empty));
                self.labels.push(Label::LoopExit);
                self.out.push(Instr::Loop(BlockType::Empty));
                self.labels.push(Label::LoopHead);
                for s in body {
                    self.stmt(s);
                }
                self.out.push(Instr::Br(0));
                self.labels.pop();
                self.out.push(Instr::End);
                self.labels.pop();
                self.out.push(Instr::End);
            }
            Stmt::Break => {
                let d = self.branch_depth_to(Label::LoopExit, "break");
                self.out.push(Instr::Br(d));
            }
            Stmt::Continue => {
                let d = self.branch_depth_to(Label::LoopHead, "continue");
                self.out.push(Instr::Br(d));
            }
            Stmt::Return(e) => {
                match (e, self.result) {
                    (Some(e), Some(r)) => {
                        assert_eq!(e.ty(), Some(r), "return type mismatch");
                        self.expr(e);
                    }
                    (None, None) => {}
                    (Some(_), None) => panic!("return with value in void function"),
                    (None, Some(_)) => panic!("return without value in non-void function"),
                }
                self.out.push(Instr::Return);
            }
            Stmt::Exec(e) => {
                let t = e.ty();
                self.expr(e);
                if t.is_some() {
                    self.out.push(Instr::Drop);
                }
            }
            Stmt::Nop => {}
            Stmt::Unreachable => self.out.push(Instr::Unreachable),
            Stmt::Seq(list) => {
                for s in list {
                    self.stmt(s);
                }
            }
        }
    }

    fn expr(&mut self, e: &Expr) {
        // Type-check eagerly so errors carry the offending subtree.
        let _ = e.ty();
        match e {
            Expr::ConstI32(v) => self.out.push(Instr::I32Const(*v)),
            Expr::ConstI64(v) => self.out.push(Instr::I64Const(*v)),
            Expr::ConstF32(v) => self.out.push(Instr::F32Const(*v)),
            Expr::ConstF64(v) => self.out.push(Instr::F64Const(*v)),
            Expr::Local(l) => self.out.push(Instr::LocalGet(l.idx)),
            Expr::GlobalGet(g, _) => self.out.push(Instr::GlobalGet(*g)),
            Expr::Bin(op, a, b) => {
                let t = a.ty().expect("checked");
                self.expr(a);
                self.expr(b);
                self.out.push(bin_instr(*op, t));
            }
            Expr::Cmp(op, a, b) => {
                let t = a.ty().expect("checked");
                self.expr(a);
                self.expr(b);
                self.out.push(cmp_instr(*op, t));
            }
            Expr::Un(op, a) => {
                let t = a.ty().expect("checked");
                self.expr(a);
                self.out.push(un_instr(*op, t));
            }
            Expr::Cast(c, a) => {
                self.expr(a);
                self.out.push(cast_instr(*c));
            }
            Expr::Load(sc, addr, offset) => {
                self.expr(addr);
                let m = MemArg {
                    align: 0,
                    offset: *offset,
                };
                self.out.push(match sc {
                    Scalar::I32 => Instr::I32Load(m),
                    Scalar::I64 => Instr::I64Load(m),
                    Scalar::F32 => Instr::F32Load(m),
                    Scalar::F64 => Instr::F64Load(m),
                    Scalar::U8 => Instr::I32Load8U(m),
                    Scalar::I8 => Instr::I32Load8S(m),
                    Scalar::U16 => Instr::I32Load16U(m),
                    Scalar::I16 => Instr::I32Load16S(m),
                });
            }
            Expr::Call(f, args) => {
                for a in args {
                    self.expr(a);
                }
                self.out.push(Instr::Call(f.idx));
            }
            Expr::CallIndirect(sig, index, args) => {
                for a in args {
                    self.expr(a);
                }
                self.expr(index);
                self.out.push(Instr::CallIndirect(sig.idx));
            }
            Expr::Select(c, a, b) => {
                self.expr(a);
                self.expr(b);
                self.expr(c);
                self.out.push(Instr::Select);
            }
            Expr::MemorySize => self.out.push(Instr::MemorySize),
            Expr::MemoryGrow(n) => {
                self.expr(n);
                self.out.push(Instr::MemoryGrow);
            }
            Expr::Tee(l, v) => {
                self.expr(v);
                self.out.push(Instr::LocalTee(l.idx));
            }
        }
    }
}

fn bin_instr(op: BinOp, t: ValType) -> Instr {
    use BinOp::*;
    use ValType::*;
    match (op, t) {
        (Add, I32) => Instr::I32Add,
        (Sub, I32) => Instr::I32Sub,
        (Mul, I32) => Instr::I32Mul,
        (DivS, I32) => Instr::I32DivS,
        (DivU, I32) => Instr::I32DivU,
        (RemS, I32) => Instr::I32RemS,
        (RemU, I32) => Instr::I32RemU,
        (And, I32) => Instr::I32And,
        (Or, I32) => Instr::I32Or,
        (Xor, I32) => Instr::I32Xor,
        (Shl, I32) => Instr::I32Shl,
        (ShrS, I32) => Instr::I32ShrS,
        (ShrU, I32) => Instr::I32ShrU,
        (Rotl, I32) => Instr::I32Rotl,
        (Rotr, I32) => Instr::I32Rotr,
        (Add, I64) => Instr::I64Add,
        (Sub, I64) => Instr::I64Sub,
        (Mul, I64) => Instr::I64Mul,
        (DivS, I64) => Instr::I64DivS,
        (DivU, I64) => Instr::I64DivU,
        (RemS, I64) => Instr::I64RemS,
        (RemU, I64) => Instr::I64RemU,
        (And, I64) => Instr::I64And,
        (Or, I64) => Instr::I64Or,
        (Xor, I64) => Instr::I64Xor,
        (Shl, I64) => Instr::I64Shl,
        (ShrS, I64) => Instr::I64ShrS,
        (ShrU, I64) => Instr::I64ShrU,
        (Rotl, I64) => Instr::I64Rotl,
        (Rotr, I64) => Instr::I64Rotr,
        (Add, F32) => Instr::F32Add,
        (Sub, F32) => Instr::F32Sub,
        (Mul, F32) => Instr::F32Mul,
        (DivS, F32) => Instr::F32Div,
        (Min, F32) => Instr::F32Min,
        (Max, F32) => Instr::F32Max,
        (Copysign, F32) => Instr::F32Copysign,
        (Add, F64) => Instr::F64Add,
        (Sub, F64) => Instr::F64Sub,
        (Mul, F64) => Instr::F64Mul,
        (DivS, F64) => Instr::F64Div,
        (Min, F64) => Instr::F64Min,
        (Max, F64) => Instr::F64Max,
        (Copysign, F64) => Instr::F64Copysign,
        (op, t) => panic!("binary operator {op:?} not defined for {t}"),
    }
}

fn cmp_instr(op: CmpOp, t: ValType) -> Instr {
    use CmpOp::*;
    use ValType::*;
    match (op, t) {
        (Eq, I32) => Instr::I32Eq,
        (Ne, I32) => Instr::I32Ne,
        (LtS, I32) => Instr::I32LtS,
        (LtU, I32) => Instr::I32LtU,
        (GtS, I32) => Instr::I32GtS,
        (GtU, I32) => Instr::I32GtU,
        (LeS, I32) => Instr::I32LeS,
        (LeU, I32) => Instr::I32LeU,
        (GeS, I32) => Instr::I32GeS,
        (GeU, I32) => Instr::I32GeU,
        (Eq, I64) => Instr::I64Eq,
        (Ne, I64) => Instr::I64Ne,
        (LtS, I64) => Instr::I64LtS,
        (LtU, I64) => Instr::I64LtU,
        (GtS, I64) => Instr::I64GtS,
        (GtU, I64) => Instr::I64GtU,
        (LeS, I64) => Instr::I64LeS,
        (LeU, I64) => Instr::I64LeU,
        (GeS, I64) => Instr::I64GeS,
        (GeU, I64) => Instr::I64GeU,
        (Eq, F32) => Instr::F32Eq,
        (Ne, F32) => Instr::F32Ne,
        (LtS | LtU, F32) => Instr::F32Lt,
        (GtS | GtU, F32) => Instr::F32Gt,
        (LeS | LeU, F32) => Instr::F32Le,
        (GeS | GeU, F32) => Instr::F32Ge,
        (Eq, F64) => Instr::F64Eq,
        (Ne, F64) => Instr::F64Ne,
        (LtS | LtU, F64) => Instr::F64Lt,
        (GtS | GtU, F64) => Instr::F64Gt,
        (LeS | LeU, F64) => Instr::F64Le,
        (GeS | GeU, F64) => Instr::F64Ge,
    }
}

fn un_instr(op: UnOp, t: ValType) -> Instr {
    use UnOp::*;
    use ValType::*;
    match (op, t) {
        (Eqz, I32) => Instr::I32Eqz,
        (Eqz, I64) => Instr::I64Eqz,
        (Clz, I32) => Instr::I32Clz,
        (Ctz, I32) => Instr::I32Ctz,
        (Popcnt, I32) => Instr::I32Popcnt,
        (Clz, I64) => Instr::I64Clz,
        (Ctz, I64) => Instr::I64Ctz,
        (Popcnt, I64) => Instr::I64Popcnt,
        (Neg, F32) => Instr::F32Neg,
        (Abs, F32) => Instr::F32Abs,
        (Sqrt, F32) => Instr::F32Sqrt,
        (Ceil, F32) => Instr::F32Ceil,
        (Floor, F32) => Instr::F32Floor,
        (Trunc, F32) => Instr::F32Trunc,
        (Nearest, F32) => Instr::F32Nearest,
        (Neg, F64) => Instr::F64Neg,
        (Abs, F64) => Instr::F64Abs,
        (Sqrt, F64) => Instr::F64Sqrt,
        (Ceil, F64) => Instr::F64Ceil,
        (Floor, F64) => Instr::F64Floor,
        (Trunc, F64) => Instr::F64Trunc,
        (Nearest, F64) => Instr::F64Nearest,
        (op, t) => panic!("unary operator {op:?} not defined for {t}"),
    }
}

fn cast_instr(c: Cast) -> Instr {
    use Cast::*;
    match c {
        I32ToI64S => Instr::I64ExtendI32S,
        I32ToI64U => Instr::I64ExtendI32U,
        I64ToI32 => Instr::I32WrapI64,
        I32ToF32S => Instr::F32ConvertI32S,
        I32ToF32U => Instr::F32ConvertI32U,
        I32ToF64S => Instr::F64ConvertI32S,
        I32ToF64U => Instr::F64ConvertI32U,
        I64ToF32S => Instr::F32ConvertI64S,
        I64ToF64S => Instr::F64ConvertI64S,
        I64ToF64U => Instr::F64ConvertI64U,
        F32ToF64 => Instr::F64PromoteF32,
        F64ToF32 => Instr::F32DemoteF64,
        F32ToI32S => Instr::I32TruncF32S,
        F32ToI32U => Instr::I32TruncF32U,
        F64ToI32S => Instr::I32TruncF64S,
        F64ToI32U => Instr::I32TruncF64U,
        F64ToI64S => Instr::I64TruncF64S,
        F64ToI64U => Instr::I64TruncF64U,
        F64BitsToI64 => Instr::I64ReinterpretF64,
        I64BitsToF64 => Instr::F64ReinterpretI64,
        F32BitsToI32 => Instr::I32ReinterpretF32,
        I32BitsToF32 => Instr::F32ReinterpretI32,
    }
}
