//! Emit every guest application (and optionally the PolyBench kernels) as
//! `.wasm` binaries on disk — the artifacts a tenant would upload to a
//! Sledge deployment — plus a ready-to-serve `sledged` JSON config.
//!
//! Usage: `genwasm <out-dir> [--polybench]`

use std::path::PathBuf;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let out_dir = PathBuf::from(args.get(1).map(String::as_str).unwrap_or("wasm-out"));
    let with_polybench = args.iter().any(|a| a == "--polybench");
    std::fs::create_dir_all(&out_dir)?;

    let mut modules_json = Vec::new();
    for app in sledge_apps::all_apps() {
        let module = (app.module)();
        let bytes = sledge_wasm::encode::encode_module(&module);
        let path = out_dir.join(format!("{}.wasm", app.name));
        std::fs::write(&path, &bytes)?;
        println!("{:<24} {:>8} bytes", path.display(), bytes.len());
        modules_json.push(format!(
            "    {{\"name\": \"{0}\", \"wasm\": \"{0}.wasm\"}}",
            app.name
        ));
    }
    if with_polybench {
        for k in sledge_apps::polybench::kernels() {
            let bytes = sledge_wasm::encode::encode_module(&(k.build)());
            let path = out_dir.join(format!("pb-{}.wasm", k.name));
            std::fs::write(&path, &bytes)?;
            println!("{:<24} {:>8} bytes", path.display(), bytes.len());
            modules_json.push(format!(
                "    {{\"name\": \"pb-{0}\", \"wasm\": \"pb-{0}.wasm\"}}",
                k.name
            ));
        }
    }

    let config = format!(
        "{{\n  \"workers\": 4,\n  \"quantum_us\": 5000,\n  \"bounds\": \"vm-guard\",\n  \
         \"tier\": \"aot-opt\",\n  \"modules\": [\n{}\n  ]\n}}\n",
        modules_json.join(",\n")
    );
    let cfg_path = out_dir.join("sledged.json");
    std::fs::write(&cfg_path, config)?;
    println!("wrote {}", cfg_path.display());
    println!("serve with: sledged {} 0.0.0.0:8080", cfg_path.display());
    Ok(())
}
