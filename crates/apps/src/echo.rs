//! The network-transfer function of Figure 7: receive a payload, copy it
//! through an intermediate buffer (the paper's function copies to a buffer
//! and writes it back out), and return it as the response.

use crate::abi::{import_env, write_response};
use sledge_guestc::dsl::*;
use sledge_guestc::Expr;
use sledge_guestc::{FuncBuilder, ModuleBuilder, Scalar};
use sledge_wasm::module::Module;
use sledge_wasm::types::ValType;

/// Offset of the receive buffer in guest memory (start of page 1).
const RX: i32 = 65536;

/// Build the echo/transfer guest. The module starts with two pages and
/// grows its linear memory to fit the payload (paper sweep: 1 KB – 1 MB) —
/// the way a real Wasm guest's allocator behaves, and what keeps small
/// requests on the cheap instantiation path.
pub fn module() -> Module {
    let mut mb = ModuleBuilder::new("echo");
    mb.memory(2, Some(128));
    let env = import_env(&mut mb);
    let req_len = env.request_len.expect("echo reads the request");
    let req_read = env.request_read.expect("echo reads the request");
    let mut f = FuncBuilder::new(&[], Some(ValType::I32));
    let n = f.local(ValType::I32);
    let i = f.local(ValType::I32);
    let copy = f.local(ValType::I32); // start of the copy buffer
    let need = f.local(ValType::I32); // pages required
    let mut body = vec![
        set(n, call(req_len, vec![])),
        // copy = RX + round_up(n, 64 KiB); grow to fit copy + n.
        set(
            copy,
            add(i32c(RX), and(add(local(n), i32c(65535)), i32c(!65535))),
        ),
        // +8 pads the final word-granularity copy; round up to whole pages.
        set(
            need,
            shr_u(add(add(local(copy), local(n)), i32c(8 + 65535)), i32c(16)),
        ),
        if_(
            gt_s(local(need), Expr::MemorySize),
            vec![exec(Expr::MemoryGrow(Box::new(sub(
                local(need),
                Expr::MemorySize,
            ))))],
        ),
        exec(call(req_read, vec![i32c(RX), local(n), i32c(0)])),
        // Copy word-at-a-time into the intermediate buffer (the guest-side
        // data handling the paper's function performs).
        for_loop(
            i,
            i32c(0),
            lt_s(local(i), local(n)),
            8,
            vec![store(
                Scalar::I64,
                add(local(copy), local(i)),
                0,
                load(Scalar::I64, add(i32c(RX), local(i)), 0),
            )],
        ),
        write_response(&env, local(copy), local(n)),
        ret(Some(i32c(0))),
    ];
    f.extend(body.drain(..));
    let main = mb.add_func("main", f);
    mb.export_func(main, "main");
    mb.build().expect("echo module")
}

/// Native reference: copy through a buffer, return.
pub fn native(body: &[u8]) -> Vec<u8> {
    let mut buf = vec![0u8; body.len()];
    buf.copy_from_slice(body);
    buf
}

/// Deterministic payload of `len` bytes.
pub fn payload(len: usize) -> Vec<u8> {
    (0..len).map(|i| (i * 31 + 7) as u8).collect()
}

/// A representative request body (10 KiB).
pub fn sample_input() -> Vec<u8> {
    payload(10 * 1024)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{run_guest, run_guest_all_configs};

    #[test]
    fn guest_matches_native_across_sizes() {
        let m = module();
        for len in [0usize, 1, 7, 8, 1024, 65_537] {
            let body = payload(len);
            let out = run_guest(&m, &body);
            assert_eq!(out, native(&body), "len={len}");
        }
    }

    #[test]
    fn all_configs_agree_on_10k() {
        let m = module();
        let body = payload(10 * 1024);
        let out = run_guest_all_configs(&m, &body);
        assert_eq!(out, native(&body));
    }
}
