//! CIFAR10: fixed-weight integer CNN inference, the reproduction of the
//! paper's CMSIS-NN CIFAR-10 workload.
//!
//! Architecture (scaled to interpreter-friendly size while keeping the
//! conv→pool→conv→pool→fc structure and integer arithmetic of CMSIS-NN):
//!
//! * input: 16x16 RGB image (768 bytes)
//! * conv1: 3→8 channels, 3x3, pad 1, ReLU, then 2x2 max-pool → 8x8x8
//! * conv2: 8→16 channels, 3x3, pad 1, ReLU, then 2x2 max-pool → 4x4x16
//! * fc: 256 → 10 logits, argmax
//!
//! Weights are deterministic pseudo-random int8 (both implementations use
//! the identical table, baked into the guest as a data segment). All
//! arithmetic is exact integer math, so guest and native outputs are
//! bit-identical.
//!
//! The response is one ASCII digit: the predicted class (the paper's
//! function "writes the number associated with the resulting class").

use crate::abi::{import_env, read_request, write_response};
use sledge_guestc::dsl::*;
use sledge_guestc::{FuncBuilder, Local, ModuleBuilder, Scalar};
use sledge_wasm::module::Module;
use sledge_wasm::types::ValType;

/// Input image side.
pub const IN: usize = 16;
/// conv1 output channels.
const C1: usize = 8;
/// conv2 output channels.
const C2: usize = 16;
/// Classes.
pub const CLASSES: usize = 10;
/// Right-shift used to requantize accumulators.
const SHIFT: i32 = 5;

// Weight table sizes.
const W1_LEN: usize = C1 * 3 * 3 * 3; // [oc][ic][ky][kx]
const B1_LEN: usize = C1;
const W2_LEN: usize = C2 * C1 * 3 * 3;
const B2_LEN: usize = C2;
const FC_LEN: usize = CLASSES * C2 * 4 * 4;
const BFC_LEN: usize = CLASSES;

/// Deterministic int8 weights shared by guest and native implementations.
pub struct Weights {
    pub w1: Vec<i8>,
    pub b1: Vec<i32>,
    pub w2: Vec<i8>,
    pub b2: Vec<i32>,
    pub fc: Vec<i8>,
    pub bfc: Vec<i32>,
}

/// Generate the fixed weight set.
pub fn weights() -> Weights {
    let mut state = 0xC1FA10u32 ^ 0xA5A5_5A5A;
    let mut next_i8 = move || {
        state ^= state << 13;
        state ^= state >> 17;
        state ^= state << 5;
        (state & 0xFF) as u8 as i8 >> 1 // range ~[-64, 63]
    };
    let mut take = |n: usize| -> Vec<i8> { (0..n).map(|_| next_i8()).collect() };
    let w1 = take(W1_LEN);
    let b1: Vec<i32> = take(B1_LEN).iter().map(|v| *v as i32 * 4).collect();
    let w2 = take(W2_LEN);
    let b2: Vec<i32> = take(B2_LEN).iter().map(|v| *v as i32 * 4).collect();
    let fc = take(FC_LEN);
    let bfc: Vec<i32> = take(BFC_LEN).iter().map(|v| *v as i32 * 4).collect();
    Weights {
        w1,
        b1,
        w2,
        b2,
        fc,
        bfc,
    }
}

// Guest memory layout.
const WSEG: i32 = 64; // all weights, contiguous
const RX: i32 = 16384; // input image (u8, [y][x][c])
const ACT1: i32 = 20480; // conv1 output i32 [c][y][x] 8x16x16
const POOL1: i32 = ACT1 + 4 * (C1 * IN * IN) as i32; // 8x8x8
const ACT2: i32 = POOL1 + 4 * (C1 * 8 * 8) as i32; // 16x8x8
const POOL2: i32 = ACT2 + 4 * (C2 * 8 * 8) as i32; // 16x4x4
const LOGITS: i32 = POOL2 + 4 * (C2 * 4 * 4) as i32;
const OUT: i32 = LOGITS + 4 * CLASSES as i32;

fn wseg_bytes(w: &Weights) -> (Vec<u8>, [i32; 6]) {
    // Layout: w1 | w2 | fc | b1 | b2 | bfc (biases as i32 LE).
    let mut bytes = Vec::new();
    let w1_off = WSEG;
    bytes.extend(w.w1.iter().map(|v| *v as u8));
    let w2_off = WSEG + bytes.len() as i32;
    bytes.extend(w.w2.iter().map(|v| *v as u8));
    let fc_off = WSEG + bytes.len() as i32;
    bytes.extend(w.fc.iter().map(|v| *v as u8));
    let b1_off = WSEG + bytes.len() as i32;
    for v in &w.b1 {
        bytes.extend_from_slice(&v.to_le_bytes());
    }
    let b2_off = WSEG + bytes.len() as i32;
    for v in &w.b2 {
        bytes.extend_from_slice(&v.to_le_bytes());
    }
    let bfc_off = WSEG + bytes.len() as i32;
    for v in &w.bfc {
        bytes.extend_from_slice(&v.to_le_bytes());
    }
    (bytes, [w1_off, w2_off, fc_off, b1_off, b2_off, bfc_off])
}

/// Build the CNN guest module.
pub fn module() -> Module {
    let mut mb = ModuleBuilder::new("cifar10");
    mb.memory(4, Some(8));
    let env = import_env(&mut mb);
    let (bytes, [w1o, w2o, fco, b1o, b2o, bfco]) = wseg_bytes(&weights());
    mb.data(WSEG as u32, bytes);

    use ValType::I32;

    // conv3x3(in_base, out_base, in_ch, out_ch, size, w_base, b_base):
    // input  i32 planes [ic][y][x] at in_base (or u8 interleaved for layer 1 — handled
    // by a separate first-layer function below),
    // output i32 planes [oc][y][x], ReLU + >>SHIFT.
    let conv = {
        let mut f = FuncBuilder::new(&[I32; 7], None);
        let (inb, outb) = (f.arg(0), f.arg(1));
        let (ic_n, oc_n, size) = (f.arg(2), f.arg(3), f.arg(4));
        let (wb, bb) = (f.arg(5), f.arg(6));
        let oc = f.local(I32);
        let y = f.local(I32);
        let x = f.local(I32);
        let ic = f.local(I32);
        let ky = f.local(I32);
        let kx = f.local(I32);
        let acc = f.local(I32);
        let iy = f.local(I32);
        let ix = f.local(I32);
        let widx = f.local(I32);

        let in_at = |icv: Local, iyv: Local, ixv: Local| {
            load(
                Scalar::I32,
                add(
                    local(inb),
                    mul(
                        add(
                            mul(add(mul(local(icv), local(size)), local(iyv)), local(size)),
                            local(ixv),
                        ),
                        i32c(4),
                    ),
                ),
                0,
            )
        };

        f.push(for_loop(
            oc,
            i32c(0),
            lt_s(local(oc), local(oc_n)),
            1,
            vec![for_loop(
                y,
                i32c(0),
                lt_s(local(y), local(size)),
                1,
                vec![for_loop(
                    x,
                    i32c(0),
                    lt_s(local(x), local(size)),
                    1,
                    vec![
                        set(
                            acc,
                            load(Scalar::I32, add(local(bb), mul(local(oc), i32c(4))), 0),
                        ),
                        for_loop(
                            ic,
                            i32c(0),
                            lt_s(local(ic), local(ic_n)),
                            1,
                            vec![for_loop(
                                ky,
                                i32c(0),
                                lt_s(local(ky), i32c(3)),
                                1,
                                vec![
                                    set(iy, sub(add(local(y), local(ky)), i32c(1))),
                                    if_(
                                        and(ge_s(local(iy), i32c(0)), lt_s(local(iy), local(size))),
                                        vec![for_loop(
                                            kx,
                                            i32c(0),
                                            lt_s(local(kx), i32c(3)),
                                            1,
                                            vec![
                                                set(ix, sub(add(local(x), local(kx)), i32c(1))),
                                                if_(
                                                    and(
                                                        ge_s(local(ix), i32c(0)),
                                                        lt_s(local(ix), local(size)),
                                                    ),
                                                    vec![
                                                        // w[oc][ic][ky][kx]
                                                        set(
                                                            widx,
                                                            add(
                                                                mul(
                                                                    add(
                                                                        mul(
                                                                            add(
                                                                                mul(
                                                                                    local(oc),
                                                                                    local(ic_n),
                                                                                ),
                                                                                local(ic),
                                                                            ),
                                                                            i32c(3),
                                                                        ),
                                                                        local(ky),
                                                                    ),
                                                                    i32c(3),
                                                                ),
                                                                local(kx),
                                                            ),
                                                        ),
                                                        set(
                                                            acc,
                                                            add(
                                                                local(acc),
                                                                mul(
                                                                    in_at(ic, iy, ix),
                                                                    load(
                                                                        Scalar::I8,
                                                                        add(local(wb), local(widx)),
                                                                        0,
                                                                    ),
                                                                ),
                                                            ),
                                                        ),
                                                    ],
                                                ),
                                            ],
                                        )],
                                    ),
                                ],
                            )],
                        ),
                        // ReLU + requantize.
                        set(acc, shr_s(local(acc), i32c(SHIFT))),
                        set(acc, select(gt_s(local(acc), i32c(0)), local(acc), i32c(0))),
                        store(
                            Scalar::I32,
                            add(
                                local(outb),
                                mul(
                                    add(
                                        mul(
                                            add(mul(local(oc), local(size)), local(y)),
                                            local(size),
                                        ),
                                        local(x),
                                    ),
                                    i32c(4),
                                ),
                            ),
                            0,
                            local(acc),
                        ),
                    ],
                )],
            )],
        ));
        mb.add_func("conv", f)
    };

    // conv_in(out_base, w_base, b_base): first layer over the u8 interleaved
    // input image [y][x][c] at RX, 3 input channels, IN x IN.
    let conv_in = {
        let mut f = FuncBuilder::new(&[I32; 3], None);
        let (outb, wb, bb) = (f.arg(0), f.arg(1), f.arg(2));
        let oc = f.local(I32);
        let y = f.local(I32);
        let x = f.local(I32);
        let ic = f.local(I32);
        let ky = f.local(I32);
        let kx = f.local(I32);
        let acc = f.local(I32);
        let iy = f.local(I32);
        let ix = f.local(I32);
        let n = IN as i32;
        f.push(for_loop(oc, i32c(0), lt_s(local(oc), i32c(C1 as i32)), 1, vec![
            for_loop(y, i32c(0), lt_s(local(y), i32c(n)), 1, vec![
                for_loop(x, i32c(0), lt_s(local(x), i32c(n)), 1, vec![
                    set(acc, load(Scalar::I32, add(local(bb), mul(local(oc), i32c(4))), 0)),
                    for_loop(ic, i32c(0), lt_s(local(ic), i32c(3)), 1, vec![
                        for_loop(ky, i32c(0), lt_s(local(ky), i32c(3)), 1, vec![
                            set(iy, sub(add(local(y), local(ky)), i32c(1))),
                            if_(and(ge_s(local(iy), i32c(0)), lt_s(local(iy), i32c(n))), vec![
                                for_loop(kx, i32c(0), lt_s(local(kx), i32c(3)), 1, vec![
                                    set(ix, sub(add(local(x), local(kx)), i32c(1))),
                                    if_(and(ge_s(local(ix), i32c(0)), lt_s(local(ix), i32c(n))), vec![
                                        set(acc, add(local(acc), mul(
                                            // image[y][x][c], centered to [-128, 127]
                                            sub(load(Scalar::U8,
                                                add(i32c(RX), add(mul(add(mul(local(iy), i32c(n)), local(ix)), i32c(3)), local(ic))), 0),
                                                i32c(128)),
                                            load(Scalar::I8, add(local(wb),
                                                add(mul(add(mul(add(mul(local(oc), i32c(3)), local(ic)), i32c(3)), local(ky)), i32c(3)), local(kx))), 0),
                                        ))),
                                    ]),
                                ]),
                            ]),
                        ]),
                    ]),
                    set(acc, shr_s(local(acc), i32c(SHIFT))),
                    set(acc, select(gt_s(local(acc), i32c(0)), local(acc), i32c(0))),
                    store(Scalar::I32,
                        add(local(outb), mul(add(mul(add(mul(local(oc), i32c(n)), local(y)), i32c(n)), local(x)), i32c(4))),
                        0, local(acc)),
                ]),
            ]),
        ]));
        mb.add_func("conv_in", f)
    };

    // pool2(in_base, out_base, ch, size): 2x2 max pool, i32 planes.
    let pool = {
        let mut f = FuncBuilder::new(&[I32; 4], None);
        let (inb, outb, ch, size) = (f.arg(0), f.arg(1), f.arg(2), f.arg(3));
        let c = f.local(I32);
        let y = f.local(I32);
        let x = f.local(I32);
        let m = f.local(I32);
        let v = f.local(I32);
        let half = f.local(I32);
        let dy = f.local(I32);
        let dx = f.local(I32);
        // input[c][yy][xx] where yy = 2y+dy, xx = 2x+dx.
        let in_at = load(
            Scalar::I32,
            add(
                local(inb),
                mul(
                    add(
                        mul(
                            add(
                                mul(local(c), local(size)),
                                add(mul(local(y), i32c(2)), local(dy)),
                            ),
                            local(size),
                        ),
                        add(mul(local(x), i32c(2)), local(dx)),
                    ),
                    i32c(4),
                ),
            ),
            0,
        );
        f.extend([
            set(half, div(local(size), i32c(2))),
            for_loop(
                c,
                i32c(0),
                lt_s(local(c), local(ch)),
                1,
                vec![for_loop(
                    y,
                    i32c(0),
                    lt_s(local(y), local(half)),
                    1,
                    vec![for_loop(
                        x,
                        i32c(0),
                        lt_s(local(x), local(half)),
                        1,
                        vec![
                            set(m, i32c(i32::MIN)),
                            for_loop(
                                dy,
                                i32c(0),
                                lt_s(local(dy), i32c(2)),
                                1,
                                vec![for_loop(
                                    dx,
                                    i32c(0),
                                    lt_s(local(dx), i32c(2)),
                                    1,
                                    vec![
                                        set(v, in_at.clone()),
                                        set(
                                            m,
                                            select(gt_s(local(v), local(m)), local(v), local(m)),
                                        ),
                                    ],
                                )],
                            ),
                            store(
                                Scalar::I32,
                                add(
                                    local(outb),
                                    mul(
                                        add(
                                            mul(
                                                add(mul(local(c), local(half)), local(y)),
                                                local(half),
                                            ),
                                            local(x),
                                        ),
                                        i32c(4),
                                    ),
                                ),
                                0,
                                local(m),
                            ),
                        ],
                    )],
                )],
            ),
        ]);
        mb.add_func("pool", f)
    };

    let nn = IN as i32;
    let mut f = FuncBuilder::new(&[], Some(I32));
    let len = f.local(I32);
    let i = f.local(I32);
    let j = f.local(I32);
    let acc = f.local(I32);
    let best = f.local(I32);
    let best_i = f.local(I32);

    let mut body = read_request(&env, RX, len);
    body.extend([
        exec(call(conv_in, vec![i32c(ACT1), i32c(w1o), i32c(b1o)])),
        exec(call(
            pool,
            vec![i32c(ACT1), i32c(POOL1), i32c(C1 as i32), i32c(nn)],
        )),
        exec(call(
            conv,
            vec![
                i32c(POOL1),
                i32c(ACT2),
                i32c(C1 as i32),
                i32c(C2 as i32),
                i32c(nn / 2),
                i32c(w2o),
                i32c(b2o),
            ],
        )),
        exec(call(
            pool,
            vec![i32c(ACT2), i32c(POOL2), i32c(C2 as i32), i32c(nn / 2)],
        )),
        // Fully connected: logits[k] = bfc[k] + Σ fc[k][i] * pool2[i].
        for_loop(
            i,
            i32c(0),
            lt_s(local(i), i32c(CLASSES as i32)),
            1,
            vec![
                set(
                    acc,
                    load(Scalar::I32, add(i32c(bfco), mul(local(i), i32c(4))), 0),
                ),
                for_loop(
                    j,
                    i32c(0),
                    lt_s(local(j), i32c((C2 * 4 * 4) as i32)),
                    1,
                    vec![set(
                        acc,
                        add(
                            local(acc),
                            mul(
                                load(Scalar::I32, add(i32c(POOL2), mul(local(j), i32c(4))), 0),
                                load(
                                    Scalar::I8,
                                    add(
                                        i32c(fco),
                                        add(mul(local(i), i32c((C2 * 4 * 4) as i32)), local(j)),
                                    ),
                                    0,
                                ),
                            ),
                        ),
                    )],
                ),
                store(
                    Scalar::I32,
                    add(i32c(LOGITS), mul(local(i), i32c(4))),
                    0,
                    local(acc),
                ),
            ],
        ),
        // Argmax.
        set(best, i32c(i32::MIN)),
        set(best_i, i32c(0)),
        for_loop(
            i,
            i32c(0),
            lt_s(local(i), i32c(CLASSES as i32)),
            1,
            vec![
                set(
                    acc,
                    load(Scalar::I32, add(i32c(LOGITS), mul(local(i), i32c(4))), 0),
                ),
                if_(
                    gt_s(local(acc), local(best)),
                    vec![set(best, local(acc)), set(best_i, local(i))],
                ),
            ],
        ),
        store(
            Scalar::U8,
            i32c(OUT),
            0,
            add(local(best_i), i32c('0' as i32)),
        ),
        write_response(&env, i32c(OUT), i32c(1)),
        ret(Some(i32c(0))),
    ]);
    f.extend(body);
    let main = mb.add_func("main", f);
    mb.export_func(main, "main");
    mb.build().expect("cifar10 module")
}

// ------------------------------------------------------------------ native

/// Native reference inference; identical integer arithmetic.
pub fn native(body: &[u8]) -> Vec<u8> {
    let w = weights();
    let img = |y: usize, x: usize, c: usize| -> i32 {
        body.get((y * IN + x) * 3 + c).copied().unwrap_or(0) as i32 - 128
    };

    // conv1 over the interleaved image.
    let mut act1 = vec![0i32; C1 * IN * IN];
    for oc in 0..C1 {
        for y in 0..IN {
            for x in 0..IN {
                let mut acc = w.b1[oc];
                for ic in 0..3 {
                    for ky in 0..3 {
                        let iy = y as i32 + ky as i32 - 1;
                        if iy < 0 || iy >= IN as i32 {
                            continue;
                        }
                        for kx in 0..3 {
                            let ix = x as i32 + kx as i32 - 1;
                            if ix < 0 || ix >= IN as i32 {
                                continue;
                            }
                            acc += img(iy as usize, ix as usize, ic)
                                * w.w1[((oc * 3 + ic) * 3 + ky) * 3 + kx] as i32;
                        }
                    }
                }
                acc >>= SHIFT;
                act1[(oc * IN + y) * IN + x] = acc.max(0);
            }
        }
    }
    let pool1 = pool2_native(&act1, C1, IN);
    let act2 = conv_native(&pool1, C1, C2, IN / 2, &w.w2, &w.b2);
    let pool2 = pool2_native(&act2, C2, IN / 2);
    // FC.
    let mut best = i32::MIN;
    let mut best_i = 0usize;
    for k in 0..CLASSES {
        let mut acc = w.bfc[k];
        for (j, p) in pool2.iter().enumerate() {
            acc += p * w.fc[k * pool2.len() + j] as i32;
        }
        if acc > best {
            best = acc;
            best_i = k;
        }
    }
    vec![b'0' + best_i as u8]
}

fn conv_native(
    input: &[i32],
    ic_n: usize,
    oc_n: usize,
    size: usize,
    wt: &[i8],
    bias: &[i32],
) -> Vec<i32> {
    let mut out = vec![0i32; oc_n * size * size];
    for oc in 0..oc_n {
        for y in 0..size {
            for x in 0..size {
                let mut acc = bias[oc];
                for ic in 0..ic_n {
                    for ky in 0..3 {
                        let iy = y as i32 + ky as i32 - 1;
                        if iy < 0 || iy >= size as i32 {
                            continue;
                        }
                        for kx in 0..3 {
                            let ix = x as i32 + kx as i32 - 1;
                            if ix < 0 || ix >= size as i32 {
                                continue;
                            }
                            acc += input[(ic * size + iy as usize) * size + ix as usize]
                                * wt[((oc * ic_n + ic) * 3 + ky) * 3 + kx] as i32;
                        }
                    }
                }
                acc >>= SHIFT;
                out[(oc * size + y) * size + x] = acc.max(0);
            }
        }
    }
    out
}

fn pool2_native(input: &[i32], ch: usize, size: usize) -> Vec<i32> {
    let half = size / 2;
    let mut out = vec![0i32; ch * half * half];
    for c in 0..ch {
        for y in 0..half {
            for x in 0..half {
                let mut m = i32::MIN;
                for dy in 0..2 {
                    for dx in 0..2 {
                        let v = input[(c * size + y * 2 + dy) * size + x * 2 + dx];
                        m = m.max(v);
                    }
                }
                out[(c * half + y) * half + x] = m;
            }
        }
    }
    out
}

/// A deterministic synthetic "airplane-ish" test image: sky gradient with a
/// bright fuselage band.
pub fn sample_input() -> Vec<u8> {
    let mut img = vec![0u8; IN * IN * 3];
    for y in 0..IN {
        for x in 0..IN {
            let sky = 120 + (y * 6) as i32;
            let body = if (6..=9).contains(&y) && (2..=13).contains(&x) {
                90
            } else {
                0
            };
            let px = &mut img[(y * IN + x) * 3..(y * IN + x) * 3 + 3];
            px[0] = (sky / 2 + body).clamp(0, 255) as u8;
            px[1] = (sky / 2 + body + 10).clamp(0, 255) as u8;
            px[2] = (sky + body).clamp(0, 255) as u8;
        }
    }
    img
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{run_guest, run_guest_all_configs};

    #[test]
    fn guest_matches_native() {
        let m = module();
        let img = sample_input();
        let got = run_guest(&m, &img);
        let want = native(&img);
        assert_eq!(got, want);
        assert!(got[0].is_ascii_digit());
    }

    #[test]
    fn all_configs_agree() {
        let m = module();
        let img = sample_input();
        let out = run_guest_all_configs(&m, &img);
        assert_eq!(out, native(&img));
    }

    #[test]
    fn different_images_can_classify_differently() {
        // Not a accuracy test (weights are random); just exercise multiple
        // inputs and check determinism.
        let m = module();
        let a = sample_input();
        let mut b = sample_input();
        for p in b.iter_mut() {
            *p = p.wrapping_mul(3).wrapping_add(17);
        }
        assert_eq!(run_guest(&m, &a), native(&a));
        assert_eq!(run_guest(&m, &b), native(&b));
    }
}
