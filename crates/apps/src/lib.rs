//! The guest applications evaluated in the Sledge paper, each implemented
//! twice — once in the `sledge-guestc` DSL (compiled to Wasm and run in a
//! sandbox) and once in plain Rust ("native", what a Nuclio shell function
//! executes) — plus the full PolyBench/C kernel suite used for Figure 5 and
//! Table 1.
//!
//! The two implementations of every workload are cross-validated
//! byte-for-byte in this crate's tests, which is the correctness backbone of
//! the whole reproduction: the engine, the DSL, and the native baselines
//! must all agree.
//!
//! Applications (paper §5.2):
//!
//! | module | paper workload | class |
//! |---|---|---|
//! | [`ping`] | ping function (Fig. 6) | no-op |
//! | [`echo`] | network transfer (Fig. 7) | memory copy |
//! | [`gps_ekf`] | TinyEKF GPS (Fig. 8, Tables 2–3) | small dense linear algebra |
//! | [`gocr`] | GOCR (Fig. 8, Table 2) | bitmap template matching |
//! | [`cifar10`] | CMSIS-NN CIFAR-10 (Fig. 8, Table 2) | int8 CNN inference |
//! | [`resize`] | SOD RESIZE (Fig. 8, Table 2) | image box filter |
//! | [`lpd`] | SOD license-plate detection (Fig. 8, Table 2) | Sobel + window scan |
//!
//! # Examples
//!
//! ```
//! use sledge_apps::{all_apps, AppSpec};
//!
//! for app in all_apps() {
//!     let module = (app.module)();
//!     assert!(module.exported_func("main").is_some(), "{}", app.name);
//!     let input = (app.sample_input)();
//!     let out = (app.native)(&input);
//!     assert!(!out.is_empty() || app.name == "ping" && out.is_empty());
//! }
//! ```

// The kernels transcribe their C reference implementations (PolyBench,
// TinyEKF, GOCR, SOD) loop-for-loop so the guest and native twins stay
// visually diffable against the originals; C-style indexing and wide helper
// signatures are kept over iterator rewrites.
#![allow(clippy::too_many_arguments)]
#![allow(clippy::needless_range_loop)]
#![allow(clippy::assign_op_pattern)]

pub mod abi;
pub mod cifar10;
pub mod echo;
pub mod gocr;
pub mod gps_ekf;
pub mod lpd;
pub mod ping;
pub mod polybench;
pub mod resize;
pub mod testutil;

use sledge_wasm::module::Module;

/// One evaluated application: guest builder, native twin, sample input.
#[derive(Clone, Copy)]
pub struct AppSpec {
    /// Function name (also the runtime registration name).
    pub name: &'static str,
    /// Build the guest module.
    pub module: fn() -> Module,
    /// Native reference implementation (body → response).
    pub native: fn(&[u8]) -> Vec<u8>,
    /// A representative request body.
    pub sample_input: fn() -> Vec<u8>,
}

impl std::fmt::Debug for AppSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AppSpec").field("name", &self.name).finish()
    }
}

/// The real-world application set of Figure 8 / Table 2, in the paper's
/// order (by increasing computational weight).
pub fn real_world_apps() -> Vec<AppSpec> {
    vec![
        AppSpec {
            name: "gps_ekf",
            module: gps_ekf::module,
            native: gps_ekf::native,
            sample_input: gps_ekf::sample_input,
        },
        AppSpec {
            name: "gocr",
            module: gocr::module,
            native: gocr::native,
            sample_input: gocr::sample_input,
        },
        AppSpec {
            name: "cifar10",
            module: cifar10::module,
            native: cifar10::native,
            sample_input: cifar10::sample_input,
        },
        AppSpec {
            name: "resize",
            module: resize::module,
            native: resize::native,
            sample_input: resize::sample_input,
        },
        AppSpec {
            name: "lpd",
            module: lpd::module,
            native: lpd::native,
            sample_input: lpd::sample_input,
        },
    ]
}

/// All applications, including ping and echo.
pub fn all_apps() -> Vec<AppSpec> {
    let mut v = vec![
        AppSpec {
            name: "ping",
            module: ping::module,
            native: ping::native,
            sample_input: ping::sample_input,
        },
        AppSpec {
            name: "echo",
            module: echo::module,
            native: echo::native,
            sample_input: echo::sample_input,
        },
    ];
    v.extend(real_world_apps());
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::run_guest;

    #[test]
    fn every_app_cross_validates_on_sample_input() {
        for app in all_apps() {
            let module = (app.module)();
            let input = (app.sample_input)();
            let guest_out = run_guest(&module, &input);
            let native_out = (app.native)(&input);
            assert_eq!(
                guest_out, native_out,
                "guest and native disagree for {}",
                app.name
            );
        }
    }

    #[test]
    fn app_wasm_binaries_are_compact() {
        // §5.1: AoT shared objects are ~100 KB; our uploaded .wasm binaries
        // should be of that order, not megabytes.
        for app in all_apps() {
            let bytes = sledge_wasm::encode::encode_module(&(app.module)());
            assert!(
                bytes.len() < 192 * 1024,
                "{} wasm is {} bytes",
                app.name,
                bytes.len()
            );
        }
    }
}
