//! Test support: run a guest module to completion with an in-memory host
//! implementing the standard `env` ABI (request/response buffers).
//!
//! Mirrors `sledge_core::SandboxHost` without pulling the runtime crate into
//! this one (the dependency goes the other way).

use awsm::{
    translate, BoundsStrategy, EngineConfig, Host, HostImport, HostOutcome, Instance, LinearMemory,
    StepResult, Tier, Trap,
};
use sledge_wasm::module::Module;
use std::sync::Arc;
use std::time::Instant;

/// In-memory host for tests and native-vs-guest cross-validation.
#[derive(Debug)]
pub struct BufferHost {
    /// Request body.
    pub request: Vec<u8>,
    /// Accumulated response.
    pub response: Vec<u8>,
    epoch: Instant,
}

impl BufferHost {
    /// Host with the given request body.
    pub fn new(request: impl Into<Vec<u8>>) -> Self {
        BufferHost {
            request: request.into(),
            response: Vec::new(),
            epoch: Instant::now(),
        }
    }
}

impl Host for BufferHost {
    fn call(
        &mut self,
        _idx: u32,
        import: &HostImport,
        args: &[u64],
        memory: &mut LinearMemory,
    ) -> HostOutcome {
        match import.name.as_str() {
            "request_len" => HostOutcome::Value(self.request.len() as u64),
            "request_read" => {
                let dst = args[0] as u32;
                let len = args[1] as u32 as usize;
                let off = args[2] as u32 as usize;
                if off >= self.request.len() {
                    return HostOutcome::Value(0);
                }
                let n = len.min(self.request.len() - off);
                match memory.write_bytes(dst, &self.request[off..off + n]) {
                    Ok(()) => HostOutcome::Value(n as u64),
                    Err(t) => HostOutcome::Trap(t),
                }
            }
            "response_write" => {
                let src = args[0] as u32;
                let len = args[1] as u32;
                match memory.read_bytes(src, len) {
                    Ok(b) => {
                        self.response.extend_from_slice(b);
                        HostOutcome::Value(len as u64)
                    }
                    Err(t) => HostOutcome::Trap(t),
                }
            }
            "clock_ns" => HostOutcome::Value(self.epoch.elapsed().as_nanos() as u64),
            // In the buffer host, emulated I/O completes immediately.
            "io_delay" => HostOutcome::Value(0),
            _ => HostOutcome::Trap(Trap::Unreachable),
        }
    }
}

/// Run a guest's `main` export to completion with the given request body
/// and return the response it wrote, under a specific configuration.
///
/// # Panics
///
/// Panics on translation errors or guest traps (tests want loud failures).
pub fn run_guest_config(
    module: &Module,
    body: &[u8],
    tier: Tier,
    bounds: BoundsStrategy,
) -> Vec<u8> {
    let cm = Arc::new(translate(module, tier).expect("translate"));
    let mut inst = Instance::new(
        cm,
        EngineConfig {
            bounds,
            tier,
            ..Default::default()
        },
    )
    .expect("instantiate");
    let mut host = BufferHost::new(body);
    inst.invoke_export("main", &[]).expect("invoke main");
    loop {
        match inst.run(&mut host, u64::MAX) {
            StepResult::Complete(_) => return host.response,
            StepResult::OutOfFuel | StepResult::Preempted | StepResult::Blocked => continue,
            StepResult::Trapped(t) => panic!("guest trapped: {t}"),
        }
    }
}

/// Run a guest under the default configuration (optimized tier, guard-region
/// bounds — "Sledge+aWsm").
pub fn run_guest(module: &Module, body: &[u8]) -> Vec<u8> {
    run_guest_config(module, body, Tier::Optimized, BoundsStrategy::GuardRegion)
}

/// Run under every tier × bounds combination and assert all outputs equal;
/// returns the common output.
pub fn run_guest_all_configs(module: &Module, body: &[u8]) -> Vec<u8> {
    let reference = run_guest(module, body);
    for (tier, bounds) in [
        (Tier::Optimized, BoundsStrategy::Software),
        (Tier::Optimized, BoundsStrategy::MpxEmulated),
        (Tier::Optimized, BoundsStrategy::None),
        (Tier::Optimized, BoundsStrategy::Static),
        (Tier::Naive, BoundsStrategy::GuardRegion),
        (Tier::Naive, BoundsStrategy::Software),
        (Tier::Naive, BoundsStrategy::Static),
    ] {
        let out = run_guest_config(module, body, tier, bounds);
        assert_eq!(out, reference, "output differs under {tier:?}/{bounds:?}");
    }
    reference
}
