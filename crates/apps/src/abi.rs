//! The guest-side view of the Sledge host ABI, plus DSL helpers shared by
//! all applications.

use sledge_guestc::dsl::*;
use sledge_guestc::{Expr, FnRef, Local, ModuleBuilder, Scalar, Stmt};
use sledge_wasm::types::ValType;

/// Handles to the standard `env` imports.
///
/// A module declares only what it calls: the load-time effect analyzer
/// flags any import unreachable from every export as a dead capability, and
/// deny-by-default host-call policies are cheapest to write when the import
/// list *is* the capability set.
#[derive(Debug, Clone, Copy)]
pub struct Env {
    /// `i32 request_len()` — absent on response-only modules.
    pub request_len: Option<FnRef>,
    /// `i32 request_read(dst, len, src_off)` — absent on response-only
    /// modules.
    pub request_read: Option<FnRef>,
    /// `i32 response_write(src, len)`
    pub response_write: FnRef,
}

/// Declare the request + response imports on a fresh module builder.
/// Must be called before any local function is declared.
pub fn import_env(mb: &mut ModuleBuilder) -> Env {
    use ValType::I32;
    Env {
        request_len: Some(mb.import_func("env", "request_len", &[], Some(I32))),
        request_read: Some(mb.import_func("env", "request_read", &[I32, I32, I32], Some(I32))),
        response_write: mb.import_func("env", "response_write", &[I32, I32], Some(I32)),
    }
}

/// Declare only `response_write`: for guests that never read the request
/// body (ping, the PolyBench kernels), keeping their capability certificate
/// down to the single host call they make.
pub fn import_env_response_only(mb: &mut ModuleBuilder) -> Env {
    use ValType::I32;
    Env {
        request_len: None,
        request_read: None,
        response_write: mb.import_func("env", "response_write", &[I32, I32], Some(I32)),
    }
}

/// Statement: copy the whole request body to linear memory at `dst`,
/// leaving its length in `len_local`.
pub fn read_request(env: &Env, dst: i32, len_local: Local) -> Vec<Stmt> {
    let request_len = env
        .request_len
        .expect("module imported without request ABI");
    let request_read = env
        .request_read
        .expect("module imported without request ABI");
    vec![
        set(len_local, call(request_len, vec![])),
        exec(call(
            request_read,
            vec![i32c(dst), local(len_local), i32c(0)],
        )),
    ]
}

/// Statement: send `len` bytes starting at `src` as the response body.
pub fn write_response(env: &Env, src: Expr, len: Expr) -> Stmt {
    exec(call(env.response_write, vec![src, len]))
}

// ---------------------------------------------------------------------
// Array addressing helpers (f64 matrices / byte images in linear memory).
// ---------------------------------------------------------------------

/// Address of `base[i]` for f64 elements: `base + 8*i`.
pub fn f64_addr1(base: i32, i: Expr) -> Expr {
    add(i32c(base), mul(i, i32c(8)))
}

/// Address of `base[i][j]` for an f64 matrix with `ncols` columns.
pub fn f64_addr2(base: i32, i: Expr, j: Expr, ncols: i32) -> Expr {
    add(i32c(base), mul(add(mul(i, i32c(ncols)), j), i32c(8)))
}

/// Load `base[i]` (f64 vector).
pub fn ld1(base: i32, i: Expr) -> Expr {
    load(Scalar::F64, f64_addr1(base, i), 0)
}

/// Load `base[i][j]` (f64 matrix).
pub fn ld2(base: i32, i: Expr, j: Expr, ncols: i32) -> Expr {
    load(Scalar::F64, f64_addr2(base, i, j, ncols), 0)
}

/// Store `base[i] = v`.
pub fn st1(base: i32, i: Expr, v: Expr) -> Stmt {
    store(Scalar::F64, f64_addr1(base, i), 0, v)
}

/// Store `base[i][j] = v`.
pub fn st2(base: i32, i: Expr, j: Expr, ncols: i32, v: Expr) -> Stmt {
    store(Scalar::F64, f64_addr2(base, i, j, ncols), 0, v)
}

/// Address of `base[i]` for byte arrays.
pub fn u8_addr1(base: i32, i: Expr) -> Expr {
    add(i32c(base), i)
}

/// Address of `base[y][x]` for a byte image of width `w`.
pub fn u8_addr2(base: i32, y: Expr, x: Expr, w: i32) -> Expr {
    add(i32c(base), add(mul(y, i32c(w)), x))
}

/// Load a byte `base[y][x]` widened to i32.
pub fn ldu8(base: i32, y: Expr, x: Expr, w: i32) -> Expr {
    load(Scalar::U8, u8_addr2(base, y, x, w), 0)
}

/// Store the low byte of `v` at `base[y][x]`.
pub fn stu8(base: i32, y: Expr, x: Expr, w: i32, v: Expr) -> Stmt {
    store(Scalar::U8, u8_addr2(base, y, x, w), 0, v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sledge_guestc::FuncBuilder;

    #[test]
    fn env_imports_build() {
        let mut mb = ModuleBuilder::new("t");
        mb.memory(1, Some(1));
        let env = import_env(&mut mb);
        let mut f = FuncBuilder::new(&[], Some(ValType::I32));
        let n = f.local(ValType::I32);
        let mut body = read_request(&env, 0, n);
        body.push(write_response(&env, i32c(0), local(n)));
        body.push(ret(Some(i32c(0))));
        f.extend(body);
        let main = mb.add_func("main", f);
        mb.export_func(main, "main");
        mb.build().unwrap();
    }

    #[test]
    fn addressing_helpers_type_check() {
        // f64_addr2(64, 2, 3, 10) = 64 + 8*(2*10+3) = 248.
        let e = f64_addr2(64, i32c(2), i32c(3), 10);
        assert_eq!(e.ty(), Some(ValType::I32));
        let e = ldu8(0, i32c(1), i32c(2), 16);
        assert_eq!(e.ty(), Some(ValType::I32));
        let e = ld2(0, i32c(1), i32c(2), 4);
        assert_eq!(e.ty(), Some(ValType::F64));
    }
}
