//! GPS-EKF: an 8-state / 4-measurement extended Kalman filter, the
//! reproduction of the paper's TinyEKF GPS workload.
//!
//! The client sends the filter state (x, P) plus a fresh measurement z; the
//! function runs one predict+update cycle and returns the new (x, P) — the
//! stateless-function-with-client-carried-state pattern the paper describes.
//!
//! State model (TinyEKF's GPS example shape): four (position, velocity)
//! pairs with a constant-velocity transition, measurements observing the
//! four positions.
//!
//! Request layout  (little-endian f64): `x[8] | P[8][8] | z[4]` = 608 bytes.
//! Response layout:                     `x[8] | P[8][8]`        = 576 bytes.

use crate::abi::{f64_addr2, import_env, ld1, ld2, read_request, st1, st2, write_response};
use sledge_guestc::dsl::*;
use sledge_guestc::{Expr, FuncBuilder, ModuleBuilder, Scalar};
use sledge_wasm::module::Module;
use sledge_wasm::types::ValType;

/// Number of states.
pub const N: usize = 8;
/// Number of measurements.
pub const M: usize = 4;
/// Transition time step.
const DT: f64 = 0.1;
/// Process noise.
const Q: f64 = 1e-4;
/// Measurement noise.
const R: f64 = 0.25;

// Guest memory layout (f64 offsets in bytes).
const RX: i32 = 4096; // request: x | P | z
const X: i32 = RX;
const P: i32 = RX + 8 * N as i32;
const Z: i32 = P + 8 * (N * N) as i32;
const F: i32 = 8192; // transition matrix
const H: i32 = F + 8 * (N * N) as i32; // measurement matrix (M x N)
const XP: i32 = 12288; // predicted state
const T1: i32 = XP + 8 * N as i32; // N x N scratch
const PP: i32 = T1 + 8 * (N * N) as i32; // predicted covariance
const T2: i32 = PP + 8 * (N * N) as i32; // M x N scratch
const S: i32 = T2 + 8 * (M * N) as i32; // innovation covariance M x M
const SI: i32 = S + 8 * (M * M) as i32; // S^-1
const PHT: i32 = SI + 8 * (M * M) as i32; // P H^T (N x M)
const K: i32 = PHT + 8 * (N * M) as i32; // Kalman gain N x M
const Y: i32 = K + 8 * (N * M) as i32; // innovation (M)
const KH: i32 = Y + 8 * M as i32; // K H (N x N)
const OUT: i32 = 20480; // response buffer

/// Build the EKF guest module.
pub fn module() -> Module {
    let mut mb = ModuleBuilder::new("gps_ekf");
    mb.memory(1, Some(2));
    let env = import_env(&mut mb);

    use ValType::{F64, I32};

    // matmul(a, b, c, n, m, k): C[n][k] = A[n][m] * B[m][k], row-major with
    // the *allocated* column strides passed explicitly (sa, sb, sc).
    let matmul = {
        let mut f = FuncBuilder::new(&[I32; 9], None);
        let (a, b, c) = (f.arg(0), f.arg(1), f.arg(2));
        let (n, m, k) = (f.arg(3), f.arg(4), f.arg(5));
        let (sa, sb, sc) = (f.arg(6), f.arg(7), f.arg(8));
        let i = f.local(I32);
        let j = f.local(I32);
        let l = f.local(I32);
        let acc = f.local(F64);
        f.push(for_loop(
            i,
            i32c(0),
            lt_s(local(i), local(n)),
            1,
            vec![for_loop(
                j,
                i32c(0),
                lt_s(local(j), local(k)),
                1,
                vec![
                    set(acc, f64c(0.0)),
                    for_loop(
                        l,
                        i32c(0),
                        lt_s(local(l), local(m)),
                        1,
                        vec![set(
                            acc,
                            add(
                                local(acc),
                                mul(
                                    load(
                                        Scalar::F64,
                                        add(
                                            local(a),
                                            mul(add(mul(local(i), local(sa)), local(l)), i32c(8)),
                                        ),
                                        0,
                                    ),
                                    load(
                                        Scalar::F64,
                                        add(
                                            local(b),
                                            mul(add(mul(local(l), local(sb)), local(j)), i32c(8)),
                                        ),
                                        0,
                                    ),
                                ),
                            ),
                        )],
                    ),
                    store(
                        Scalar::F64,
                        add(
                            local(c),
                            mul(add(mul(local(i), local(sc)), local(j)), i32c(8)),
                        ),
                        0,
                        local(acc),
                    ),
                ],
            )],
        ));
        mb.add_func("matmul", f)
    };

    // matmul_bt(a, b, c, n, m, k, sa, sb, sc): C[n][k] = A[n][m] * B^T where
    // B is [k][m].
    let matmul_bt = {
        let mut f = FuncBuilder::new(&[I32; 9], None);
        let (a, b, c) = (f.arg(0), f.arg(1), f.arg(2));
        let (n, m, k) = (f.arg(3), f.arg(4), f.arg(5));
        let (sa, sb, sc) = (f.arg(6), f.arg(7), f.arg(8));
        let i = f.local(I32);
        let j = f.local(I32);
        let l = f.local(I32);
        let acc = f.local(F64);
        f.push(for_loop(
            i,
            i32c(0),
            lt_s(local(i), local(n)),
            1,
            vec![for_loop(
                j,
                i32c(0),
                lt_s(local(j), local(k)),
                1,
                vec![
                    set(acc, f64c(0.0)),
                    for_loop(
                        l,
                        i32c(0),
                        lt_s(local(l), local(m)),
                        1,
                        vec![set(
                            acc,
                            add(
                                local(acc),
                                mul(
                                    load(
                                        Scalar::F64,
                                        add(
                                            local(a),
                                            mul(add(mul(local(i), local(sa)), local(l)), i32c(8)),
                                        ),
                                        0,
                                    ),
                                    load(
                                        Scalar::F64,
                                        add(
                                            local(b),
                                            mul(add(mul(local(j), local(sb)), local(l)), i32c(8)),
                                        ),
                                        0,
                                    ),
                                ),
                            ),
                        )],
                    ),
                    store(
                        Scalar::F64,
                        add(
                            local(c),
                            mul(add(mul(local(i), local(sc)), local(j)), i32c(8)),
                        ),
                        0,
                        local(acc),
                    ),
                ],
            )],
        ));
        mb.add_func("matmul_bt", f)
    };

    // invert4(src, dst): 4x4 Gauss-Jordan inverse without pivot search (S is
    // symmetric positive definite here).
    let invert4 = {
        let mut f = FuncBuilder::new(&[I32, I32], None);
        let (src, dst) = (f.arg(0), f.arg(1));
        let i = f.local(I32);
        let j = f.local(I32);
        let r = f.local(I32);
        let piv = f.local(F64);
        let fac = f.local(F64);
        // aug: 4x8 augmented matrix in scratch right after dst (dst+128).
        let aug_at = |row: Expr, col: Expr, dstl: sledge_guestc::Local| {
            add(
                add(local(dstl), i32c(128)),
                mul(add(mul(row, i32c(8)), col), i32c(8)),
            )
        };
        f.extend([
            // Build [S | I].
            for_loop(
                i,
                i32c(0),
                lt_s(local(i), i32c(4)),
                1,
                vec![for_loop(
                    j,
                    i32c(0),
                    lt_s(local(j), i32c(4)),
                    1,
                    vec![
                        store(
                            Scalar::F64,
                            aug_at(local(i), local(j), dst),
                            0,
                            load(
                                Scalar::F64,
                                add(
                                    local(src),
                                    mul(add(mul(local(i), i32c(4)), local(j)), i32c(8)),
                                ),
                                0,
                            ),
                        ),
                        store(
                            Scalar::F64,
                            aug_at(local(i), add(local(j), i32c(4)), dst),
                            0,
                            select(eq(local(i), local(j)), f64c(1.0), f64c(0.0)),
                        ),
                    ],
                )],
            ),
            // Eliminate.
            for_loop(
                i,
                i32c(0),
                lt_s(local(i), i32c(4)),
                1,
                vec![
                    set(piv, load(Scalar::F64, aug_at(local(i), local(i), dst), 0)),
                    for_loop(
                        j,
                        i32c(0),
                        lt_s(local(j), i32c(8)),
                        1,
                        vec![store(
                            Scalar::F64,
                            aug_at(local(i), local(j), dst),
                            0,
                            div(
                                load(Scalar::F64, aug_at(local(i), local(j), dst), 0),
                                local(piv),
                            ),
                        )],
                    ),
                    for_loop(
                        r,
                        i32c(0),
                        lt_s(local(r), i32c(4)),
                        1,
                        vec![if_(
                            ne(local(r), local(i)),
                            vec![
                                set(fac, load(Scalar::F64, aug_at(local(r), local(i), dst), 0)),
                                for_loop(
                                    j,
                                    i32c(0),
                                    lt_s(local(j), i32c(8)),
                                    1,
                                    vec![store(
                                        Scalar::F64,
                                        aug_at(local(r), local(j), dst),
                                        0,
                                        sub(
                                            load(Scalar::F64, aug_at(local(r), local(j), dst), 0),
                                            mul(
                                                local(fac),
                                                load(
                                                    Scalar::F64,
                                                    aug_at(local(i), local(j), dst),
                                                    0,
                                                ),
                                            ),
                                        ),
                                    )],
                                ),
                            ],
                        )],
                    ),
                ],
            ),
            // Copy right half to dst.
            for_loop(
                i,
                i32c(0),
                lt_s(local(i), i32c(4)),
                1,
                vec![for_loop(
                    j,
                    i32c(0),
                    lt_s(local(j), i32c(4)),
                    1,
                    vec![store(
                        Scalar::F64,
                        add(
                            local(dst),
                            mul(add(mul(local(i), i32c(4)), local(j)), i32c(8)),
                        ),
                        0,
                        load(
                            Scalar::F64,
                            aug_at(local(i), add(local(j), i32c(4)), dst),
                            0,
                        ),
                    )],
                )],
            ),
        ]);
        mb.add_func("invert4", f)
    };

    let nn = N as i32;
    let mm = M as i32;

    let mut f = FuncBuilder::new(&[], Some(I32));
    let len = f.local(I32);
    let i = f.local(I32);
    let j = f.local(I32);
    let acc = f.local(F64);

    let mut body = read_request(&env, RX, len);
    body.extend([
        // Build F: identity with DT on the (even, odd) velocity couplings.
        for_loop(
            i,
            i32c(0),
            lt_s(local(i), i32c(nn)),
            1,
            vec![for_loop(
                j,
                i32c(0),
                lt_s(local(j), i32c(nn)),
                1,
                vec![st2(
                    F,
                    local(i),
                    local(j),
                    nn,
                    select(eq(local(i), local(j)), f64c(1.0), f64c(0.0)),
                )],
            )],
        ),
        // F[2k][2k+1] = DT.
        for_loop(
            i,
            i32c(0),
            lt_s(local(i), i32c(mm)),
            1,
            vec![st2(
                F,
                mul(local(i), i32c(2)),
                add(mul(local(i), i32c(2)), i32c(1)),
                nn,
                f64c(DT),
            )],
        ),
        // Build H: M x N selecting even states.
        for_loop(
            i,
            i32c(0),
            lt_s(local(i), i32c(mm)),
            1,
            vec![for_loop(
                j,
                i32c(0),
                lt_s(local(j), i32c(nn)),
                1,
                vec![st2(
                    H,
                    local(i),
                    local(j),
                    nn,
                    select(eq(mul(local(i), i32c(2)), local(j)), f64c(1.0), f64c(0.0)),
                )],
            )],
        ),
        // xp = F x (treat x as N x 1).
        exec(call(
            matmul,
            vec![
                i32c(F),
                i32c(X),
                i32c(XP),
                i32c(nn),
                i32c(nn),
                i32c(1),
                i32c(nn),
                i32c(1),
                i32c(1),
            ],
        )),
        // T1 = F P ; PP = T1 F^T + Q I.
        exec(call(
            matmul,
            vec![
                i32c(F),
                i32c(P),
                i32c(T1),
                i32c(nn),
                i32c(nn),
                i32c(nn),
                i32c(nn),
                i32c(nn),
                i32c(nn),
            ],
        )),
        exec(call(
            matmul_bt,
            vec![
                i32c(T1),
                i32c(F),
                i32c(PP),
                i32c(nn),
                i32c(nn),
                i32c(nn),
                i32c(nn),
                i32c(nn),
                i32c(nn),
            ],
        )),
        for_loop(
            i,
            i32c(0),
            lt_s(local(i), i32c(nn)),
            1,
            vec![st2(
                PP,
                local(i),
                local(i),
                nn,
                add(ld2(PP, local(i), local(i), nn), f64c(Q)),
            )],
        ),
        // T2 = H PP (M x N); S = T2 H^T + R I (M x M).
        exec(call(
            matmul,
            vec![
                i32c(H),
                i32c(PP),
                i32c(T2),
                i32c(mm),
                i32c(nn),
                i32c(nn),
                i32c(nn),
                i32c(nn),
                i32c(nn),
            ],
        )),
        exec(call(
            matmul_bt,
            vec![
                i32c(T2),
                i32c(H),
                i32c(S),
                i32c(mm),
                i32c(nn),
                i32c(mm),
                i32c(nn),
                i32c(nn),
                i32c(mm),
            ],
        )),
        for_loop(
            i,
            i32c(0),
            lt_s(local(i), i32c(mm)),
            1,
            vec![st2(
                S,
                local(i),
                local(i),
                mm,
                add(ld2(S, local(i), local(i), mm), f64c(R)),
            )],
        ),
        // SI = S^-1 ; PHT = PP H^T (N x M) ; K = PHT SI (N x M).
        exec(call(invert4, vec![i32c(S), i32c(SI)])),
        exec(call(
            matmul_bt,
            vec![
                i32c(PP),
                i32c(H),
                i32c(PHT),
                i32c(nn),
                i32c(nn),
                i32c(mm),
                i32c(nn),
                i32c(nn),
                i32c(mm),
            ],
        )),
        exec(call(
            matmul,
            vec![
                i32c(PHT),
                i32c(SI),
                i32c(K),
                i32c(nn),
                i32c(mm),
                i32c(mm),
                i32c(mm),
                i32c(mm),
                i32c(mm),
            ],
        )),
        // y = z - H xp.
        for_loop(
            i,
            i32c(0),
            lt_s(local(i), i32c(mm)),
            1,
            vec![
                set(acc, f64c(0.0)),
                for_loop(
                    j,
                    i32c(0),
                    lt_s(local(j), i32c(nn)),
                    1,
                    vec![set(
                        acc,
                        add(
                            local(acc),
                            mul(ld2(H, local(i), local(j), nn), ld1(XP, local(j))),
                        ),
                    )],
                ),
                st1(Y, local(i), sub(ld1(Z, local(i)), local(acc))),
            ],
        ),
        // x = xp + K y → OUT[0..8].
        for_loop(
            i,
            i32c(0),
            lt_s(local(i), i32c(nn)),
            1,
            vec![
                set(acc, f64c(0.0)),
                for_loop(
                    j,
                    i32c(0),
                    lt_s(local(j), i32c(mm)),
                    1,
                    vec![set(
                        acc,
                        add(
                            local(acc),
                            mul(ld2(K, local(i), local(j), mm), ld1(Y, local(j))),
                        ),
                    )],
                ),
                st1(OUT, local(i), add(ld1(XP, local(i)), local(acc))),
            ],
        ),
        // KH = K H (N x N); P' = (I - KH) PP → OUT + 64.
        exec(call(
            matmul,
            vec![
                i32c(K),
                i32c(H),
                i32c(KH),
                i32c(nn),
                i32c(mm),
                i32c(nn),
                i32c(mm),
                i32c(nn),
                i32c(nn),
            ],
        )),
        for_loop(
            i,
            i32c(0),
            lt_s(local(i), i32c(nn)),
            1,
            vec![for_loop(
                j,
                i32c(0),
                lt_s(local(j), i32c(nn)),
                1,
                vec![st2(
                    KH,
                    local(i),
                    local(j),
                    nn,
                    sub(
                        select(eq(local(i), local(j)), f64c(1.0), f64c(0.0)),
                        ld2(KH, local(i), local(j), nn),
                    ),
                )],
            )],
        ),
        exec(call(
            matmul,
            vec![
                i32c(KH),
                i32c(PP),
                {
                    let out_p = OUT + 8 * nn;
                    i32c(out_p)
                },
                i32c(nn),
                i32c(nn),
                i32c(nn),
                i32c(nn),
                i32c(nn),
                i32c(nn),
            ],
        )),
        write_response(&env, i32c(OUT), i32c(8 * (nn + nn * nn))),
        ret(Some(i32c(0))),
    ]);
    f.extend(body);
    let main = mb.add_func("main", f);
    mb.export_func(main, "main");
    // Silence "unused" address-expr helper imports.
    let _ = f64_addr2(0, i32c(0), i32c(0), 1);
    mb.build().expect("ekf module")
}

// ------------------------------------------------------------------ native

fn matmul_n(
    a: &[f64],
    b: &[f64],
    c: &mut [f64],
    n: usize,
    m: usize,
    k: usize,
    sa: usize,
    sb: usize,
    sc: usize,
) {
    for i in 0..n {
        for j in 0..k {
            let mut acc = 0.0;
            for l in 0..m {
                acc += a[i * sa + l] * b[l * sb + j];
            }
            c[i * sc + j] = acc;
        }
    }
}

fn matmul_bt_n(
    a: &[f64],
    b: &[f64],
    c: &mut [f64],
    n: usize,
    m: usize,
    k: usize,
    sa: usize,
    sb: usize,
    sc: usize,
) {
    for i in 0..n {
        for j in 0..k {
            let mut acc = 0.0;
            for l in 0..m {
                acc += a[i * sa + l] * b[j * sb + l];
            }
            c[i * sc + j] = acc;
        }
    }
}

fn invert4_n(src: &[f64], dst: &mut [f64]) {
    let mut aug = [[0.0f64; 8]; 4];
    for i in 0..4 {
        for j in 0..4 {
            aug[i][j] = src[i * 4 + j];
            aug[i][j + 4] = if i == j { 1.0 } else { 0.0 };
        }
    }
    for i in 0..4 {
        let piv = aug[i][i];
        for j in 0..8 {
            aug[i][j] /= piv;
        }
        for r in 0..4 {
            if r != i {
                let fac = aug[r][i];
                for j in 0..8 {
                    aug[r][j] -= fac * aug[i][j];
                }
            }
        }
    }
    for i in 0..4 {
        for j in 0..4 {
            dst[i * 4 + j] = aug[i][j + 4];
        }
    }
}

/// Native reference implementation. Same operation order as the guest so
/// outputs are bitwise identical.
pub fn native(body: &[u8]) -> Vec<u8> {
    if body.len() < 8 * (N + N * N + M) {
        return b"short request".to_vec();
    }
    let f64_at = |i: usize| f64::from_le_bytes(body[8 * i..8 * i + 8].try_into().expect("8 bytes"));
    let x: Vec<f64> = (0..N).map(f64_at).collect();
    let p: Vec<f64> = (N..N + N * N).map(f64_at).collect();
    let z: Vec<f64> = (N + N * N..N + N * N + M).map(f64_at).collect();

    // Build F and H exactly as the guest does.
    let mut fm = vec![0.0f64; N * N];
    for i in 0..N {
        fm[i * N + i] = 1.0;
    }
    for i in 0..M {
        fm[(2 * i) * N + 2 * i + 1] = DT;
    }
    let mut h = vec![0.0f64; M * N];
    for i in 0..M {
        h[i * N + 2 * i] = 1.0;
    }

    let mut xp = vec![0.0f64; N];
    matmul_n(&fm, &x, &mut xp, N, N, 1, N, 1, 1);
    let mut t1 = vec![0.0f64; N * N];
    matmul_n(&fm, &p, &mut t1, N, N, N, N, N, N);
    let mut pp = vec![0.0f64; N * N];
    matmul_bt_n(&t1, &fm, &mut pp, N, N, N, N, N, N);
    for i in 0..N {
        pp[i * N + i] += Q;
    }
    let mut t2 = vec![0.0f64; M * N];
    matmul_n(&h, &pp, &mut t2, M, N, N, N, N, N);
    let mut s = vec![0.0f64; M * M];
    matmul_bt_n(&t2, &h, &mut s, M, N, M, N, N, M);
    for i in 0..M {
        s[i * M + i] += R;
    }
    let mut si = vec![0.0f64; M * M];
    invert4_n(&s, &mut si);
    let mut pht = vec![0.0f64; N * M];
    matmul_bt_n(&pp, &h, &mut pht, N, N, M, N, N, M);
    let mut k = vec![0.0f64; N * M];
    matmul_n(&pht, &si, &mut k, N, M, M, M, M, M);
    let mut y = [0.0f64; M];
    for i in 0..M {
        let mut acc = 0.0;
        for j in 0..N {
            acc += h[i * N + j] * xp[j];
        }
        y[i] = z[i] - acc;
    }
    let mut x_new = [0.0f64; N];
    for i in 0..N {
        let mut acc = 0.0;
        for j in 0..M {
            acc += k[i * M + j] * y[j];
        }
        x_new[i] = xp[i] + acc;
    }
    let mut kh = vec![0.0f64; N * N];
    matmul_n(&k, &h, &mut kh, N, M, N, M, N, N);
    for i in 0..N {
        for j in 0..N {
            kh[i * N + j] = (if i == j { 1.0 } else { 0.0 }) - kh[i * N + j];
        }
    }
    let mut p_new = vec![0.0f64; N * N];
    matmul_n(&kh, &pp, &mut p_new, N, N, N, N, N, N);

    let mut out = Vec::with_capacity(8 * (N + N * N));
    for v in x_new.iter().chain(p_new.iter()) {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// A representative request: initial state at the origin, identity
/// covariance, a plausible GPS fix.
pub fn sample_input() -> Vec<u8> {
    let mut x = [0.0f64; N];
    for (i, v) in x.iter_mut().enumerate() {
        *v = i as f64 * 0.5;
    }
    let mut p = [0.0f64; N * N];
    for i in 0..N {
        p[i * N + i] = 1.0;
    }
    let z = [0.9f64, 1.6, 2.4, 3.1];
    let mut out = Vec::with_capacity(8 * (N + N * N + M));
    for v in x.iter().chain(p.iter()).chain(z.iter()) {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{run_guest, run_guest_all_configs};

    #[test]
    fn guest_matches_native_bitwise() {
        let m = module();
        let input = sample_input();
        let got = run_guest(&m, &input);
        let want = native(&input);
        assert_eq!(got.len(), want.len());
        assert_eq!(got, want, "EKF guest and native outputs differ");
    }

    #[test]
    fn all_configs_agree() {
        let m = module();
        let input = sample_input();
        let out = run_guest_all_configs(&m, &input);
        assert_eq!(out, native(&input));
    }

    #[test]
    fn repeated_filtering_converges_position() {
        // Feed the output state back with a constant measurement: the
        // estimated positions should approach the measurement.
        let m = module();
        let mut state = sample_input();
        let z_bytes: Vec<u8> = [10.0f64, 20.0, 30.0, 40.0]
            .iter()
            .flat_map(|v| v.to_le_bytes())
            .collect();
        for _ in 0..60 {
            let out = run_guest(&m, &state);
            state = [out.as_slice(), z_bytes.as_slice()].concat();
        }
        let pos0 = f64::from_le_bytes(state[0..8].try_into().unwrap());
        assert!((pos0 - 10.0).abs() < 0.5, "pos0 = {pos0}");
    }

    #[test]
    fn short_request_is_graceful() {
        assert_eq!(native(b"tiny"), b"short request".to_vec());
    }
}
