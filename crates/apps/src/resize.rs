//! RESIZE: half-scale an RGB image with a 2x2 box filter — the reproduction
//! of the paper's SOD resize workload (read image, resize by half, write
//! result).
//!
//! Request layout: `u32 width | u32 height | RGB24 pixels` (interleaved).
//! Response layout: same header with halved dimensions, then RGB24 pixels.

use crate::abi::{import_env, read_request, write_response};
use sledge_guestc::dsl::*;
use sledge_guestc::{FuncBuilder, ModuleBuilder, Scalar};
use sledge_wasm::module::Module;
use sledge_wasm::types::ValType;

const RX: i32 = 65536; // request buffer (input image)
const OUT: i32 = 655360; // response buffer

/// Build the resize guest module.
pub fn module() -> Module {
    let mut mb = ModuleBuilder::new("resize");
    mb.memory(16, Some(32));
    let env = import_env(&mut mb);

    use ValType::I32;
    let mut f = FuncBuilder::new(&[], Some(I32));
    let len = f.local(I32);
    let w = f.local(I32);
    let h = f.local(I32);
    let hw = f.local(I32);
    let hh = f.local(I32);
    let y = f.local(I32);
    let x = f.local(I32);
    let c = f.local(I32);
    let acc = f.local(I32);
    let sy = f.local(I32);
    let sx = f.local(I32);

    // src pixel byte address: RX + 8 + ((yy*w)+xx)*3 + c
    let src_at = |yy: Expr, xx: Expr, wl: sledge_guestc::Local, cl: sledge_guestc::Local| {
        load(
            Scalar::U8,
            add(
                i32c(RX + 8),
                add(mul(add(mul(yy, local(wl)), xx), i32c(3)), local(cl)),
            ),
            0,
        )
    };

    let mut body = read_request(&env, RX, len);
    body.extend([
        set(w, load(Scalar::I32, i32c(RX), 0)),
        set(h, load(Scalar::I32, i32c(RX), 4)),
        set(hw, div(local(w), i32c(2))),
        set(hh, div(local(h), i32c(2))),
        store(Scalar::I32, i32c(OUT), 0, local(hw)),
        store(Scalar::I32, i32c(OUT), 4, local(hh)),
        for_loop(
            y,
            i32c(0),
            lt_s(local(y), local(hh)),
            1,
            vec![for_loop(
                x,
                i32c(0),
                lt_s(local(x), local(hw)),
                1,
                vec![for_loop(
                    c,
                    i32c(0),
                    lt_s(local(c), i32c(3)),
                    1,
                    vec![
                        set(sy, mul(local(y), i32c(2))),
                        set(sx, mul(local(x), i32c(2))),
                        set(
                            acc,
                            add(
                                add(
                                    src_at(local(sy), local(sx), w, c),
                                    src_at(local(sy), add(local(sx), i32c(1)), w, c),
                                ),
                                add(
                                    src_at(add(local(sy), i32c(1)), local(sx), w, c),
                                    src_at(add(local(sy), i32c(1)), add(local(sx), i32c(1)), w, c),
                                ),
                            ),
                        ),
                        store(
                            Scalar::U8,
                            add(
                                i32c(OUT + 8),
                                add(
                                    mul(add(mul(local(y), local(hw)), local(x)), i32c(3)),
                                    local(c),
                                ),
                            ),
                            0,
                            shr_u(add(local(acc), i32c(2)), i32c(2)),
                        ),
                    ],
                )],
            )],
        ),
        write_response(
            &env,
            i32c(OUT),
            add(i32c(8), mul(mul(local(hw), local(hh)), i32c(3))),
        ),
        ret(Some(i32c(0))),
    ]);
    f.extend(body);
    let main = mb.add_func("main", f);
    mb.export_func(main, "main");
    mb.build().expect("resize module")
}

use sledge_guestc::Expr;

// ------------------------------------------------------------------ native

/// Native reference implementation: identical box filter and rounding.
pub fn native(body: &[u8]) -> Vec<u8> {
    if body.len() < 8 {
        return Vec::new();
    }
    let w = u32::from_le_bytes(body[0..4].try_into().expect("4 bytes")) as usize;
    let h = u32::from_le_bytes(body[4..8].try_into().expect("4 bytes")) as usize;
    let px = &body[8..];
    let (hw, hh) = (w / 2, h / 2);
    let at =
        |y: usize, x: usize, c: usize| px.get((y * w + x) * 3 + c).copied().unwrap_or(0) as u32;
    let mut out = Vec::with_capacity(8 + hw * hh * 3);
    out.extend_from_slice(&(hw as u32).to_le_bytes());
    out.extend_from_slice(&(hh as u32).to_le_bytes());
    for y in 0..hh {
        for x in 0..hw {
            for c in 0..3 {
                let acc = at(2 * y, 2 * x, c)
                    + at(2 * y, 2 * x + 1, c)
                    + at(2 * y + 1, 2 * x, c)
                    + at(2 * y + 1, 2 * x + 1, c);
                out.push(((acc + 2) >> 2) as u8);
            }
        }
    }
    out
}

/// Deterministic synthetic photo of `w` x `h` pixels (a flower-ish radial
/// gradient, standing in for the paper's 28.9 KB flower JPEG).
pub fn synth_image(w: usize, h: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + w * h * 3);
    out.extend_from_slice(&(w as u32).to_le_bytes());
    out.extend_from_slice(&(h as u32).to_le_bytes());
    let (cx, cy) = (w as i32 / 2, h as i32 / 2);
    for y in 0..h as i32 {
        for x in 0..w as i32 {
            let d2 = (x - cx) * (x - cx) + (y - cy) * (y - cy);
            let petal = (x * 7 + y * 13) % 47;
            out.push((200 - (d2 / 37).min(180) + petal / 4).clamp(0, 255) as u8);
            out.push((60 + petal * 3).clamp(0, 255) as u8);
            out.push((120 + (d2 / 53) % 90).clamp(0, 255) as u8);
        }
    }
    out
}

/// A representative input: 432x320 RGB — sized so the decoded working set
/// matches the computational weight class of the paper's RESIZE workload
/// (heavier than CIFAR10, lighter than LPD).
pub fn sample_input() -> Vec<u8> {
    synth_image(432, 320)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{run_guest, run_guest_all_configs};

    #[test]
    fn guest_matches_native() {
        let m = module();
        let img = sample_input();
        let got = run_guest(&m, &img);
        let want = native(&img);
        assert_eq!(got, want);
        // Output header has halved dimensions.
        assert_eq!(u32::from_le_bytes(got[0..4].try_into().unwrap()), 216);
        assert_eq!(u32::from_le_bytes(got[4..8].try_into().unwrap()), 160);
    }

    #[test]
    fn all_configs_agree_small() {
        let m = module();
        let img = synth_image(32, 24);
        let out = run_guest_all_configs(&m, &img);
        assert_eq!(out, native(&img));
    }

    #[test]
    fn box_filter_averages() {
        // A uniform image stays uniform.
        let mut img = Vec::new();
        img.extend_from_slice(&4u32.to_le_bytes());
        img.extend_from_slice(&4u32.to_le_bytes());
        img.extend(std::iter::repeat_n(100u8, 4 * 4 * 3));
        let out = native(&img);
        assert!(out[8..].iter().all(|&b| b == 100));
    }
}
