//! GOCR: optical character recognition over a binary bitmap, the
//! reproduction of the paper's GOCR workload.
//!
//! The guest receives a P4-style packed binary bitmap laid out as rows of
//! fixed-size glyph cells (8x12 pixels per character), and recognizes each
//! cell by minimum-Hamming-distance matching against a built-in 8x12 font of
//! the characters `0-9A-Z` and space. The recognized ASCII text is the
//! response.
//!
//! Request layout: `u32 cols | u32 rows | packed bits` where the bitmap is
//! `cols*8` pixels wide and `rows*12` tall, one bit per pixel, MSB-first,
//! each pixel row padded to a byte boundary.

use crate::abi::{import_env, read_request, write_response};
use sledge_guestc::dsl::*;
use sledge_guestc::{FuncBuilder, ModuleBuilder, Scalar};
use sledge_wasm::module::Module;
use sledge_wasm::types::ValType;

/// Glyph cell width in pixels (one packed byte).
pub const CELL_W: usize = 8;
/// Glyph cell height in pixels.
pub const CELL_H: usize = 12;
/// Number of font glyphs.
pub const GLYPHS: usize = 37;

/// The glyph alphabet, index-aligned with the font table.
pub const ALPHABET: &[u8; GLYPHS] = b"0123456789ABCDEFGHIJKLMNOPQRSTUVWXYZ ";

/// A deterministic, procedurally generated 8x12 font: each glyph is 12
/// bytes (one byte per pixel row). The font is arbitrary but fixed — both
/// the generator and the recognizer use it, which is what the workload
/// needs (the paper's GOCR similarly ships its own glyph knowledge).
pub fn font() -> [[u8; CELL_H]; GLYPHS] {
    let mut font = [[0u8; CELL_H]; GLYPHS];
    let mut state = 0x5EED_5EEDu32;
    let mut next = move || {
        // xorshift32
        state ^= state << 13;
        state ^= state >> 17;
        state ^= state << 5;
        state
    };
    for (g, glyph) in font.iter_mut().enumerate() {
        if g == GLYPHS - 1 {
            continue; // space: all zeros
        }
        for row in glyph.iter_mut() {
            *row = (next() & 0xFF) as u8;
        }
        // Give every non-space glyph a solid anchor row so glyphs are
        // visually dense and mutually distant.
        glyph[0] = 0xFF;
        glyph[CELL_H - 1] = (g as u8).wrapping_mul(7) | 0x81;
    }
    font
}

const RX: i32 = 8192; // request bitmap
const OUT: i32 = 4096; // recognized text
const FONT: i32 = 64; // font data segment

/// Build the OCR guest module.
pub fn module() -> Module {
    let mut mb = ModuleBuilder::new("gocr");
    mb.memory(4, Some(16));
    let env = import_env(&mut mb);

    // Bake the font into a data segment.
    let f = font();
    let mut bytes = Vec::with_capacity(GLYPHS * CELL_H);
    for glyph in &f {
        bytes.extend_from_slice(glyph);
    }
    mb.data(FONT as u32, bytes);

    use ValType::I32;
    let mut fb = FuncBuilder::new(&[], Some(I32));
    let len = fb.local(I32);
    let cols = fb.local(I32);
    let rows = fb.local(I32);
    let cy = fb.local(I32); // cell row
    let cx = fb.local(I32); // cell col
    let g = fb.local(I32); // glyph index
    let r = fb.local(I32); // pixel row within cell
    let best = fb.local(I32);
    let best_g = fb.local(I32);
    let dist = fb.local(I32);
    let cell_byte = fb.local(I32);
    let out_pos = fb.local(I32);

    let mut body = read_request(&env, RX, len);
    body.extend([
        set(cols, load(Scalar::I32, i32c(RX), 0)),
        set(rows, load(Scalar::I32, i32c(RX), 4)),
        set(out_pos, i32c(0)),
        // For each glyph cell...
        for_loop(
            cy,
            i32c(0),
            lt_s(local(cy), local(rows)),
            1,
            vec![
                for_loop(
                    cx,
                    i32c(0),
                    lt_s(local(cx), local(cols)),
                    1,
                    vec![
                        set(best, i32c(1 << 20)),
                        set(best_g, i32c(GLYPHS as i32 - 1)),
                        for_loop(
                            g,
                            i32c(0),
                            lt_s(local(g), i32c(GLYPHS as i32)),
                            1,
                            vec![
                                set(dist, i32c(0)),
                                for_loop(
                                    r,
                                    i32c(0),
                                    lt_s(local(r), i32c(CELL_H as i32)),
                                    1,
                                    vec![
                                        // The bitmap byte for (cell cy, pixel row r, cell cx):
                                        // offset = 8 + (cy*CELL_H + r)*cols + cx.
                                        set(
                                            cell_byte,
                                            load(
                                                Scalar::U8,
                                                add(
                                                    i32c(RX + 8),
                                                    add(
                                                        mul(
                                                            add(
                                                                mul(local(cy), i32c(CELL_H as i32)),
                                                                local(r),
                                                            ),
                                                            local(cols),
                                                        ),
                                                        local(cx),
                                                    ),
                                                ),
                                                0,
                                            ),
                                        ),
                                        set(
                                            dist,
                                            add(
                                                local(dist),
                                                Expr::Un(
                                                    sledge_guestc::UnOp::Popcnt,
                                                    Box::new(xor(
                                                        local(cell_byte),
                                                        load(
                                                            Scalar::U8,
                                                            add(
                                                                i32c(FONT),
                                                                add(
                                                                    mul(
                                                                        local(g),
                                                                        i32c(CELL_H as i32),
                                                                    ),
                                                                    local(r),
                                                                ),
                                                            ),
                                                            0,
                                                        ),
                                                    )),
                                                ),
                                            ),
                                        ),
                                    ],
                                ),
                                if_(
                                    lt_s(local(dist), local(best)),
                                    vec![set(best, local(dist)), set(best_g, local(g))],
                                ),
                            ],
                        ),
                        // Emit the alphabet character for best_g. The alphabet is
                        // '0'..'9','A'..'Z',' ' — compute it arithmetically.
                        store(
                            Scalar::U8,
                            add(i32c(OUT), local(out_pos)),
                            0,
                            select(
                                lt_s(local(best_g), i32c(10)),
                                add(local(best_g), i32c('0' as i32)),
                                select(
                                    lt_s(local(best_g), i32c(36)),
                                    add(local(best_g), i32c('A' as i32 - 10)),
                                    i32c(' ' as i32),
                                ),
                            ),
                        ),
                        set(out_pos, add(local(out_pos), i32c(1))),
                    ],
                ),
                // Newline after each cell row.
                store(
                    Scalar::U8,
                    add(i32c(OUT), local(out_pos)),
                    0,
                    i32c('\n' as i32),
                ),
                set(out_pos, add(local(out_pos), i32c(1))),
            ],
        ),
        write_response(&env, i32c(OUT), local(out_pos)),
        ret(Some(i32c(0))),
    ]);
    fb.extend(body);
    let main = mb.add_func("main", fb);
    mb.export_func(main, "main");
    mb.build().expect("gocr module")
}

use sledge_guestc::Expr;

// ------------------------------------------------------------------ native

/// Native reference recognizer; same algorithm as the guest.
pub fn native(body: &[u8]) -> Vec<u8> {
    if body.len() < 8 {
        return Vec::new();
    }
    let cols = u32::from_le_bytes(body[0..4].try_into().expect("4 bytes")) as usize;
    let rows = u32::from_le_bytes(body[4..8].try_into().expect("4 bytes")) as usize;
    let bitmap = &body[8..];
    let f = font();
    let mut out = Vec::new();
    for cy in 0..rows {
        for cx in 0..cols {
            let mut best = 1 << 20;
            let mut best_g = GLYPHS - 1;
            for (g, glyph) in f.iter().enumerate() {
                let mut dist = 0u32;
                for (r, font_byte) in glyph.iter().enumerate() {
                    let idx = (cy * CELL_H + r) * cols + cx;
                    let cell = bitmap.get(idx).copied().unwrap_or(0);
                    dist += (cell ^ font_byte).count_ones();
                }
                if (dist as i32) < best {
                    best = dist as i32;
                    best_g = g;
                }
            }
            out.push(ALPHABET[best_g]);
        }
        out.push(b'\n');
    }
    out
}

/// Render `text` (uppercase alphanumerics and spaces, lines of equal
/// length) into a request bitmap, optionally flipping `noise_bits`
/// deterministic pixels to exercise the error-correcting match.
pub fn render(lines: &[&str], noise_bits: usize) -> Vec<u8> {
    let cols = lines.iter().map(|l| l.len()).max().unwrap_or(0);
    let rows = lines.len();
    let f = font();
    let mut bitmap = vec![0u8; rows * CELL_H * cols];
    for (cy, line) in lines.iter().enumerate() {
        for (cx, ch) in line.bytes().enumerate() {
            let g = ALPHABET
                .iter()
                .position(|&a| a == ch.to_ascii_uppercase())
                .unwrap_or(GLYPHS - 1);
            for r in 0..CELL_H {
                bitmap[(cy * CELL_H + r) * cols + cx] = f[g][r];
            }
        }
    }
    // Deterministic noise.
    let mut state = 0xBADC_AB1Eu32;
    for _ in 0..noise_bits {
        state ^= state << 13;
        state ^= state >> 17;
        state ^= state << 5;
        let idx = (state as usize) % (bitmap.len() * 8);
        bitmap[idx / 8] ^= 1 << (idx % 8);
    }
    let mut req = Vec::with_capacity(8 + bitmap.len());
    req.extend_from_slice(&(cols as u32).to_le_bytes());
    req.extend_from_slice(&(rows as u32).to_le_bytes());
    req.extend_from_slice(&bitmap);
    req
}

/// A representative request: three lines of text with light noise.
pub fn sample_input() -> Vec<u8> {
    render(
        &[
            "SLEDGE SERVERLESS RUNTIME 2020",
            "EDGE FUNCTIONS AT MICROSECONDS",
            "WASM SANDBOXES FOR EVERYONE 42",
        ],
        64,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{run_guest, run_guest_all_configs};

    #[test]
    fn recognizes_clean_text() {
        let req = render(&["HELLO 42"], 0);
        assert_eq!(native(&req), b"HELLO 42\n".to_vec());
    }

    #[test]
    fn recognizes_noisy_text() {
        // A few flipped bits must not change the result.
        let req = render(&["NOISY TEXT 99"], 20);
        assert_eq!(native(&req), b"NOISY TEXT 99\n".to_vec());
    }

    #[test]
    fn guest_matches_native() {
        let m = module();
        let req = sample_input();
        let got = run_guest(&m, &req);
        assert_eq!(got, native(&req));
        assert!(String::from_utf8(got).unwrap().contains("SLEDGE"));
    }

    #[test]
    fn all_configs_agree() {
        let m = module();
        let req = render(&["ABC 123"], 8);
        let out = run_guest_all_configs(&m, &req);
        assert_eq!(out, native(&req));
    }

    #[test]
    fn empty_request_is_graceful() {
        assert!(native(b"").is_empty());
    }
}
