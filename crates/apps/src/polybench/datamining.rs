//! Data-mining and medley PolyBench kernels: correlation, covariance,
//! deriche, floyd-warshall, nussinov.

use super::{for_i, kernel_module, Kernel, A0};
use crate::abi::{ld1, ld2, st1, st2};
use sledge_guestc::dsl::*;
use sledge_guestc::Expr;
use sledge_wasm::types::ValType::{F64, I32};

// ----------------------------------------------------------- correlation

const CN: i32 = 26;

pub(super) fn correlation() -> Kernel {
    Kernel {
        name: "correlation",
        build: build_correlation,
        native: native_correlation,
    }
}

fn build_correlation() -> sledge_wasm::module::Module {
    let n = CN; // observations = attributes = n for simplicity
    let data = A0;
    let corr = A0 + 8 * n * n;
    let mean = corr + 8 * n * n;
    let stddev = mean + 8 * n;
    let eps = 0.1f64;
    kernel_module("correlation", 2, |f, cks| {
        let i = f.local(I32);
        let j = f.local(I32);
        let k = f.local(I32);
        f.extend([
            for_i(
                i,
                0,
                i32c(n),
                vec![for_i(
                    j,
                    0,
                    i32c(n),
                    vec![st2(
                        data,
                        local(i),
                        local(j),
                        n,
                        add(
                            div(i2d(mul(local(i), local(j))), f64c(n as f64)),
                            i2d(local(i)),
                        ),
                    )],
                )],
            ),
            // mean
            for_i(
                j,
                0,
                i32c(n),
                vec![
                    st1(mean, local(j), f64c(0.0)),
                    for_i(
                        i,
                        0,
                        i32c(n),
                        vec![st1(
                            mean,
                            local(j),
                            add(ld1(mean, local(j)), ld2(data, local(i), local(j), n)),
                        )],
                    ),
                    st1(mean, local(j), div(ld1(mean, local(j)), f64c(n as f64))),
                ],
            ),
            // stddev
            for_i(
                j,
                0,
                i32c(n),
                vec![
                    st1(stddev, local(j), f64c(0.0)),
                    for_i(
                        i,
                        0,
                        i32c(n),
                        vec![st1(
                            stddev,
                            local(j),
                            add(
                                ld1(stddev, local(j)),
                                mul(
                                    sub(ld2(data, local(i), local(j), n), ld1(mean, local(j))),
                                    sub(ld2(data, local(i), local(j), n), ld1(mean, local(j))),
                                ),
                            ),
                        )],
                    ),
                    st1(
                        stddev,
                        local(j),
                        sqrt(div(ld1(stddev, local(j)), f64c(n as f64))),
                    ),
                    st1(
                        stddev,
                        local(j),
                        select(
                            le_s(ld1(stddev, local(j)), f64c(eps)),
                            f64c(1.0),
                            ld1(stddev, local(j)),
                        ),
                    ),
                ],
            ),
            // center & reduce
            for_i(
                i,
                0,
                i32c(n),
                vec![for_i(
                    j,
                    0,
                    i32c(n),
                    vec![
                        st2(
                            data,
                            local(i),
                            local(j),
                            n,
                            sub(ld2(data, local(i), local(j), n), ld1(mean, local(j))),
                        ),
                        st2(
                            data,
                            local(i),
                            local(j),
                            n,
                            div(
                                ld2(data, local(i), local(j), n),
                                mul(sqrt(f64c(n as f64)), ld1(stddev, local(j))),
                            ),
                        ),
                    ],
                )],
            ),
            // correlation matrix (upper triangle).
            for_i(
                i,
                0,
                sub(i32c(n), i32c(1)),
                vec![
                    st2(corr, local(i), local(i), n, f64c(1.0)),
                    for_loop(
                        j,
                        add(local(i), i32c(1)),
                        lt_s(local(j), i32c(n)),
                        1,
                        vec![
                            st2(corr, local(i), local(j), n, f64c(0.0)),
                            for_i(
                                k,
                                0,
                                i32c(n),
                                vec![st2(
                                    corr,
                                    local(i),
                                    local(j),
                                    n,
                                    add(
                                        ld2(corr, local(i), local(j), n),
                                        mul(
                                            ld2(data, local(k), local(i), n),
                                            ld2(data, local(k), local(j), n),
                                        ),
                                    ),
                                )],
                            ),
                            st2(
                                corr,
                                local(j),
                                local(i),
                                n,
                                ld2(corr, local(i), local(j), n),
                            ),
                        ],
                    ),
                ],
            ),
            st2(corr, i32c(n - 1), i32c(n - 1), n, f64c(1.0)),
            set(cks, f64c(0.0)),
            for_i(
                i,
                0,
                i32c(n),
                vec![for_i(
                    j,
                    0,
                    i32c(n),
                    vec![set(cks, add(local(cks), ld2(corr, local(i), local(j), n)))],
                )],
            ),
        ]);
    })
}

fn native_correlation() -> f64 {
    let n = CN as usize;
    let eps = 0.1f64;
    let mut data = vec![0.0f64; n * n];
    let mut corr = vec![0.0f64; n * n];
    let mut mean = vec![0.0f64; n];
    let mut stddev = vec![0.0f64; n];
    for i in 0..n {
        for j in 0..n {
            data[i * n + j] = (i * j) as f64 / n as f64 + i as f64;
        }
    }
    for j in 0..n {
        for i in 0..n {
            mean[j] += data[i * n + j];
        }
        mean[j] /= n as f64;
    }
    for j in 0..n {
        for i in 0..n {
            stddev[j] += (data[i * n + j] - mean[j]) * (data[i * n + j] - mean[j]);
        }
        stddev[j] = (stddev[j] / n as f64).sqrt();
        if stddev[j] <= eps {
            stddev[j] = 1.0;
        }
    }
    for i in 0..n {
        for j in 0..n {
            data[i * n + j] -= mean[j];
            data[i * n + j] /= (n as f64).sqrt() * stddev[j];
        }
    }
    for i in 0..n - 1 {
        corr[i * n + i] = 1.0;
        for j in i + 1..n {
            corr[i * n + j] = 0.0;
            for k in 0..n {
                corr[i * n + j] += data[k * n + i] * data[k * n + j];
            }
            corr[j * n + i] = corr[i * n + j];
        }
    }
    corr[(n - 1) * n + n - 1] = 1.0;
    corr.iter().sum()
}

// ------------------------------------------------------------ covariance

const VN: i32 = 26;

pub(super) fn covariance() -> Kernel {
    Kernel {
        name: "covariance",
        build: build_covariance,
        native: native_covariance,
    }
}

fn build_covariance() -> sledge_wasm::module::Module {
    let n = VN;
    let data = A0;
    let cov = A0 + 8 * n * n;
    let mean = cov + 8 * n * n;
    kernel_module("covariance", 2, |f, cks| {
        let i = f.local(I32);
        let j = f.local(I32);
        let k = f.local(I32);
        f.extend([
            for_i(
                i,
                0,
                i32c(n),
                vec![for_i(
                    j,
                    0,
                    i32c(n),
                    vec![st2(
                        data,
                        local(i),
                        local(j),
                        n,
                        div(i2d(mul(local(i), local(j))), f64c(n as f64)),
                    )],
                )],
            ),
            for_i(
                j,
                0,
                i32c(n),
                vec![
                    st1(mean, local(j), f64c(0.0)),
                    for_i(
                        i,
                        0,
                        i32c(n),
                        vec![st1(
                            mean,
                            local(j),
                            add(ld1(mean, local(j)), ld2(data, local(i), local(j), n)),
                        )],
                    ),
                    st1(mean, local(j), div(ld1(mean, local(j)), f64c(n as f64))),
                ],
            ),
            for_i(
                i,
                0,
                i32c(n),
                vec![for_i(
                    j,
                    0,
                    i32c(n),
                    vec![st2(
                        data,
                        local(i),
                        local(j),
                        n,
                        sub(ld2(data, local(i), local(j), n), ld1(mean, local(j))),
                    )],
                )],
            ),
            for_i(
                i,
                0,
                i32c(n),
                vec![for_loop(
                    j,
                    local(i),
                    lt_s(local(j), i32c(n)),
                    1,
                    vec![
                        st2(cov, local(i), local(j), n, f64c(0.0)),
                        for_i(
                            k,
                            0,
                            i32c(n),
                            vec![st2(
                                cov,
                                local(i),
                                local(j),
                                n,
                                add(
                                    ld2(cov, local(i), local(j), n),
                                    mul(
                                        ld2(data, local(k), local(i), n),
                                        ld2(data, local(k), local(j), n),
                                    ),
                                ),
                            )],
                        ),
                        st2(
                            cov,
                            local(i),
                            local(j),
                            n,
                            div(ld2(cov, local(i), local(j), n), f64c(n as f64 - 1.0)),
                        ),
                        st2(cov, local(j), local(i), n, ld2(cov, local(i), local(j), n)),
                    ],
                )],
            ),
            set(cks, f64c(0.0)),
            for_i(
                i,
                0,
                i32c(n),
                vec![for_i(
                    j,
                    0,
                    i32c(n),
                    vec![set(cks, add(local(cks), ld2(cov, local(i), local(j), n)))],
                )],
            ),
        ]);
    })
}

fn native_covariance() -> f64 {
    let n = VN as usize;
    let mut data = vec![0.0f64; n * n];
    let mut cov = vec![0.0f64; n * n];
    let mut mean = vec![0.0f64; n];
    for i in 0..n {
        for j in 0..n {
            data[i * n + j] = (i * j) as f64 / n as f64;
        }
    }
    for j in 0..n {
        for i in 0..n {
            mean[j] += data[i * n + j];
        }
        mean[j] /= n as f64;
    }
    for i in 0..n {
        for j in 0..n {
            data[i * n + j] -= mean[j];
        }
    }
    for i in 0..n {
        for j in i..n {
            cov[i * n + j] = 0.0;
            for k in 0..n {
                cov[i * n + j] += data[k * n + i] * data[k * n + j];
            }
            cov[i * n + j] /= n as f64 - 1.0;
            cov[j * n + i] = cov[i * n + j];
        }
    }
    cov.iter().sum()
}

// --------------------------------------------------------------- deriche

const DW: i32 = 48;
const DH: i32 = 36;

pub(super) fn deriche() -> Kernel {
    Kernel {
        name: "deriche",
        build: build_deriche,
        native: native_deriche,
    }
}

// Deriche recursive edge filter coefficients for alpha = 0.25.
fn deriche_coeffs() -> (f64, [f64; 8], [f64; 4]) {
    let alpha = 0.25f64;
    let k = (1.0 - (-alpha).exp()) * (1.0 - (-alpha).exp())
        / (1.0 + 2.0 * alpha * (-alpha).exp() - (-2.0 * alpha).exp());
    let a1 = k;
    let a2 = k * (-alpha).exp() * (alpha - 1.0);
    let a3 = k * (-alpha).exp() * (alpha + 1.0);
    let a4 = -k * (-2.0 * alpha).exp();
    let b1 = 2.0f64.powf(-alpha); // deterministic stand-in: 2^-alpha
    let b2 = -(-2.0 * alpha).exp();
    let c1 = 1.0;
    let c2 = 1.0;
    (alpha, [a1, a2, a3, a4, a1, a2, a3, a4], [b1, b2, c1, c2])
}

fn build_deriche() -> sledge_wasm::module::Module {
    let (w, h) = (DW, DH);
    let img_in = A0;
    let y1 = A0 + 8 * w * h;
    let y2 = y1 + 8 * w * h;
    let img_out = y2 + 8 * w * h;
    let (_, a, bc) = deriche_coeffs();
    kernel_module("deriche", 4, |f, cks| {
        let i = f.local(I32);
        let j = f.local(I32);
        let ym1 = f.local(F64);
        let ym2 = f.local(F64);
        let xm1 = f.local(F64);
        let xp1 = f.local(F64);
        let xp2 = f.local(F64);
        let yp1 = f.local(F64);
        let yp2 = f.local(F64);
        f.extend([
            for_i(
                i,
                0,
                i32c(w),
                vec![for_i(
                    j,
                    0,
                    i32c(h),
                    vec![st2(
                        img_in,
                        local(i),
                        local(j),
                        h,
                        div(
                            i2d(rem(
                                add(mul(local(i), i32c(313)), mul(local(j), i32c(991))),
                                i32c(65536),
                            )),
                            f64c(65535.0),
                        ),
                    )],
                )],
            ),
            // Horizontal forward pass.
            for_i(
                i,
                0,
                i32c(w),
                vec![
                    set(ym1, f64c(0.0)),
                    set(ym2, f64c(0.0)),
                    set(xm1, f64c(0.0)),
                    for_i(
                        j,
                        0,
                        i32c(h),
                        vec![
                            st2(
                                y1,
                                local(i),
                                local(j),
                                h,
                                add(
                                    add(
                                        mul(f64c(a[0]), ld2(img_in, local(i), local(j), h)),
                                        mul(f64c(a[1]), local(xm1)),
                                    ),
                                    add(mul(f64c(bc[0]), local(ym1)), mul(f64c(bc[1]), local(ym2))),
                                ),
                            ),
                            set(xm1, ld2(img_in, local(i), local(j), h)),
                            set(ym2, local(ym1)),
                            set(ym1, ld2(y1, local(i), local(j), h)),
                        ],
                    ),
                ],
            ),
            // Horizontal backward pass.
            for_i(
                i,
                0,
                i32c(w),
                vec![
                    set(yp1, f64c(0.0)),
                    set(yp2, f64c(0.0)),
                    set(xp1, f64c(0.0)),
                    set(xp2, f64c(0.0)),
                    for_loop(
                        j,
                        i32c(h - 1),
                        ge_s(local(j), i32c(0)),
                        -1,
                        vec![
                            st2(
                                y2,
                                local(i),
                                local(j),
                                h,
                                add(
                                    add(mul(f64c(a[2]), local(xp1)), mul(f64c(a[3]), local(xp2))),
                                    add(mul(f64c(bc[0]), local(yp1)), mul(f64c(bc[1]), local(yp2))),
                                ),
                            ),
                            set(xp2, local(xp1)),
                            set(xp1, ld2(img_in, local(i), local(j), h)),
                            set(yp2, local(yp1)),
                            set(yp1, ld2(y2, local(i), local(j), h)),
                        ],
                    ),
                ],
            ),
            // Combine.
            for_i(
                i,
                0,
                i32c(w),
                vec![for_i(
                    j,
                    0,
                    i32c(h),
                    vec![st2(
                        img_out,
                        local(i),
                        local(j),
                        h,
                        mul(
                            f64c(bc[2]),
                            add(
                                ld2(y1, local(i), local(j), h),
                                ld2(y2, local(i), local(j), h),
                            ),
                        ),
                    )],
                )],
            ),
            set(cks, f64c(0.0)),
            for_i(
                i,
                0,
                i32c(w),
                vec![for_i(
                    j,
                    0,
                    i32c(h),
                    vec![set(
                        cks,
                        add(local(cks), ld2(img_out, local(i), local(j), h)),
                    )],
                )],
            ),
        ]);
    })
}

fn native_deriche() -> f64 {
    let (w, h) = (DW as usize, DH as usize);
    let (_, a, bc) = deriche_coeffs();
    let mut img_in = vec![0.0f64; w * h];
    let mut y1 = vec![0.0f64; w * h];
    let mut y2 = vec![0.0f64; w * h];
    for i in 0..w {
        for j in 0..h {
            img_in[i * h + j] = (((i * 313 + j * 991) % 65536) as f64) / 65535.0;
        }
    }
    for i in 0..w {
        let (mut ym1, mut ym2, mut xm1) = (0.0, 0.0, 0.0);
        for j in 0..h {
            y1[i * h + j] = a[0] * img_in[i * h + j] + a[1] * xm1 + (bc[0] * ym1 + bc[1] * ym2);
            xm1 = img_in[i * h + j];
            ym2 = ym1;
            ym1 = y1[i * h + j];
        }
    }
    for i in 0..w {
        let (mut yp1, mut yp2, mut xp1, mut xp2) = (0.0, 0.0, 0.0, 0.0);
        for j in (0..h).rev() {
            y2[i * h + j] = (a[2] * xp1 + a[3] * xp2) + (bc[0] * yp1 + bc[1] * yp2);
            xp2 = xp1;
            xp1 = img_in[i * h + j];
            yp2 = yp1;
            yp1 = y2[i * h + j];
        }
    }
    let mut cks = 0.0;
    for i in 0..w {
        for j in 0..h {
            cks += bc[2] * (y1[i * h + j] + y2[i * h + j]);
        }
    }
    cks
}

// -------------------------------------------------------- floyd-warshall

const FN: i32 = 26;

pub(super) fn floyd_warshall() -> Kernel {
    Kernel {
        name: "floyd-warshall",
        build: build_floyd,
        native: native_floyd,
    }
}

fn build_floyd() -> sledge_wasm::module::Module {
    let n = FN;
    let path = A0;
    kernel_module("floyd-warshall", 2, |f, cks| {
        let i = f.local(I32);
        let j = f.local(I32);
        let k = f.local(I32);
        let alt = f.local(F64);
        f.extend([
            for_i(
                i,
                0,
                i32c(n),
                vec![for_i(
                    j,
                    0,
                    i32c(n),
                    vec![st2(
                        path,
                        local(i),
                        local(j),
                        n,
                        select(
                            eq(
                                rem(
                                    add(mul(local(i), local(j)), add(local(i), local(j))),
                                    i32c(7),
                                ),
                                i32c(0),
                            ),
                            i2d(rem(add(mul(local(i), local(j)), i32c(1)), i32c(n))),
                            f64c(999.0),
                        ),
                    )],
                )],
            ),
            for_i(
                i,
                0,
                i32c(n),
                vec![st2(path, local(i), local(i), n, f64c(0.0))],
            ),
            for_i(
                k,
                0,
                i32c(n),
                vec![for_i(
                    i,
                    0,
                    i32c(n),
                    vec![for_i(
                        j,
                        0,
                        i32c(n),
                        vec![
                            set(
                                alt,
                                add(
                                    ld2(path, local(i), local(k), n),
                                    ld2(path, local(k), local(j), n),
                                ),
                            ),
                            if_(
                                lt_s(local(alt), ld2(path, local(i), local(j), n)),
                                vec![st2(path, local(i), local(j), n, local(alt))],
                            ),
                        ],
                    )],
                )],
            ),
            set(cks, f64c(0.0)),
            for_i(
                i,
                0,
                i32c(n),
                vec![for_i(
                    j,
                    0,
                    i32c(n),
                    vec![set(cks, add(local(cks), ld2(path, local(i), local(j), n)))],
                )],
            ),
        ]);
    })
}

fn native_floyd() -> f64 {
    let n = FN as usize;
    let mut path = vec![0.0f64; n * n];
    for i in 0..n {
        for j in 0..n {
            path[i * n + j] = if (i * j + i + j) % 7 == 0 {
                ((i * j + 1) % n) as f64
            } else {
                999.0
            };
        }
    }
    for i in 0..n {
        path[i * n + i] = 0.0;
    }
    for k in 0..n {
        for i in 0..n {
            for j in 0..n {
                let alt = path[i * n + k] + path[k * n + j];
                if alt < path[i * n + j] {
                    path[i * n + j] = alt;
                }
            }
        }
    }
    path.iter().sum()
}

// -------------------------------------------------------------- nussinov

const ZN: i32 = 30;

pub(super) fn nussinov() -> Kernel {
    Kernel {
        name: "nussinov",
        build: build_nussinov,
        native: native_nussinov,
    }
}

fn build_nussinov() -> sledge_wasm::module::Module {
    let n = ZN;
    let seq = A0; // i32 bases 0..3
    let table = A0 + 4 * n; // f64 DP table, aligned afterwards
    let tb = table + (8 - (table % 8)) % 8;
    kernel_module("nussinov", 2, |f, cks| {
        let i = f.local(I32);
        let j = f.local(I32);
        let k = f.local(I32);
        let best = f.local(F64);
        let cand = f.local(F64);
        let seq_at = |idx: Expr| {
            load(
                sledge_guestc::Scalar::I32,
                add(i32c(seq), mul(idx, i32c(4))),
                0,
            )
        };
        f.extend([
            for_i(
                i,
                0,
                i32c(n),
                vec![store(
                    sledge_guestc::Scalar::I32,
                    add(i32c(seq), mul(local(i), i32c(4))),
                    0,
                    rem(add(local(i), i32c(1)), i32c(4)),
                )],
            ),
            for_i(
                i,
                0,
                i32c(n),
                vec![for_i(
                    j,
                    0,
                    i32c(n),
                    vec![st2(tb, local(i), local(j), n, f64c(0.0))],
                )],
            ),
            // i from n-1 down to 0, j from i+1 to n-1.
            for_loop(
                i,
                i32c(n - 1),
                ge_s(local(i), i32c(0)),
                -1,
                vec![for_loop(
                    j,
                    add(local(i), i32c(1)),
                    lt_s(local(j), i32c(n)),
                    1,
                    vec![
                        set(best, ld2(tb, local(i), add(local(j), i32c(-1)), n)),
                        set(cand, ld2(tb, add(local(i), i32c(1)), local(j), n)),
                        if_(gt_s(local(cand), local(best)), vec![set(best, local(cand))]),
                        // pair (i, j) if complementary and separated.
                        if_(
                            gt_s(sub(local(j), local(i)), i32c(1)),
                            vec![
                                set(
                                    cand,
                                    add(
                                        ld2(tb, add(local(i), i32c(1)), sub(local(j), i32c(1)), n),
                                        select(
                                            eq(add(seq_at(local(i)), seq_at(local(j))), i32c(3)),
                                            f64c(1.0),
                                            f64c(0.0),
                                        ),
                                    ),
                                ),
                                if_(gt_s(local(cand), local(best)), vec![set(best, local(cand))]),
                            ],
                        ),
                        // split
                        for_loop(
                            k,
                            add(local(i), i32c(1)),
                            lt_s(local(k), local(j)),
                            1,
                            vec![
                                set(
                                    cand,
                                    add(
                                        ld2(tb, local(i), local(k), n),
                                        ld2(tb, add(local(k), i32c(1)), local(j), n),
                                    ),
                                ),
                                if_(gt_s(local(cand), local(best)), vec![set(best, local(cand))]),
                            ],
                        ),
                        st2(tb, local(i), local(j), n, local(best)),
                    ],
                )],
            ),
            set(cks, ld2(tb, i32c(0), i32c(n - 1), n)),
            // Add the whole table for a stronger checksum.
            for_i(
                i,
                0,
                i32c(n),
                vec![for_i(
                    j,
                    0,
                    i32c(n),
                    vec![set(cks, add(local(cks), ld2(tb, local(i), local(j), n)))],
                )],
            ),
        ]);
    })
}

fn native_nussinov() -> f64 {
    let n = ZN as usize;
    let seq: Vec<i32> = (0..n).map(|i| ((i + 1) % 4) as i32).collect();
    let mut tb = vec![0.0f64; n * n];
    for i in (0..n).rev() {
        for j in i + 1..n {
            let mut best = tb[i * n + (j - 1)];
            let cand = tb[(i + 1) * n + j];
            if cand > best {
                best = cand;
            }
            if j - i > 1 {
                let pair = if seq[i] + seq[j] == 3 { 1.0 } else { 0.0 };
                let cand = tb[(i + 1) * n + (j - 1)] + pair;
                if cand > best {
                    best = cand;
                }
            }
            for k in i + 1..j {
                let cand = tb[i * n + k] + tb[(k + 1) * n + j];
                if cand > best {
                    best = cand;
                }
            }
            tb[i * n + j] = best;
        }
    }
    let mut cks = tb[n - 1];
    for v in &tb {
        cks += v;
    }
    cks
}
