//! The PolyBench/C 4.2.1 kernel suite, re-implemented from the standard
//! mathematical kernel definitions — all 30 kernels, each in both the
//! `guestc` DSL (→ Wasm) and native Rust, used to regenerate the paper's
//! Figure 5 and Table 1.
//!
//! Every guest kernel initializes its arrays in-guest with the same
//! deterministic formulas as its native twin, runs the kernel, and responds
//! with an 8-byte f64 checksum (sum over the output arrays). Guest and
//! native use identical operation order, so checksums are bit-identical —
//! the cross-validation the whole Figure 5 comparison rests on.
//!
//! Problem sizes are scaled to interpreter-friendly values (between
//! PolyBench's MINI and SMALL datasets); the *relative* cost across engine
//! configurations is what Figure 5 measures.

mod blas;
mod datamining;
mod solvers;
mod stencils;

use crate::abi::Env;
use sledge_guestc::dsl::*;
use sledge_guestc::{Expr, FuncBuilder, Local, ModuleBuilder, Scalar, Stmt};
use sledge_wasm::module::Module;
use sledge_wasm::types::ValType;

/// One PolyBench kernel: DSL builder plus native twin.
#[derive(Clone, Copy)]
pub struct Kernel {
    /// PolyBench kernel name (paper Figure 5 x-axis).
    pub name: &'static str,
    /// Build the guest module (exports `main`, responds with the checksum).
    pub build: fn() -> Module,
    /// Native twin returning the same checksum.
    pub native: fn() -> f64,
}

impl std::fmt::Debug for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Kernel").field("name", &self.name).finish()
    }
}

/// All 30 kernels, in the paper's Figure 5 order.
pub fn kernels() -> Vec<Kernel> {
    vec![
        datamining::correlation(),
        datamining::covariance(),
        stencils::adi(),
        solvers::gramschmidt(),
        datamining::deriche(),
        blas::trmm(),
        stencils::seidel_2d(),
        blas::mvt(),
        blas::symm(),
        solvers::ludcmp(),
        blas::syr2k(),
        solvers::lu(),
        solvers::trisolv(),
        datamining::nussinov(),
        blas::doitgen(),
        blas::two_mm(),
        blas::gesummv(),
        blas::bicg(),
        blas::gemver(),
        solvers::cholesky(),
        blas::three_mm(),
        blas::atax(),
        blas::syrk(),
        datamining::floyd_warshall(),
        solvers::durbin(),
        stencils::heat_3d(),
        stencils::fdtd_2d(),
        stencils::jacobi_2d(),
        stencils::jacobi_1d(),
        blas::gemm(),
    ]
}

/// Look up a kernel by name.
pub fn kernel(name: &str) -> Option<Kernel> {
    kernels().into_iter().find(|k| k.name == name)
}

// ------------------------------------------------------------- framework

/// Base address for kernel arrays in guest memory.
pub(crate) const A0: i32 = 1024;

/// Response scratch address.
const OUT: i32 = 64;

/// Build a kernel module: `body` receives the function builder and a
/// pre-declared f64 `cks` local it must leave the checksum in.
pub(crate) fn kernel_module(
    name: &'static str,
    pages: u32,
    body: impl FnOnce(&mut FuncBuilder, Local),
) -> Module {
    let mut mb = ModuleBuilder::new(name);
    mb.memory(pages, Some(pages.max(4) * 2));
    let env: Env = crate::abi::import_env_response_only(&mut mb);
    let mut f = FuncBuilder::new(&[], Some(ValType::I32));
    let cks = f.local(ValType::F64);
    body(&mut f, cks);
    f.extend([
        store(Scalar::F64, i32c(OUT), 0, local(cks)),
        exec(call(env.response_write, vec![i32c(OUT), i32c(8)])),
        ret(Some(i32c(0))),
    ]);
    let main = mb.add_func("main", f);
    mb.export_func(main, "main");
    mb.build().unwrap_or_else(|e| panic!("{name}: {e}"))
}

/// Guest expression: `((i * a + j * b + c) % m) / m` as f64 — the standard
/// PolyBench-style initializer.
pub(crate) fn init_expr(i: Expr, a: i32, j: Expr, b: i32, c: i32, m: i32) -> Expr {
    div(
        i2d(rem(
            add(add(mul(i, i32c(a)), mul(j, i32c(b))), i32c(c)),
            i32c(m),
        )),
        f64c(m as f64),
    )
}

/// Native twin of [`init_expr`].
pub(crate) fn init_val(i: i64, a: i64, j: i64, b: i64, c: i64, m: i64) -> f64 {
    (((i * a + j * b + c) % m) as f64) / m as f64
}

/// Statement: plain `for i in lo..hi` loop over an i32 local.
pub(crate) fn for_i(i: Local, lo: i32, hi: Expr, body: Vec<Stmt>) -> Stmt {
    for_loop(i, i32c(lo), lt_s(local(i), hi), 1, body)
}

/// Run one kernel's guest and return the checksum it responded with.
/// Translates the module on every call; use [`PreparedKernel`] when timing
/// pure execution.
pub fn run_kernel_guest(k: &Kernel, tier: awsm::Tier, bounds: awsm::BoundsStrategy) -> f64 {
    let m = (k.build)();
    let out = crate::testutil::run_guest_config(&m, b"", tier, bounds);
    assert_eq!(out.len(), 8, "{}: checksum response", k.name);
    f64::from_le_bytes(out[0..8].try_into().expect("8 bytes"))
}

/// A kernel translated once ("linked and loaded"), ready for repeated
/// per-invocation instantiation — the state benchmarks should time.
pub struct PreparedKernel {
    module: std::sync::Arc<awsm::CompiledModule>,
    config: awsm::EngineConfig,
}

impl PreparedKernel {
    /// Translate `k` for the given configuration.
    pub fn new(k: &Kernel, tier: awsm::Tier, bounds: awsm::BoundsStrategy) -> Self {
        Self::with_options(k, tier, bounds, awsm::TranslateOptions::default().optimize)
    }

    /// Like [`Self::new`], but with explicit control over the translate-time
    /// dataflow optimizer — the opt-off baseline the benchmarks compare
    /// defaults against.
    pub fn with_options(
        k: &Kernel,
        tier: awsm::Tier,
        bounds: awsm::BoundsStrategy,
        optimize: bool,
    ) -> Self {
        let m = (k.build)();
        let opts = awsm::TranslateOptions {
            max_check_gap: awsm::DEFAULT_MAX_CHECK_GAP,
            optimize,
        };
        let module = std::sync::Arc::new(awsm::translate_with(&m, tier, opts).expect("translate"));
        PreparedKernel {
            module,
            config: awsm::EngineConfig {
                tier,
                bounds,
                ..Default::default()
            },
        }
    }

    /// The translated module, with its analysis report and cost
    /// certificate (`module().analysis.cost`).
    pub fn module(&self) -> &std::sync::Arc<awsm::CompiledModule> {
        &self.module
    }

    /// The engine configuration instances run under.
    pub fn config(&self) -> awsm::EngineConfig {
        self.config
    }

    /// Instantiate and run once; returns the checksum.
    pub fn run(&self) -> f64 {
        let mut inst =
            awsm::Instance::new(std::sync::Arc::clone(&self.module), self.config).expect("inst");
        let mut host = crate::testutil::BufferHost::new(Vec::new());
        inst.invoke_export("main", &[]).expect("invoke");
        loop {
            match inst.run(&mut host, u64::MAX) {
                awsm::StepResult::Complete(_) => {
                    return f64::from_le_bytes(host.response[0..8].try_into().expect("8 bytes"))
                }
                awsm::StepResult::Trapped(t) => panic!("kernel trapped: {t}"),
                _ => continue,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use awsm::{BoundsStrategy, Tier};

    #[test]
    fn all_kernels_build_and_validate() {
        let ks = kernels();
        assert_eq!(ks.len(), 30);
        let mut names = std::collections::HashSet::new();
        for k in &ks {
            assert!(names.insert(k.name), "duplicate kernel {}", k.name);
            let m = (k.build)();
            assert!(m.exported_func("main").is_some(), "{}", k.name);
        }
    }

    #[test]
    fn kernels_cross_validate_guest_vs_native() {
        for k in kernels() {
            let native = (k.native)();
            let guest = run_kernel_guest(&k, Tier::Optimized, BoundsStrategy::GuardRegion);
            assert!(
                native.is_finite(),
                "{}: non-finite native checksum {native}",
                k.name
            );
            assert_eq!(
                guest.to_bits(),
                native.to_bits(),
                "{}: guest {} != native {}",
                k.name,
                guest,
                native
            );
        }
    }

    #[test]
    fn sample_kernels_cross_validate_all_configs() {
        // A representative subset across every config (the full set under
        // every config would be slow in debug builds).
        for name in ["gemm", "jacobi-2d", "lu", "correlation", "nussinov"] {
            let k = kernel(name).expect(name);
            let native = (k.native)();
            for (tier, bounds) in [
                (Tier::Optimized, BoundsStrategy::Software),
                (Tier::Optimized, BoundsStrategy::MpxEmulated),
                (Tier::Naive, BoundsStrategy::GuardRegion),
            ] {
                let guest = run_kernel_guest(&k, tier, bounds);
                assert_eq!(
                    guest.to_bits(),
                    native.to_bits(),
                    "{name} under {tier:?}/{bounds:?}"
                );
            }
        }
    }

    #[test]
    fn kernel_lookup() {
        assert!(kernel("gemm").is_some());
        assert!(kernel("nope").is_none());
    }
}
