//! BLAS-shaped PolyBench kernels: gemm, 2mm, 3mm, atax, bicg, mvt, gemver,
//! gesummv, symm, syr2k, syrk, trmm, doitgen.
//!
//! Each kernel is written twice with identical operation order: once in the
//! guest DSL and once natively.

use super::{for_i, init_expr, init_val, kernel_module, Kernel, A0};
use crate::abi::{ld1, ld2, st1, st2};
use sledge_guestc::dsl::*;
use sledge_wasm::types::ValType::{F64, I32};

const ALPHA: f64 = 1.5;
const BETA: f64 = 1.2;

// ------------------------------------------------------------------ gemm

const GN: i32 = 28;

pub(super) fn gemm() -> Kernel {
    Kernel {
        name: "gemm",
        build: build_gemm,
        native: native_gemm,
    }
}

fn build_gemm() -> sledge_wasm::module::Module {
    let n = GN;
    let (a, b, c) = (A0, A0 + 8 * n * n, A0 + 16 * n * n);
    kernel_module("gemm", 2, |f, cks| {
        let i = f.local(I32);
        let j = f.local(I32);
        let k = f.local(I32);
        f.extend([
            for_i(
                i,
                0,
                i32c(n),
                vec![for_i(
                    j,
                    0,
                    i32c(n),
                    vec![
                        st2(
                            a,
                            local(i),
                            local(j),
                            n,
                            init_expr(local(i), 1, local(j), 1, 1, n),
                        ),
                        st2(
                            b,
                            local(i),
                            local(j),
                            n,
                            init_expr(local(i), 1, local(j), 2, 2, n),
                        ),
                        st2(
                            c,
                            local(i),
                            local(j),
                            n,
                            init_expr(local(i), 3, local(j), 1, 3, n),
                        ),
                    ],
                )],
            ),
            for_i(
                i,
                0,
                i32c(n),
                vec![for_i(
                    j,
                    0,
                    i32c(n),
                    vec![
                        st2(
                            c,
                            local(i),
                            local(j),
                            n,
                            mul(ld2(c, local(i), local(j), n), f64c(BETA)),
                        ),
                        for_i(
                            k,
                            0,
                            i32c(n),
                            vec![st2(
                                c,
                                local(i),
                                local(j),
                                n,
                                add(
                                    ld2(c, local(i), local(j), n),
                                    mul(
                                        mul(f64c(ALPHA), ld2(a, local(i), local(k), n)),
                                        ld2(b, local(k), local(j), n),
                                    ),
                                ),
                            )],
                        ),
                    ],
                )],
            ),
            set(cks, f64c(0.0)),
            for_i(
                i,
                0,
                i32c(n),
                vec![for_i(
                    j,
                    0,
                    i32c(n),
                    vec![set(cks, add(local(cks), ld2(c, local(i), local(j), n)))],
                )],
            ),
        ]);
    })
}

fn native_gemm() -> f64 {
    let n = GN as usize;
    let mut a = vec![0.0f64; n * n];
    let mut b = vec![0.0f64; n * n];
    let mut c = vec![0.0f64; n * n];
    for i in 0..n {
        for j in 0..n {
            a[i * n + j] = init_val(i as i64, 1, j as i64, 1, 1, GN as i64);
            b[i * n + j] = init_val(i as i64, 1, j as i64, 2, 2, GN as i64);
            c[i * n + j] = init_val(i as i64, 3, j as i64, 1, 3, GN as i64);
        }
    }
    for i in 0..n {
        for j in 0..n {
            c[i * n + j] *= BETA;
            for k in 0..n {
                c[i * n + j] += ALPHA * a[i * n + k] * b[k * n + j];
            }
        }
    }
    c.iter().sum()
}

// ------------------------------------------------------------------- 2mm

const TN: i32 = 22;

pub(super) fn two_mm() -> Kernel {
    Kernel {
        name: "2mm",
        build: build_2mm,
        native: native_2mm,
    }
}

fn build_2mm() -> sledge_wasm::module::Module {
    let n = TN;
    let (a, b, tmp, c, d) = (
        A0,
        A0 + 8 * n * n,
        A0 + 16 * n * n,
        A0 + 24 * n * n,
        A0 + 32 * n * n,
    );
    kernel_module("2mm", 2, |f, cks| {
        let i = f.local(I32);
        let j = f.local(I32);
        let k = f.local(I32);
        let acc = f.local(F64);
        f.extend([
            for_i(
                i,
                0,
                i32c(n),
                vec![for_i(
                    j,
                    0,
                    i32c(n),
                    vec![
                        st2(
                            a,
                            local(i),
                            local(j),
                            n,
                            init_expr(local(i), 1, local(j), 1, 0, n),
                        ),
                        st2(
                            b,
                            local(i),
                            local(j),
                            n,
                            init_expr(local(i), 1, local(j), 2, 1, n),
                        ),
                        st2(
                            c,
                            local(i),
                            local(j),
                            n,
                            init_expr(local(i), 3, local(j), 1, 2, n),
                        ),
                        st2(
                            d,
                            local(i),
                            local(j),
                            n,
                            init_expr(local(i), 2, local(j), 2, 3, n),
                        ),
                    ],
                )],
            ),
            // tmp = alpha A B
            for_i(
                i,
                0,
                i32c(n),
                vec![for_i(
                    j,
                    0,
                    i32c(n),
                    vec![
                        set(acc, f64c(0.0)),
                        for_i(
                            k,
                            0,
                            i32c(n),
                            vec![set(
                                acc,
                                add(
                                    local(acc),
                                    mul(
                                        mul(f64c(ALPHA), ld2(a, local(i), local(k), n)),
                                        ld2(b, local(k), local(j), n),
                                    ),
                                ),
                            )],
                        ),
                        st2(tmp, local(i), local(j), n, local(acc)),
                    ],
                )],
            ),
            // D = tmp C + beta D
            for_i(
                i,
                0,
                i32c(n),
                vec![for_i(
                    j,
                    0,
                    i32c(n),
                    vec![
                        st2(
                            d,
                            local(i),
                            local(j),
                            n,
                            mul(ld2(d, local(i), local(j), n), f64c(BETA)),
                        ),
                        for_i(
                            k,
                            0,
                            i32c(n),
                            vec![st2(
                                d,
                                local(i),
                                local(j),
                                n,
                                add(
                                    ld2(d, local(i), local(j), n),
                                    mul(
                                        ld2(tmp, local(i), local(k), n),
                                        ld2(c, local(k), local(j), n),
                                    ),
                                ),
                            )],
                        ),
                    ],
                )],
            ),
            set(cks, f64c(0.0)),
            for_i(
                i,
                0,
                i32c(n),
                vec![for_i(
                    j,
                    0,
                    i32c(n),
                    vec![set(cks, add(local(cks), ld2(d, local(i), local(j), n)))],
                )],
            ),
        ]);
    })
}

fn native_2mm() -> f64 {
    let n = TN as usize;
    let m = TN as i64;
    let mut a = vec![0.0; n * n];
    let mut b = vec![0.0; n * n];
    let mut tmp = vec![0.0; n * n];
    let mut c = vec![0.0; n * n];
    let mut d = vec![0.0; n * n];
    for i in 0..n {
        for j in 0..n {
            a[i * n + j] = init_val(i as i64, 1, j as i64, 1, 0, m);
            b[i * n + j] = init_val(i as i64, 1, j as i64, 2, 1, m);
            c[i * n + j] = init_val(i as i64, 3, j as i64, 1, 2, m);
            d[i * n + j] = init_val(i as i64, 2, j as i64, 2, 3, m);
        }
    }
    for i in 0..n {
        for j in 0..n {
            let mut acc = 0.0;
            for k in 0..n {
                acc += ALPHA * a[i * n + k] * b[k * n + j];
            }
            tmp[i * n + j] = acc;
        }
    }
    for i in 0..n {
        for j in 0..n {
            d[i * n + j] *= BETA;
            for k in 0..n {
                d[i * n + j] += tmp[i * n + k] * c[k * n + j];
            }
        }
    }
    d.iter().sum()
}

// ------------------------------------------------------------------- 3mm

const HN: i32 = 20;

pub(super) fn three_mm() -> Kernel {
    Kernel {
        name: "3mm",
        build: build_3mm,
        native: native_3mm,
    }
}

fn build_3mm() -> sledge_wasm::module::Module {
    let n = HN;
    let sz = 8 * n * n;
    let (a, b, c, d, e, fm, g) = (
        A0,
        A0 + sz,
        A0 + 2 * sz,
        A0 + 3 * sz,
        A0 + 4 * sz,
        A0 + 5 * sz,
        A0 + 6 * sz,
    );
    kernel_module("3mm", 2, |fb, cks| {
        let i = fb.local(I32);
        let j = fb.local(I32);
        let k = fb.local(I32);
        let acc = fb.local(F64);
        let mm = |x: i32,
                  y: i32,
                  z: i32,
                  i: sledge_guestc::Local,
                  j: sledge_guestc::Local,
                  k: sledge_guestc::Local,
                  acc: sledge_guestc::Local| {
            for_i(
                i,
                0,
                i32c(n),
                vec![for_i(
                    j,
                    0,
                    i32c(n),
                    vec![
                        set(acc, f64c(0.0)),
                        for_i(
                            k,
                            0,
                            i32c(n),
                            vec![set(
                                acc,
                                add(
                                    local(acc),
                                    mul(
                                        ld2(x, local(i), local(k), n),
                                        ld2(y, local(k), local(j), n),
                                    ),
                                ),
                            )],
                        ),
                        st2(z, local(i), local(j), n, local(acc)),
                    ],
                )],
            )
        };
        fb.extend([
            for_i(
                i,
                0,
                i32c(n),
                vec![for_i(
                    j,
                    0,
                    i32c(n),
                    vec![
                        st2(
                            a,
                            local(i),
                            local(j),
                            n,
                            init_expr(local(i), 1, local(j), 1, 0, n),
                        ),
                        st2(
                            b,
                            local(i),
                            local(j),
                            n,
                            init_expr(local(i), 1, local(j), 2, 1, n),
                        ),
                        st2(
                            c,
                            local(i),
                            local(j),
                            n,
                            init_expr(local(i), 3, local(j), 1, 3, n),
                        ),
                        st2(
                            d,
                            local(i),
                            local(j),
                            n,
                            init_expr(local(i), 2, local(j), 3, 2, n),
                        ),
                    ],
                )],
            ),
            mm(a, b, e, i, j, k, acc),  // E = A B
            mm(c, d, fm, i, j, k, acc), // F = C D
            mm(e, fm, g, i, j, k, acc), // G = E F
            set(cks, f64c(0.0)),
            for_i(
                i,
                0,
                i32c(n),
                vec![for_i(
                    j,
                    0,
                    i32c(n),
                    vec![set(cks, add(local(cks), ld2(g, local(i), local(j), n)))],
                )],
            ),
        ]);
    })
}

fn native_3mm() -> f64 {
    let n = HN as usize;
    let m = HN as i64;
    let mut a = vec![0.0; n * n];
    let mut b = vec![0.0; n * n];
    let mut c = vec![0.0; n * n];
    let mut d = vec![0.0; n * n];
    for i in 0..n {
        for j in 0..n {
            a[i * n + j] = init_val(i as i64, 1, j as i64, 1, 0, m);
            b[i * n + j] = init_val(i as i64, 1, j as i64, 2, 1, m);
            c[i * n + j] = init_val(i as i64, 3, j as i64, 1, 3, m);
            d[i * n + j] = init_val(i as i64, 2, j as i64, 3, 2, m);
        }
    }
    let mm = |x: &[f64], y: &[f64]| {
        let mut z = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                let mut acc = 0.0;
                for k in 0..n {
                    acc += x[i * n + k] * y[k * n + j];
                }
                z[i * n + j] = acc;
            }
        }
        z
    };
    let e = mm(&a, &b);
    let f = mm(&c, &d);
    let g = mm(&e, &f);
    g.iter().sum()
}

// ------------------------------------------------------------------ atax

const AN: i32 = 72;

pub(super) fn atax() -> Kernel {
    Kernel {
        name: "atax",
        build: build_atax,
        native: native_atax,
    }
}

fn build_atax() -> sledge_wasm::module::Module {
    let n = AN;
    let a = A0;
    let x = A0 + 8 * n * n;
    let y = x + 8 * n;
    let tmp = y + 8 * n;
    kernel_module("atax", 2, |f, cks| {
        let i = f.local(I32);
        let j = f.local(I32);
        let acc = f.local(F64);
        f.extend([
            for_i(
                i,
                0,
                i32c(n),
                vec![
                    st1(x, local(i), init_expr(local(i), 1, i32c(0), 0, 1, n)),
                    st1(y, local(i), f64c(0.0)),
                    for_i(
                        j,
                        0,
                        i32c(n),
                        vec![st2(
                            a,
                            local(i),
                            local(j),
                            n,
                            init_expr(local(i), 1, local(j), 1, 0, n),
                        )],
                    ),
                ],
            ),
            // y = A^T (A x)
            for_i(
                i,
                0,
                i32c(n),
                vec![
                    set(acc, f64c(0.0)),
                    for_i(
                        j,
                        0,
                        i32c(n),
                        vec![set(
                            acc,
                            add(
                                local(acc),
                                mul(ld2(a, local(i), local(j), n), ld1(x, local(j))),
                            ),
                        )],
                    ),
                    st1(tmp, local(i), local(acc)),
                ],
            ),
            for_i(
                i,
                0,
                i32c(n),
                vec![for_i(
                    j,
                    0,
                    i32c(n),
                    vec![st1(
                        y,
                        local(j),
                        add(
                            ld1(y, local(j)),
                            mul(ld2(a, local(i), local(j), n), ld1(tmp, local(i))),
                        ),
                    )],
                )],
            ),
            set(cks, f64c(0.0)),
            for_i(
                i,
                0,
                i32c(n),
                vec![set(cks, add(local(cks), ld1(y, local(i))))],
            ),
        ]);
    })
}

fn native_atax() -> f64 {
    let n = AN as usize;
    let m = AN as i64;
    let mut a = vec![0.0; n * n];
    let mut x = vec![0.0; n];
    let mut y = vec![0.0; n];
    let mut tmp = vec![0.0; n];
    for i in 0..n {
        x[i] = init_val(i as i64, 1, 0, 0, 1, m);
        for j in 0..n {
            a[i * n + j] = init_val(i as i64, 1, j as i64, 1, 0, m);
        }
    }
    for i in 0..n {
        let mut acc = 0.0;
        for j in 0..n {
            acc += a[i * n + j] * x[j];
        }
        tmp[i] = acc;
    }
    for i in 0..n {
        for j in 0..n {
            y[j] += a[i * n + j] * tmp[i];
        }
    }
    y.iter().sum()
}

// ------------------------------------------------------------------ bicg

const BN: i32 = 72;

pub(super) fn bicg() -> Kernel {
    Kernel {
        name: "bicg",
        build: build_bicg,
        native: native_bicg,
    }
}

fn build_bicg() -> sledge_wasm::module::Module {
    let n = BN;
    let a = A0;
    let p = A0 + 8 * n * n;
    let r = p + 8 * n;
    let q = r + 8 * n;
    let s = q + 8 * n;
    kernel_module("bicg", 2, |f, cks| {
        let i = f.local(I32);
        let j = f.local(I32);
        f.extend([
            for_i(
                i,
                0,
                i32c(n),
                vec![
                    st1(p, local(i), init_expr(local(i), 1, i32c(0), 0, 0, n)),
                    st1(r, local(i), init_expr(local(i), 2, i32c(0), 0, 1, n)),
                    st1(q, local(i), f64c(0.0)),
                    st1(s, local(i), f64c(0.0)),
                    for_i(
                        j,
                        0,
                        i32c(n),
                        vec![st2(
                            a,
                            local(i),
                            local(j),
                            n,
                            init_expr(local(i), 1, local(j), 2, 0, n),
                        )],
                    ),
                ],
            ),
            for_i(
                i,
                0,
                i32c(n),
                vec![for_i(
                    j,
                    0,
                    i32c(n),
                    vec![
                        st1(
                            s,
                            local(j),
                            add(
                                ld1(s, local(j)),
                                mul(ld1(r, local(i)), ld2(a, local(i), local(j), n)),
                            ),
                        ),
                        st1(
                            q,
                            local(i),
                            add(
                                ld1(q, local(i)),
                                mul(ld2(a, local(i), local(j), n), ld1(p, local(j))),
                            ),
                        ),
                    ],
                )],
            ),
            set(cks, f64c(0.0)),
            for_i(
                i,
                0,
                i32c(n),
                vec![set(
                    cks,
                    add(local(cks), add(ld1(q, local(i)), ld1(s, local(i)))),
                )],
            ),
        ]);
    })
}

fn native_bicg() -> f64 {
    let n = BN as usize;
    let m = BN as i64;
    let mut a = vec![0.0; n * n];
    let mut p = vec![0.0; n];
    let mut r = vec![0.0; n];
    let mut q = vec![0.0; n];
    let mut s = vec![0.0; n];
    for i in 0..n {
        p[i] = init_val(i as i64, 1, 0, 0, 0, m);
        r[i] = init_val(i as i64, 2, 0, 0, 1, m);
        for j in 0..n {
            a[i * n + j] = init_val(i as i64, 1, j as i64, 2, 0, m);
        }
    }
    for i in 0..n {
        for j in 0..n {
            s[j] += r[i] * a[i * n + j];
            q[i] += a[i * n + j] * p[j];
        }
    }
    (0..n).map(|i| q[i] + s[i]).sum()
}

// ------------------------------------------------------------------- mvt

const MN: i32 = 80;

pub(super) fn mvt() -> Kernel {
    Kernel {
        name: "mvt",
        build: build_mvt,
        native: native_mvt,
    }
}

fn build_mvt() -> sledge_wasm::module::Module {
    let n = MN;
    let a = A0;
    let x1 = A0 + 8 * n * n;
    let x2 = x1 + 8 * n;
    let y1 = x2 + 8 * n;
    let y2 = y1 + 8 * n;
    kernel_module("mvt", 2, |f, cks| {
        let i = f.local(I32);
        let j = f.local(I32);
        f.extend([
            for_i(
                i,
                0,
                i32c(n),
                vec![
                    st1(x1, local(i), init_expr(local(i), 1, i32c(0), 0, 0, n)),
                    st1(x2, local(i), init_expr(local(i), 1, i32c(0), 0, 1, n)),
                    st1(y1, local(i), init_expr(local(i), 3, i32c(0), 0, 2, n)),
                    st1(y2, local(i), init_expr(local(i), 2, i32c(0), 0, 3, n)),
                    for_i(
                        j,
                        0,
                        i32c(n),
                        vec![st2(
                            a,
                            local(i),
                            local(j),
                            n,
                            init_expr(local(i), 1, local(j), 1, 0, n),
                        )],
                    ),
                ],
            ),
            for_i(
                i,
                0,
                i32c(n),
                vec![for_i(
                    j,
                    0,
                    i32c(n),
                    vec![st1(
                        x1,
                        local(i),
                        add(
                            ld1(x1, local(i)),
                            mul(ld2(a, local(i), local(j), n), ld1(y1, local(j))),
                        ),
                    )],
                )],
            ),
            for_i(
                i,
                0,
                i32c(n),
                vec![for_i(
                    j,
                    0,
                    i32c(n),
                    vec![st1(
                        x2,
                        local(i),
                        add(
                            ld1(x2, local(i)),
                            mul(ld2(a, local(j), local(i), n), ld1(y2, local(j))),
                        ),
                    )],
                )],
            ),
            set(cks, f64c(0.0)),
            for_i(
                i,
                0,
                i32c(n),
                vec![set(
                    cks,
                    add(local(cks), add(ld1(x1, local(i)), ld1(x2, local(i)))),
                )],
            ),
        ]);
    })
}

fn native_mvt() -> f64 {
    let n = MN as usize;
    let m = MN as i64;
    let mut a = vec![0.0; n * n];
    let mut x1 = vec![0.0; n];
    let mut x2 = vec![0.0; n];
    let mut y1 = vec![0.0; n];
    let mut y2 = vec![0.0; n];
    for i in 0..n {
        x1[i] = init_val(i as i64, 1, 0, 0, 0, m);
        x2[i] = init_val(i as i64, 1, 0, 0, 1, m);
        y1[i] = init_val(i as i64, 3, 0, 0, 2, m);
        y2[i] = init_val(i as i64, 2, 0, 0, 3, m);
        for j in 0..n {
            a[i * n + j] = init_val(i as i64, 1, j as i64, 1, 0, m);
        }
    }
    for i in 0..n {
        for j in 0..n {
            x1[i] += a[i * n + j] * y1[j];
        }
    }
    for i in 0..n {
        for j in 0..n {
            x2[i] += a[j * n + i] * y2[j];
        }
    }
    (0..n).map(|i| x1[i] + x2[i]).sum()
}

// ---------------------------------------------------------------- gemver

const VN: i32 = 64;

pub(super) fn gemver() -> Kernel {
    Kernel {
        name: "gemver",
        build: build_gemver,
        native: native_gemver,
    }
}

fn build_gemver() -> sledge_wasm::module::Module {
    let n = VN;
    let a = A0;
    let u1 = A0 + 8 * n * n;
    let v1 = u1 + 8 * n;
    let u2 = v1 + 8 * n;
    let v2 = u2 + 8 * n;
    let w = v2 + 8 * n;
    let x = w + 8 * n;
    let y = x + 8 * n;
    let z = y + 8 * n;
    kernel_module("gemver", 2, |f, cks| {
        let i = f.local(I32);
        let j = f.local(I32);
        f.extend([
            for_i(
                i,
                0,
                i32c(n),
                vec![
                    st1(u1, local(i), init_expr(local(i), 1, i32c(0), 0, 0, n)),
                    st1(u2, local(i), init_expr(local(i), 2, i32c(0), 0, 1, n)),
                    st1(v1, local(i), init_expr(local(i), 3, i32c(0), 0, 2, n)),
                    st1(v2, local(i), init_expr(local(i), 1, i32c(0), 0, 3, n)),
                    st1(y, local(i), init_expr(local(i), 2, i32c(0), 0, 4, n)),
                    st1(z, local(i), init_expr(local(i), 3, i32c(0), 0, 5, n)),
                    st1(x, local(i), f64c(0.0)),
                    st1(w, local(i), f64c(0.0)),
                    for_i(
                        j,
                        0,
                        i32c(n),
                        vec![st2(
                            a,
                            local(i),
                            local(j),
                            n,
                            init_expr(local(i), 1, local(j), 1, 0, n),
                        )],
                    ),
                ],
            ),
            // A = A + u1 v1^T + u2 v2^T
            for_i(
                i,
                0,
                i32c(n),
                vec![for_i(
                    j,
                    0,
                    i32c(n),
                    vec![st2(
                        a,
                        local(i),
                        local(j),
                        n,
                        add(
                            ld2(a, local(i), local(j), n),
                            add(
                                mul(ld1(u1, local(i)), ld1(v1, local(j))),
                                mul(ld1(u2, local(i)), ld1(v2, local(j))),
                            ),
                        ),
                    )],
                )],
            ),
            // x = x + beta A^T y + z
            for_i(
                i,
                0,
                i32c(n),
                vec![for_i(
                    j,
                    0,
                    i32c(n),
                    vec![st1(
                        x,
                        local(i),
                        add(
                            ld1(x, local(i)),
                            mul(
                                mul(f64c(BETA), ld2(a, local(j), local(i), n)),
                                ld1(y, local(j)),
                            ),
                        ),
                    )],
                )],
            ),
            for_i(
                i,
                0,
                i32c(n),
                vec![st1(x, local(i), add(ld1(x, local(i)), ld1(z, local(i))))],
            ),
            // w = alpha A x
            for_i(
                i,
                0,
                i32c(n),
                vec![for_i(
                    j,
                    0,
                    i32c(n),
                    vec![st1(
                        w,
                        local(i),
                        add(
                            ld1(w, local(i)),
                            mul(
                                mul(f64c(ALPHA), ld2(a, local(i), local(j), n)),
                                ld1(x, local(j)),
                            ),
                        ),
                    )],
                )],
            ),
            set(cks, f64c(0.0)),
            for_i(
                i,
                0,
                i32c(n),
                vec![set(cks, add(local(cks), ld1(w, local(i))))],
            ),
        ]);
    })
}

fn native_gemver() -> f64 {
    let n = VN as usize;
    let m = VN as i64;
    let mut a = vec![0.0; n * n];
    let mut u1 = vec![0.0; n];
    let mut v1 = vec![0.0; n];
    let mut u2 = vec![0.0; n];
    let mut v2 = vec![0.0; n];
    let mut w = vec![0.0; n];
    let mut x = vec![0.0; n];
    let mut y = vec![0.0; n];
    let mut z = vec![0.0; n];
    for i in 0..n {
        u1[i] = init_val(i as i64, 1, 0, 0, 0, m);
        u2[i] = init_val(i as i64, 2, 0, 0, 1, m);
        v1[i] = init_val(i as i64, 3, 0, 0, 2, m);
        v2[i] = init_val(i as i64, 1, 0, 0, 3, m);
        y[i] = init_val(i as i64, 2, 0, 0, 4, m);
        z[i] = init_val(i as i64, 3, 0, 0, 5, m);
        for j in 0..n {
            a[i * n + j] = init_val(i as i64, 1, j as i64, 1, 0, m);
        }
    }
    for i in 0..n {
        for j in 0..n {
            a[i * n + j] += u1[i] * v1[j] + u2[i] * v2[j];
        }
    }
    for i in 0..n {
        for j in 0..n {
            x[i] += BETA * a[j * n + i] * y[j];
        }
    }
    for i in 0..n {
        x[i] += z[i];
    }
    for i in 0..n {
        for j in 0..n {
            w[i] += ALPHA * a[i * n + j] * x[j];
        }
    }
    w.iter().sum()
}

// --------------------------------------------------------------- gesummv

const SN: i32 = 64;

pub(super) fn gesummv() -> Kernel {
    Kernel {
        name: "gesummv",
        build: build_gesummv,
        native: native_gesummv,
    }
}

fn build_gesummv() -> sledge_wasm::module::Module {
    let n = SN;
    let a = A0;
    let b = A0 + 8 * n * n;
    let x = b + 8 * n * n;
    let y = x + 8 * n;
    let tmp = y + 8 * n;
    kernel_module("gesummv", 2, |f, cks| {
        let i = f.local(I32);
        let j = f.local(I32);
        f.extend([
            for_i(
                i,
                0,
                i32c(n),
                vec![
                    st1(x, local(i), init_expr(local(i), 1, i32c(0), 0, 0, n)),
                    for_i(
                        j,
                        0,
                        i32c(n),
                        vec![
                            st2(
                                a,
                                local(i),
                                local(j),
                                n,
                                init_expr(local(i), 1, local(j), 1, 0, n),
                            ),
                            st2(
                                b,
                                local(i),
                                local(j),
                                n,
                                init_expr(local(i), 2, local(j), 1, 1, n),
                            ),
                        ],
                    ),
                ],
            ),
            for_i(
                i,
                0,
                i32c(n),
                vec![
                    st1(tmp, local(i), f64c(0.0)),
                    st1(y, local(i), f64c(0.0)),
                    for_i(
                        j,
                        0,
                        i32c(n),
                        vec![
                            st1(
                                tmp,
                                local(i),
                                add(
                                    mul(ld2(a, local(i), local(j), n), ld1(x, local(j))),
                                    ld1(tmp, local(i)),
                                ),
                            ),
                            st1(
                                y,
                                local(i),
                                add(
                                    mul(ld2(b, local(i), local(j), n), ld1(x, local(j))),
                                    ld1(y, local(i)),
                                ),
                            ),
                        ],
                    ),
                    st1(
                        y,
                        local(i),
                        add(
                            mul(f64c(ALPHA), ld1(tmp, local(i))),
                            mul(f64c(BETA), ld1(y, local(i))),
                        ),
                    ),
                ],
            ),
            set(cks, f64c(0.0)),
            for_i(
                i,
                0,
                i32c(n),
                vec![set(cks, add(local(cks), ld1(y, local(i))))],
            ),
        ]);
    })
}

fn native_gesummv() -> f64 {
    let n = SN as usize;
    let m = SN as i64;
    let mut a = vec![0.0; n * n];
    let mut b = vec![0.0; n * n];
    let mut x = vec![0.0; n];
    let mut y = vec![0.0; n];
    let mut tmp = vec![0.0; n];
    for i in 0..n {
        x[i] = init_val(i as i64, 1, 0, 0, 0, m);
        for j in 0..n {
            a[i * n + j] = init_val(i as i64, 1, j as i64, 1, 0, m);
            b[i * n + j] = init_val(i as i64, 2, j as i64, 1, 1, m);
        }
    }
    for i in 0..n {
        tmp[i] = 0.0;
        y[i] = 0.0;
        for j in 0..n {
            tmp[i] = a[i * n + j] * x[j] + tmp[i];
            y[i] = b[i * n + j] * x[j] + y[i];
        }
        y[i] = ALPHA * tmp[i] + BETA * y[i];
    }
    y.iter().sum()
}

// ------------------------------------------------------------------ symm

const YN: i32 = 24;

pub(super) fn symm() -> Kernel {
    Kernel {
        name: "symm",
        build: build_symm,
        native: native_symm,
    }
}

fn build_symm() -> sledge_wasm::module::Module {
    let n = YN;
    let a = A0;
    let b = A0 + 8 * n * n;
    let c = b + 8 * n * n;
    kernel_module("symm", 2, |f, cks| {
        let i = f.local(I32);
        let j = f.local(I32);
        let k = f.local(I32);
        let temp2 = f.local(F64);
        f.extend([
            for_i(
                i,
                0,
                i32c(n),
                vec![for_i(
                    j,
                    0,
                    i32c(n),
                    vec![
                        st2(
                            a,
                            local(i),
                            local(j),
                            n,
                            init_expr(local(i), 1, local(j), 1, 0, n),
                        ),
                        st2(
                            b,
                            local(i),
                            local(j),
                            n,
                            init_expr(local(i), 2, local(j), 1, 1, n),
                        ),
                        st2(
                            c,
                            local(i),
                            local(j),
                            n,
                            init_expr(local(i), 1, local(j), 2, 2, n),
                        ),
                    ],
                )],
            ),
            // symm (lower): C = alpha A B + beta C with A symmetric.
            for_i(
                i,
                0,
                i32c(n),
                vec![for_i(
                    j,
                    0,
                    i32c(n),
                    vec![
                        set(temp2, f64c(0.0)),
                        for_i(
                            k,
                            0,
                            local(i),
                            vec![
                                st2(
                                    c,
                                    local(k),
                                    local(j),
                                    n,
                                    add(
                                        ld2(c, local(k), local(j), n),
                                        mul(
                                            mul(f64c(ALPHA), ld2(b, local(i), local(j), n)),
                                            ld2(a, local(i), local(k), n),
                                        ),
                                    ),
                                ),
                                set(
                                    temp2,
                                    add(
                                        local(temp2),
                                        mul(
                                            ld2(b, local(k), local(j), n),
                                            ld2(a, local(i), local(k), n),
                                        ),
                                    ),
                                ),
                            ],
                        ),
                        st2(
                            c,
                            local(i),
                            local(j),
                            n,
                            add(
                                add(
                                    mul(f64c(BETA), ld2(c, local(i), local(j), n)),
                                    mul(
                                        mul(f64c(ALPHA), ld2(b, local(i), local(j), n)),
                                        ld2(a, local(i), local(i), n),
                                    ),
                                ),
                                mul(f64c(ALPHA), local(temp2)),
                            ),
                        ),
                    ],
                )],
            ),
            set(cks, f64c(0.0)),
            for_i(
                i,
                0,
                i32c(n),
                vec![for_i(
                    j,
                    0,
                    i32c(n),
                    vec![set(cks, add(local(cks), ld2(c, local(i), local(j), n)))],
                )],
            ),
        ]);
    })
}

fn native_symm() -> f64 {
    let n = YN as usize;
    let m = YN as i64;
    let mut a = vec![0.0; n * n];
    let mut b = vec![0.0; n * n];
    let mut c = vec![0.0; n * n];
    for i in 0..n {
        for j in 0..n {
            a[i * n + j] = init_val(i as i64, 1, j as i64, 1, 0, m);
            b[i * n + j] = init_val(i as i64, 2, j as i64, 1, 1, m);
            c[i * n + j] = init_val(i as i64, 1, j as i64, 2, 2, m);
        }
    }
    for i in 0..n {
        for j in 0..n {
            let mut temp2 = 0.0;
            for k in 0..i {
                c[k * n + j] += ALPHA * b[i * n + j] * a[i * n + k];
                temp2 += b[k * n + j] * a[i * n + k];
            }
            c[i * n + j] =
                BETA * c[i * n + j] + ALPHA * b[i * n + j] * a[i * n + i] + ALPHA * temp2;
        }
    }
    c.iter().sum()
}

// ----------------------------------------------------------------- syr2k

const KN: i32 = 24;

pub(super) fn syr2k() -> Kernel {
    Kernel {
        name: "syr2k",
        build: build_syr2k,
        native: native_syr2k,
    }
}

fn build_syr2k() -> sledge_wasm::module::Module {
    let n = KN;
    let a = A0;
    let b = A0 + 8 * n * n;
    let c = b + 8 * n * n;
    kernel_module("syr2k", 2, |f, cks| {
        let i = f.local(I32);
        let j = f.local(I32);
        let k = f.local(I32);
        f.extend([
            for_i(
                i,
                0,
                i32c(n),
                vec![for_i(
                    j,
                    0,
                    i32c(n),
                    vec![
                        st2(
                            a,
                            local(i),
                            local(j),
                            n,
                            init_expr(local(i), 1, local(j), 1, 0, n),
                        ),
                        st2(
                            b,
                            local(i),
                            local(j),
                            n,
                            init_expr(local(i), 2, local(j), 1, 1, n),
                        ),
                        st2(
                            c,
                            local(i),
                            local(j),
                            n,
                            init_expr(local(i), 1, local(j), 3, 2, n),
                        ),
                    ],
                )],
            ),
            // Lower triangle: C = alpha (A B^T + B A^T) + beta C.
            for_i(
                i,
                0,
                i32c(n),
                vec![
                    for_loop(
                        j,
                        i32c(0),
                        le_s(local(j), local(i)),
                        1,
                        vec![st2(
                            c,
                            local(i),
                            local(j),
                            n,
                            mul(ld2(c, local(i), local(j), n), f64c(BETA)),
                        )],
                    ),
                    for_i(
                        k,
                        0,
                        i32c(n),
                        vec![for_loop(
                            j,
                            i32c(0),
                            le_s(local(j), local(i)),
                            1,
                            vec![st2(
                                c,
                                local(i),
                                local(j),
                                n,
                                add(
                                    ld2(c, local(i), local(j), n),
                                    add(
                                        mul(
                                            mul(ld2(a, local(j), local(k), n), f64c(ALPHA)),
                                            ld2(b, local(i), local(k), n),
                                        ),
                                        mul(
                                            mul(ld2(b, local(j), local(k), n), f64c(ALPHA)),
                                            ld2(a, local(i), local(k), n),
                                        ),
                                    ),
                                ),
                            )],
                        )],
                    ),
                ],
            ),
            set(cks, f64c(0.0)),
            for_i(
                i,
                0,
                i32c(n),
                vec![for_i(
                    j,
                    0,
                    i32c(n),
                    vec![set(cks, add(local(cks), ld2(c, local(i), local(j), n)))],
                )],
            ),
        ]);
    })
}

fn native_syr2k() -> f64 {
    let n = KN as usize;
    let m = KN as i64;
    let mut a = vec![0.0; n * n];
    let mut b = vec![0.0; n * n];
    let mut c = vec![0.0; n * n];
    for i in 0..n {
        for j in 0..n {
            a[i * n + j] = init_val(i as i64, 1, j as i64, 1, 0, m);
            b[i * n + j] = init_val(i as i64, 2, j as i64, 1, 1, m);
            c[i * n + j] = init_val(i as i64, 1, j as i64, 3, 2, m);
        }
    }
    for i in 0..n {
        for j in 0..=i {
            c[i * n + j] *= BETA;
        }
        for k in 0..n {
            for j in 0..=i {
                c[i * n + j] +=
                    a[j * n + k] * ALPHA * b[i * n + k] + b[j * n + k] * ALPHA * a[i * n + k];
            }
        }
    }
    c.iter().sum()
}

// ------------------------------------------------------------------ syrk

const RN: i32 = 26;

pub(super) fn syrk() -> Kernel {
    Kernel {
        name: "syrk",
        build: build_syrk,
        native: native_syrk,
    }
}

fn build_syrk() -> sledge_wasm::module::Module {
    let n = RN;
    let a = A0;
    let c = A0 + 8 * n * n;
    kernel_module("syrk", 2, |f, cks| {
        let i = f.local(I32);
        let j = f.local(I32);
        let k = f.local(I32);
        f.extend([
            for_i(
                i,
                0,
                i32c(n),
                vec![for_i(
                    j,
                    0,
                    i32c(n),
                    vec![
                        st2(
                            a,
                            local(i),
                            local(j),
                            n,
                            init_expr(local(i), 1, local(j), 1, 0, n),
                        ),
                        st2(
                            c,
                            local(i),
                            local(j),
                            n,
                            init_expr(local(i), 2, local(j), 1, 1, n),
                        ),
                    ],
                )],
            ),
            for_i(
                i,
                0,
                i32c(n),
                vec![
                    for_loop(
                        j,
                        i32c(0),
                        le_s(local(j), local(i)),
                        1,
                        vec![st2(
                            c,
                            local(i),
                            local(j),
                            n,
                            mul(ld2(c, local(i), local(j), n), f64c(BETA)),
                        )],
                    ),
                    for_i(
                        k,
                        0,
                        i32c(n),
                        vec![for_loop(
                            j,
                            i32c(0),
                            le_s(local(j), local(i)),
                            1,
                            vec![st2(
                                c,
                                local(i),
                                local(j),
                                n,
                                add(
                                    ld2(c, local(i), local(j), n),
                                    mul(
                                        mul(f64c(ALPHA), ld2(a, local(i), local(k), n)),
                                        ld2(a, local(j), local(k), n),
                                    ),
                                ),
                            )],
                        )],
                    ),
                ],
            ),
            set(cks, f64c(0.0)),
            for_i(
                i,
                0,
                i32c(n),
                vec![for_i(
                    j,
                    0,
                    i32c(n),
                    vec![set(cks, add(local(cks), ld2(c, local(i), local(j), n)))],
                )],
            ),
        ]);
    })
}

fn native_syrk() -> f64 {
    let n = RN as usize;
    let m = RN as i64;
    let mut a = vec![0.0; n * n];
    let mut c = vec![0.0; n * n];
    for i in 0..n {
        for j in 0..n {
            a[i * n + j] = init_val(i as i64, 1, j as i64, 1, 0, m);
            c[i * n + j] = init_val(i as i64, 2, j as i64, 1, 1, m);
        }
    }
    for i in 0..n {
        for j in 0..=i {
            c[i * n + j] *= BETA;
        }
        for k in 0..n {
            for j in 0..=i {
                c[i * n + j] += ALPHA * a[i * n + k] * a[j * n + k];
            }
        }
    }
    c.iter().sum()
}

// ------------------------------------------------------------------ trmm

const WN: i32 = 26;

pub(super) fn trmm() -> Kernel {
    Kernel {
        name: "trmm",
        build: build_trmm,
        native: native_trmm,
    }
}

fn build_trmm() -> sledge_wasm::module::Module {
    let n = WN;
    let a = A0;
    let b = A0 + 8 * n * n;
    kernel_module("trmm", 2, |f, cks| {
        let i = f.local(I32);
        let j = f.local(I32);
        let k = f.local(I32);
        f.extend([
            for_i(
                i,
                0,
                i32c(n),
                vec![for_i(
                    j,
                    0,
                    i32c(n),
                    vec![
                        st2(
                            a,
                            local(i),
                            local(j),
                            n,
                            init_expr(local(i), 1, local(j), 1, 0, n),
                        ),
                        st2(
                            b,
                            local(i),
                            local(j),
                            n,
                            init_expr(local(i), 3, local(j), 1, 1, n),
                        ),
                    ],
                )],
            ),
            // B = alpha A^T B, A lower-unit-triangular.
            for_i(
                i,
                0,
                i32c(n),
                vec![for_i(
                    j,
                    0,
                    i32c(n),
                    vec![
                        for_loop(
                            k,
                            add(local(i), i32c(1)),
                            lt_s(local(k), i32c(n)),
                            1,
                            vec![st2(
                                b,
                                local(i),
                                local(j),
                                n,
                                add(
                                    ld2(b, local(i), local(j), n),
                                    mul(
                                        ld2(a, local(k), local(i), n),
                                        ld2(b, local(k), local(j), n),
                                    ),
                                ),
                            )],
                        ),
                        st2(
                            b,
                            local(i),
                            local(j),
                            n,
                            mul(f64c(ALPHA), ld2(b, local(i), local(j), n)),
                        ),
                    ],
                )],
            ),
            set(cks, f64c(0.0)),
            for_i(
                i,
                0,
                i32c(n),
                vec![for_i(
                    j,
                    0,
                    i32c(n),
                    vec![set(cks, add(local(cks), ld2(b, local(i), local(j), n)))],
                )],
            ),
        ]);
    })
}

fn native_trmm() -> f64 {
    let n = WN as usize;
    let m = WN as i64;
    let mut a = vec![0.0; n * n];
    let mut b = vec![0.0; n * n];
    for i in 0..n {
        for j in 0..n {
            a[i * n + j] = init_val(i as i64, 1, j as i64, 1, 0, m);
            b[i * n + j] = init_val(i as i64, 3, j as i64, 1, 1, m);
        }
    }
    for i in 0..n {
        for j in 0..n {
            for k in i + 1..n {
                b[i * n + j] += a[k * n + i] * b[k * n + j];
            }
            b[i * n + j] *= ALPHA;
        }
    }
    b.iter().sum()
}

// --------------------------------------------------------------- doitgen

const DQ: i32 = 14;

pub(super) fn doitgen() -> Kernel {
    Kernel {
        name: "doitgen",
        build: build_doitgen,
        native: native_doitgen,
    }
}

fn build_doitgen() -> sledge_wasm::module::Module {
    let n = DQ; // NR = NQ = NP = n
    let a = A0; // [r][q][p]
    let c4 = A0 + 8 * n * n * n; // [p][p]
    let sum = c4 + 8 * n * n; // [p]
    kernel_module("doitgen", 2, |f, cks| {
        let r = f.local(I32);
        let q = f.local(I32);
        let p = f.local(I32);
        let s = f.local(I32);
        let a3 = |rv: sledge_guestc::Local, qv: sledge_guestc::Local, pv: Expr| {
            add(
                i32c(a),
                mul(
                    add(mul(add(mul(local(rv), i32c(n)), local(qv)), i32c(n)), pv),
                    i32c(8),
                ),
            )
        };
        f.extend([
            for_i(
                r,
                0,
                i32c(n),
                vec![for_i(
                    q,
                    0,
                    i32c(n),
                    vec![for_i(
                        p,
                        0,
                        i32c(n),
                        vec![store(
                            sledge_guestc::Scalar::F64,
                            a3(r, q, local(p)),
                            0,
                            init_expr(add(mul(local(r), i32c(n)), local(q)), 1, local(p), 1, 0, n),
                        )],
                    )],
                )],
            ),
            for_i(
                p,
                0,
                i32c(n),
                vec![for_i(
                    s,
                    0,
                    i32c(n),
                    vec![st2(
                        c4,
                        local(p),
                        local(s),
                        n,
                        init_expr(local(p), 1, local(s), 2, 1, n),
                    )],
                )],
            ),
            for_i(
                r,
                0,
                i32c(n),
                vec![for_i(
                    q,
                    0,
                    i32c(n),
                    vec![
                        for_i(
                            p,
                            0,
                            i32c(n),
                            vec![
                                st1(sum, local(p), f64c(0.0)),
                                for_i(
                                    s,
                                    0,
                                    i32c(n),
                                    vec![st1(
                                        sum,
                                        local(p),
                                        add(
                                            ld1(sum, local(p)),
                                            mul(
                                                load(
                                                    sledge_guestc::Scalar::F64,
                                                    a3(r, q, local(s)),
                                                    0,
                                                ),
                                                ld2(c4, local(s), local(p), n),
                                            ),
                                        ),
                                    )],
                                ),
                            ],
                        ),
                        for_i(
                            p,
                            0,
                            i32c(n),
                            vec![store(
                                sledge_guestc::Scalar::F64,
                                a3(r, q, local(p)),
                                0,
                                ld1(sum, local(p)),
                            )],
                        ),
                    ],
                )],
            ),
            set(cks, f64c(0.0)),
            for_i(
                r,
                0,
                i32c(n),
                vec![for_i(
                    q,
                    0,
                    i32c(n),
                    vec![for_i(
                        p,
                        0,
                        i32c(n),
                        vec![set(
                            cks,
                            add(
                                local(cks),
                                load(sledge_guestc::Scalar::F64, a3(r, q, local(p)), 0),
                            ),
                        )],
                    )],
                )],
            ),
        ]);
    })
}

fn native_doitgen() -> f64 {
    let n = DQ as usize;
    let m = DQ as i64;
    let mut a = vec![0.0; n * n * n];
    let mut c4 = vec![0.0; n * n];
    let mut sum = vec![0.0; n];
    for r in 0..n {
        for q in 0..n {
            for p in 0..n {
                a[(r * n + q) * n + p] = init_val((r * n + q) as i64, 1, p as i64, 1, 0, m);
            }
        }
    }
    for p in 0..n {
        for s in 0..n {
            c4[p * n + s] = init_val(p as i64, 1, s as i64, 2, 1, m);
        }
    }
    for r in 0..n {
        for q in 0..n {
            for p in 0..n {
                sum[p] = 0.0;
                for s in 0..n {
                    sum[p] += a[(r * n + q) * n + s] * c4[s * n + p];
                }
            }
            for p in 0..n {
                a[(r * n + q) * n + p] = sum[p];
            }
        }
    }
    a.iter().sum()
}

use sledge_guestc::Expr;
