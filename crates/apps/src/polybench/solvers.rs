//! Linear-solver PolyBench kernels: cholesky, durbin, gramschmidt, lu,
//! ludcmp, trisolv.

use super::{for_i, kernel_module, Kernel, A0};
use crate::abi::{ld1, ld2, st1, st2};
use sledge_guestc::dsl::*;
use sledge_guestc::Local;
use sledge_wasm::types::ValType::{F64, I32};

/// SPD matrix initializer used by the factorizations: A = B Bᵀ / n + n·I,
/// where B[i][j] = ((i*j+1) % n)/n. Same construction in guest and native.
fn spd_init_guest(
    f: &mut sledge_guestc::FuncBuilder,
    a: i32,
    scratch: i32,
    n: i32,
    i: Local,
    j: Local,
    k: Local,
    acc: Local,
) -> Vec<sledge_guestc::Stmt> {
    vec![
        for_i(
            i,
            0,
            i32c(n),
            vec![for_i(
                j,
                0,
                i32c(n),
                vec![st2(
                    scratch,
                    local(i),
                    local(j),
                    n,
                    div(
                        i2d(rem(add(mul(local(i), local(j)), i32c(1)), i32c(n))),
                        f64c(n as f64),
                    ),
                )],
            )],
        ),
        for_i(
            i,
            0,
            i32c(n),
            vec![for_i(
                j,
                0,
                i32c(n),
                vec![
                    set(acc, f64c(0.0)),
                    for_i(
                        k,
                        0,
                        i32c(n),
                        vec![set(
                            acc,
                            add(
                                local(acc),
                                mul(
                                    ld2(scratch, local(i), local(k), n),
                                    ld2(scratch, local(j), local(k), n),
                                ),
                            ),
                        )],
                    ),
                    st2(
                        a,
                        local(i),
                        local(j),
                        n,
                        add(
                            div(local(acc), f64c(n as f64)),
                            select(eq(local(i), local(j)), f64c(n as f64), f64c(0.0)),
                        ),
                    ),
                ],
            )],
        ),
        {
            let _ = f;
            sledge_guestc::Stmt::Nop
        },
    ]
}

fn spd_init_native(n: usize) -> Vec<f64> {
    let mut b = vec![0.0f64; n * n];
    for i in 0..n {
        for j in 0..n {
            b[i * n + j] = (((i * j + 1) % n) as f64) / n as f64;
        }
    }
    let mut a = vec![0.0f64; n * n];
    for i in 0..n {
        for j in 0..n {
            let mut acc = 0.0;
            for k in 0..n {
                acc += b[i * n + k] * b[j * n + k];
            }
            a[i * n + j] = acc / n as f64 + if i == j { n as f64 } else { 0.0 };
        }
    }
    a
}

// -------------------------------------------------------------- cholesky

const CN: i32 = 24;

pub(super) fn cholesky() -> Kernel {
    Kernel {
        name: "cholesky",
        build: build_cholesky,
        native: native_cholesky,
    }
}

fn build_cholesky() -> sledge_wasm::module::Module {
    let n = CN;
    let a = A0;
    let scratch = A0 + 8 * n * n;
    kernel_module("cholesky", 2, |f, cks| {
        let i = f.local(I32);
        let j = f.local(I32);
        let k = f.local(I32);
        let acc = f.local(F64);
        let init = spd_init_guest(f, a, scratch, n, i, j, k, acc);
        f.extend(init);
        f.extend([
            for_i(
                i,
                0,
                i32c(n),
                vec![
                    // j < i
                    for_i(
                        j,
                        0,
                        local(i),
                        vec![
                            for_i(
                                k,
                                0,
                                local(j),
                                vec![st2(
                                    a,
                                    local(i),
                                    local(j),
                                    n,
                                    sub(
                                        ld2(a, local(i), local(j), n),
                                        mul(
                                            ld2(a, local(i), local(k), n),
                                            ld2(a, local(j), local(k), n),
                                        ),
                                    ),
                                )],
                            ),
                            st2(
                                a,
                                local(i),
                                local(j),
                                n,
                                div(ld2(a, local(i), local(j), n), ld2(a, local(j), local(j), n)),
                            ),
                        ],
                    ),
                    // diagonal
                    for_i(
                        k,
                        0,
                        local(i),
                        vec![st2(
                            a,
                            local(i),
                            local(i),
                            n,
                            sub(
                                ld2(a, local(i), local(i), n),
                                mul(ld2(a, local(i), local(k), n), ld2(a, local(i), local(k), n)),
                            ),
                        )],
                    ),
                    st2(
                        a,
                        local(i),
                        local(i),
                        n,
                        sqrt(ld2(a, local(i), local(i), n)),
                    ),
                ],
            ),
            set(cks, f64c(0.0)),
            for_i(
                i,
                0,
                i32c(n),
                vec![for_loop(
                    j,
                    i32c(0),
                    le_s(local(j), local(i)),
                    1,
                    vec![set(cks, add(local(cks), ld2(a, local(i), local(j), n)))],
                )],
            ),
        ]);
    })
}

fn native_cholesky() -> f64 {
    let n = CN as usize;
    let mut a = spd_init_native(n);
    for i in 0..n {
        for j in 0..i {
            for k in 0..j {
                a[i * n + j] -= a[i * n + k] * a[j * n + k];
            }
            a[i * n + j] /= a[j * n + j];
        }
        for k in 0..i {
            a[i * n + i] -= a[i * n + k] * a[i * n + k];
        }
        a[i * n + i] = a[i * n + i].sqrt();
    }
    let mut cks = 0.0;
    for i in 0..n {
        for j in 0..=i {
            cks += a[i * n + j];
        }
    }
    cks
}

// ---------------------------------------------------------------- durbin

const UN: i32 = 80;

pub(super) fn durbin() -> Kernel {
    Kernel {
        name: "durbin",
        build: build_durbin,
        native: native_durbin,
    }
}

fn build_durbin() -> sledge_wasm::module::Module {
    let n = UN;
    let r = A0;
    let y = A0 + 8 * n;
    let z = y + 8 * n;
    kernel_module("durbin", 2, |f, cks| {
        let i = f.local(I32);
        let k = f.local(I32);
        let alpha = f.local(F64);
        let beta = f.local(F64);
        let sum = f.local(F64);
        f.extend([
            for_i(
                i,
                0,
                i32c(n),
                vec![st1(
                    r,
                    local(i),
                    div(i2d(add(local(i), i32c(1))), f64c(n as f64 * 2.0)),
                )],
            ),
            st1(y, i32c(0), neg(ld1(r, i32c(0)))),
            set(beta, f64c(1.0)),
            set(alpha, neg(ld1(r, i32c(0)))),
            for_i(
                k,
                1,
                i32c(n),
                vec![
                    set(
                        beta,
                        mul(sub(f64c(1.0), mul(local(alpha), local(alpha))), local(beta)),
                    ),
                    set(sum, f64c(0.0)),
                    for_i(
                        i,
                        0,
                        local(k),
                        vec![set(
                            sum,
                            add(
                                local(sum),
                                mul(
                                    ld1(r, sub(sub(local(k), local(i)), i32c(1))),
                                    ld1(y, local(i)),
                                ),
                            ),
                        )],
                    ),
                    set(
                        alpha,
                        neg(div(add(ld1(r, local(k)), local(sum)), local(beta))),
                    ),
                    for_i(
                        i,
                        0,
                        local(k),
                        vec![st1(
                            z,
                            local(i),
                            add(
                                ld1(y, local(i)),
                                mul(local(alpha), ld1(y, sub(sub(local(k), local(i)), i32c(1)))),
                            ),
                        )],
                    ),
                    for_i(i, 0, local(k), vec![st1(y, local(i), ld1(z, local(i)))]),
                    st1(y, local(k), local(alpha)),
                ],
            ),
            set(cks, f64c(0.0)),
            for_i(
                i,
                0,
                i32c(n),
                vec![set(cks, add(local(cks), ld1(y, local(i))))],
            ),
        ]);
    })
}

fn native_durbin() -> f64 {
    let n = UN as usize;
    let mut r = vec![0.0f64; n];
    for (i, v) in r.iter_mut().enumerate() {
        *v = (i as f64 + 1.0) / (n as f64 * 2.0);
    }
    let mut y = vec![0.0f64; n];
    let mut z = vec![0.0f64; n];
    y[0] = -r[0];
    let mut beta = 1.0f64;
    let mut alpha = -r[0];
    for k in 1..n {
        beta = (1.0 - alpha * alpha) * beta;
        let mut sum = 0.0;
        for i in 0..k {
            sum += r[k - i - 1] * y[i];
        }
        alpha = -(r[k] + sum) / beta;
        for i in 0..k {
            z[i] = y[i] + alpha * y[k - i - 1];
        }
        y[..k].copy_from_slice(&z[..k]);
        y[k] = alpha;
    }
    y.iter().sum()
}

// ----------------------------------------------------------- gramschmidt

const GN: i32 = 22;

pub(super) fn gramschmidt() -> Kernel {
    Kernel {
        name: "gramschmidt",
        build: build_gramschmidt,
        native: native_gramschmidt,
    }
}

fn build_gramschmidt() -> sledge_wasm::module::Module {
    let n = GN;
    let a = A0;
    let r = A0 + 8 * n * n;
    let q = r + 8 * n * n;
    kernel_module("gramschmidt", 2, |f, cks| {
        let i = f.local(I32);
        let j = f.local(I32);
        let k = f.local(I32);
        let nrm = f.local(F64);
        f.extend([
            for_i(
                i,
                0,
                i32c(n),
                vec![for_i(
                    j,
                    0,
                    i32c(n),
                    vec![
                        st2(
                            a,
                            local(i),
                            local(j),
                            n,
                            add(
                                div(
                                    i2d(rem(add(mul(local(i), local(j)), i32c(1)), i32c(n))),
                                    f64c(n as f64),
                                ),
                                select(eq(local(i), local(j)), f64c(2.0), f64c(0.0)),
                            ),
                        ),
                        st2(r, local(i), local(j), n, f64c(0.0)),
                        st2(q, local(i), local(j), n, f64c(0.0)),
                    ],
                )],
            ),
            for_i(
                k,
                0,
                i32c(n),
                vec![
                    set(nrm, f64c(0.0)),
                    for_i(
                        i,
                        0,
                        i32c(n),
                        vec![set(
                            nrm,
                            add(
                                local(nrm),
                                mul(ld2(a, local(i), local(k), n), ld2(a, local(i), local(k), n)),
                            ),
                        )],
                    ),
                    st2(r, local(k), local(k), n, sqrt(local(nrm))),
                    for_i(
                        i,
                        0,
                        i32c(n),
                        vec![st2(
                            q,
                            local(i),
                            local(k),
                            n,
                            div(ld2(a, local(i), local(k), n), ld2(r, local(k), local(k), n)),
                        )],
                    ),
                    for_loop(
                        j,
                        add(local(k), i32c(1)),
                        lt_s(local(j), i32c(n)),
                        1,
                        vec![
                            st2(r, local(k), local(j), n, f64c(0.0)),
                            for_i(
                                i,
                                0,
                                i32c(n),
                                vec![st2(
                                    r,
                                    local(k),
                                    local(j),
                                    n,
                                    add(
                                        ld2(r, local(k), local(j), n),
                                        mul(
                                            ld2(q, local(i), local(k), n),
                                            ld2(a, local(i), local(j), n),
                                        ),
                                    ),
                                )],
                            ),
                            for_i(
                                i,
                                0,
                                i32c(n),
                                vec![st2(
                                    a,
                                    local(i),
                                    local(j),
                                    n,
                                    sub(
                                        ld2(a, local(i), local(j), n),
                                        mul(
                                            ld2(q, local(i), local(k), n),
                                            ld2(r, local(k), local(j), n),
                                        ),
                                    ),
                                )],
                            ),
                        ],
                    ),
                ],
            ),
            set(cks, f64c(0.0)),
            for_i(
                i,
                0,
                i32c(n),
                vec![for_i(
                    j,
                    0,
                    i32c(n),
                    vec![set(
                        cks,
                        add(
                            local(cks),
                            add(ld2(r, local(i), local(j), n), ld2(q, local(i), local(j), n)),
                        ),
                    )],
                )],
            ),
        ]);
    })
}

fn native_gramschmidt() -> f64 {
    let n = GN as usize;
    let mut a = vec![0.0f64; n * n];
    let mut r = vec![0.0f64; n * n];
    let mut q = vec![0.0f64; n * n];
    for i in 0..n {
        for j in 0..n {
            a[i * n + j] = (((i * j + 1) % n) as f64) / n as f64 + if i == j { 2.0 } else { 0.0 };
        }
    }
    for k in 0..n {
        let mut nrm = 0.0;
        for i in 0..n {
            nrm += a[i * n + k] * a[i * n + k];
        }
        r[k * n + k] = nrm.sqrt();
        for i in 0..n {
            q[i * n + k] = a[i * n + k] / r[k * n + k];
        }
        for j in k + 1..n {
            r[k * n + j] = 0.0;
            for i in 0..n {
                r[k * n + j] += q[i * n + k] * a[i * n + j];
            }
            for i in 0..n {
                a[i * n + j] -= q[i * n + k] * r[k * n + j];
            }
        }
    }
    let mut cks = 0.0;
    for i in 0..n * n {
        cks += r[i] + q[i];
    }
    cks
}

// -------------------------------------------------------------------- lu

const LN: i32 = 24;

pub(super) fn lu() -> Kernel {
    Kernel {
        name: "lu",
        build: build_lu,
        native: native_lu,
    }
}

fn build_lu() -> sledge_wasm::module::Module {
    let n = LN;
    let a = A0;
    let scratch = A0 + 8 * n * n;
    kernel_module("lu", 2, |f, cks| {
        let i = f.local(I32);
        let j = f.local(I32);
        let k = f.local(I32);
        let acc = f.local(F64);
        let init = spd_init_guest(f, a, scratch, n, i, j, k, acc);
        f.extend(init);
        f.extend([
            for_i(
                i,
                0,
                i32c(n),
                vec![
                    for_i(
                        j,
                        0,
                        local(i),
                        vec![
                            for_i(
                                k,
                                0,
                                local(j),
                                vec![st2(
                                    a,
                                    local(i),
                                    local(j),
                                    n,
                                    sub(
                                        ld2(a, local(i), local(j), n),
                                        mul(
                                            ld2(a, local(i), local(k), n),
                                            ld2(a, local(k), local(j), n),
                                        ),
                                    ),
                                )],
                            ),
                            st2(
                                a,
                                local(i),
                                local(j),
                                n,
                                div(ld2(a, local(i), local(j), n), ld2(a, local(j), local(j), n)),
                            ),
                        ],
                    ),
                    for_loop(
                        j,
                        local(i),
                        lt_s(local(j), i32c(n)),
                        1,
                        vec![for_i(
                            k,
                            0,
                            local(i),
                            vec![st2(
                                a,
                                local(i),
                                local(j),
                                n,
                                sub(
                                    ld2(a, local(i), local(j), n),
                                    mul(
                                        ld2(a, local(i), local(k), n),
                                        ld2(a, local(k), local(j), n),
                                    ),
                                ),
                            )],
                        )],
                    ),
                ],
            ),
            set(cks, f64c(0.0)),
            for_i(
                i,
                0,
                i32c(n),
                vec![for_i(
                    j,
                    0,
                    i32c(n),
                    vec![set(cks, add(local(cks), ld2(a, local(i), local(j), n)))],
                )],
            ),
        ]);
    })
}

fn native_lu() -> f64 {
    let n = LN as usize;
    let mut a = spd_init_native(n);
    for i in 0..n {
        for j in 0..i {
            for k in 0..j {
                a[i * n + j] -= a[i * n + k] * a[k * n + j];
            }
            a[i * n + j] /= a[j * n + j];
        }
        for j in i..n {
            for k in 0..i {
                a[i * n + j] -= a[i * n + k] * a[k * n + j];
            }
        }
    }
    a.iter().sum()
}

// ---------------------------------------------------------------- ludcmp

const DN: i32 = 22;

pub(super) fn ludcmp() -> Kernel {
    Kernel {
        name: "ludcmp",
        build: build_ludcmp,
        native: native_ludcmp,
    }
}

fn build_ludcmp() -> sledge_wasm::module::Module {
    let n = DN;
    let a = A0;
    let scratch = A0 + 8 * n * n;
    let b = scratch + 8 * n * n;
    let x = b + 8 * n;
    let y = x + 8 * n;
    kernel_module("ludcmp", 2, |f, cks| {
        let i = f.local(I32);
        let j = f.local(I32);
        let k = f.local(I32);
        let w = f.local(F64);
        let acc = f.local(F64);
        let init = spd_init_guest(f, a, scratch, n, i, j, k, acc);
        f.extend(init);
        f.extend([
            for_i(
                i,
                0,
                i32c(n),
                vec![st1(
                    b,
                    local(i),
                    div(i2d(add(local(i), i32c(1))), add(f64c(n as f64), f64c(4.0))),
                )],
            ),
            // LU factorization.
            for_i(
                i,
                0,
                i32c(n),
                vec![
                    for_i(
                        j,
                        0,
                        local(i),
                        vec![
                            set(w, ld2(a, local(i), local(j), n)),
                            for_i(
                                k,
                                0,
                                local(j),
                                vec![set(
                                    w,
                                    sub(
                                        local(w),
                                        mul(
                                            ld2(a, local(i), local(k), n),
                                            ld2(a, local(k), local(j), n),
                                        ),
                                    ),
                                )],
                            ),
                            st2(
                                a,
                                local(i),
                                local(j),
                                n,
                                div(local(w), ld2(a, local(j), local(j), n)),
                            ),
                        ],
                    ),
                    for_loop(
                        j,
                        local(i),
                        lt_s(local(j), i32c(n)),
                        1,
                        vec![
                            set(w, ld2(a, local(i), local(j), n)),
                            for_i(
                                k,
                                0,
                                local(i),
                                vec![set(
                                    w,
                                    sub(
                                        local(w),
                                        mul(
                                            ld2(a, local(i), local(k), n),
                                            ld2(a, local(k), local(j), n),
                                        ),
                                    ),
                                )],
                            ),
                            st2(a, local(i), local(j), n, local(w)),
                        ],
                    ),
                ],
            ),
            // Forward substitution.
            for_i(
                i,
                0,
                i32c(n),
                vec![
                    set(w, ld1(b, local(i))),
                    for_i(
                        j,
                        0,
                        local(i),
                        vec![set(
                            w,
                            sub(
                                local(w),
                                mul(ld2(a, local(i), local(j), n), ld1(y, local(j))),
                            ),
                        )],
                    ),
                    st1(y, local(i), local(w)),
                ],
            ),
            // Back substitution (i from n-1 down to 0).
            for_loop(
                i,
                i32c(n - 1),
                ge_s(local(i), i32c(0)),
                -1,
                vec![
                    set(w, ld1(y, local(i))),
                    for_loop(
                        j,
                        add(local(i), i32c(1)),
                        lt_s(local(j), i32c(n)),
                        1,
                        vec![set(
                            w,
                            sub(
                                local(w),
                                mul(ld2(a, local(i), local(j), n), ld1(x, local(j))),
                            ),
                        )],
                    ),
                    st1(x, local(i), div(local(w), ld2(a, local(i), local(i), n))),
                ],
            ),
            set(cks, f64c(0.0)),
            for_i(
                i,
                0,
                i32c(n),
                vec![set(cks, add(local(cks), ld1(x, local(i))))],
            ),
        ]);
    })
}

fn native_ludcmp() -> f64 {
    let n = DN as usize;
    let mut a = spd_init_native(n);
    let mut b = vec![0.0f64; n];
    let mut x = vec![0.0f64; n];
    let mut y = vec![0.0f64; n];
    for (i, v) in b.iter_mut().enumerate() {
        *v = (i as f64 + 1.0) / (n as f64 + 4.0);
    }
    for i in 0..n {
        for j in 0..i {
            let mut w = a[i * n + j];
            for k in 0..j {
                w -= a[i * n + k] * a[k * n + j];
            }
            a[i * n + j] = w / a[j * n + j];
        }
        for j in i..n {
            let mut w = a[i * n + j];
            for k in 0..i {
                w -= a[i * n + k] * a[k * n + j];
            }
            a[i * n + j] = w;
        }
    }
    for i in 0..n {
        let mut w = b[i];
        for j in 0..i {
            w -= a[i * n + j] * y[j];
        }
        y[i] = w;
    }
    for i in (0..n).rev() {
        let mut w = y[i];
        for j in i + 1..n {
            w -= a[i * n + j] * x[j];
        }
        x[i] = w / a[i * n + i];
    }
    x.iter().sum()
}

// --------------------------------------------------------------- trisolv

const TN: i32 = 80;

pub(super) fn trisolv() -> Kernel {
    Kernel {
        name: "trisolv",
        build: build_trisolv,
        native: native_trisolv,
    }
}

fn build_trisolv() -> sledge_wasm::module::Module {
    let n = TN;
    let l = A0;
    let x = A0 + 8 * n * n;
    let b = x + 8 * n;
    kernel_module("trisolv", 2, |f, cks| {
        let i = f.local(I32);
        let j = f.local(I32);
        f.extend([
            for_i(
                i,
                0,
                i32c(n),
                vec![
                    st1(x, local(i), f64c(-999.0)),
                    st1(b, local(i), i2d(local(i))),
                    for_loop(
                        j,
                        i32c(0),
                        le_s(local(j), local(i)),
                        1,
                        vec![st2(
                            l,
                            local(i),
                            local(j),
                            n,
                            div(
                                i2d(add(add(local(i), i32c(n)), sub(local(i), local(j)))),
                                mul(f64c(2.0), f64c(n as f64)),
                            ),
                        )],
                    ),
                ],
            ),
            for_i(
                i,
                0,
                i32c(n),
                vec![
                    st1(x, local(i), ld1(b, local(i))),
                    for_i(
                        j,
                        0,
                        local(i),
                        vec![st1(
                            x,
                            local(i),
                            sub(
                                ld1(x, local(i)),
                                mul(ld2(l, local(i), local(j), n), ld1(x, local(j))),
                            ),
                        )],
                    ),
                    st1(
                        x,
                        local(i),
                        div(ld1(x, local(i)), ld2(l, local(i), local(i), n)),
                    ),
                ],
            ),
            set(cks, f64c(0.0)),
            for_i(
                i,
                0,
                i32c(n),
                vec![set(cks, add(local(cks), ld1(x, local(i))))],
            ),
        ]);
    })
}

fn native_trisolv() -> f64 {
    let n = TN as usize;
    let mut l = vec![0.0f64; n * n];
    let mut x = vec![0.0f64; n];
    let mut b = vec![0.0f64; n];
    for i in 0..n {
        x[i] = -999.0;
        b[i] = i as f64;
        for j in 0..=i {
            l[i * n + j] = ((i + n + (i - j)) as f64) / (2.0 * n as f64);
        }
    }
    for i in 0..n {
        x[i] = b[i];
        for j in 0..i {
            x[i] -= l[i * n + j] * x[j];
        }
        x[i] /= l[i * n + i];
    }
    x.iter().sum()
}
