//! Stencil PolyBench kernels: adi, fdtd-2d, heat-3d, jacobi-1d, jacobi-2d,
//! seidel-2d.

use super::{for_i, kernel_module, Kernel, A0};
use crate::abi::{ld1, ld2, st1, st2};
use sledge_guestc::dsl::*;
use sledge_guestc::Expr;
use sledge_wasm::types::ValType::I32;

// ------------------------------------------------------------- jacobi-1d

const J1N: i32 = 400;
const J1T: i32 = 40;

pub(super) fn jacobi_1d() -> Kernel {
    Kernel {
        name: "jacobi-1d",
        build: build_jacobi_1d,
        native: native_jacobi_1d,
    }
}

fn build_jacobi_1d() -> sledge_wasm::module::Module {
    let n = J1N;
    let a = A0;
    let b = A0 + 8 * n;
    kernel_module("jacobi-1d", 2, |f, cks| {
        let i = f.local(I32);
        let t = f.local(I32);
        f.extend([
            for_i(
                i,
                0,
                i32c(n),
                vec![
                    st1(
                        a,
                        local(i),
                        div(i2d(add(local(i), i32c(2))), f64c(n as f64)),
                    ),
                    st1(
                        b,
                        local(i),
                        div(i2d(add(local(i), i32c(3))), f64c(n as f64)),
                    ),
                ],
            ),
            for_i(
                t,
                0,
                i32c(J1T),
                vec![
                    for_i(
                        i,
                        1,
                        i32c(n - 1),
                        vec![st1(
                            b,
                            local(i),
                            mul(
                                f64c(0.33333),
                                add(
                                    add(ld1(a, sub(local(i), i32c(1))), ld1(a, local(i))),
                                    ld1(a, add(local(i), i32c(1))),
                                ),
                            ),
                        )],
                    ),
                    for_i(
                        i,
                        1,
                        i32c(n - 1),
                        vec![st1(
                            a,
                            local(i),
                            mul(
                                f64c(0.33333),
                                add(
                                    add(ld1(b, sub(local(i), i32c(1))), ld1(b, local(i))),
                                    ld1(b, add(local(i), i32c(1))),
                                ),
                            ),
                        )],
                    ),
                ],
            ),
            set(cks, f64c(0.0)),
            for_i(
                i,
                0,
                i32c(n),
                vec![set(cks, add(local(cks), ld1(a, local(i))))],
            ),
        ]);
    })
}

fn native_jacobi_1d() -> f64 {
    let n = J1N as usize;
    let mut a = vec![0.0f64; n];
    let mut b = vec![0.0f64; n];
    for i in 0..n {
        a[i] = (i as f64 + 2.0) / n as f64;
        b[i] = (i as f64 + 3.0) / n as f64;
    }
    for _ in 0..J1T {
        for i in 1..n - 1 {
            b[i] = 0.33333 * (a[i - 1] + a[i] + a[i + 1]);
        }
        for i in 1..n - 1 {
            a[i] = 0.33333 * (b[i - 1] + b[i] + b[i + 1]);
        }
    }
    a.iter().sum()
}

// ------------------------------------------------------------- jacobi-2d

const J2N: i32 = 40;
const J2T: i32 = 12;

pub(super) fn jacobi_2d() -> Kernel {
    Kernel {
        name: "jacobi-2d",
        build: build_jacobi_2d,
        native: native_jacobi_2d,
    }
}

fn build_jacobi_2d() -> sledge_wasm::module::Module {
    let n = J2N;
    let a = A0;
    let b = A0 + 8 * n * n;
    kernel_module("jacobi-2d", 2, |f, cks| {
        let i = f.local(I32);
        let j = f.local(I32);
        let t = f.local(I32);
        let five = |arr: i32, i: &sledge_guestc::Local, j: &sledge_guestc::Local| -> Expr {
            mul(
                f64c(0.2),
                add(
                    add(
                        add(
                            add(
                                ld2(arr, local(*i), local(*j), n),
                                ld2(arr, local(*i), sub(local(*j), i32c(1)), n),
                            ),
                            ld2(arr, local(*i), add(local(*j), i32c(1)), n),
                        ),
                        ld2(arr, add(local(*i), i32c(1)), local(*j), n),
                    ),
                    ld2(arr, sub(local(*i), i32c(1)), local(*j), n),
                ),
            )
        };
        f.extend([
            for_i(
                i,
                0,
                i32c(n),
                vec![for_i(
                    j,
                    0,
                    i32c(n),
                    vec![
                        st2(
                            a,
                            local(i),
                            local(j),
                            n,
                            div(
                                mul(i2d(local(i)), add(i2d(local(j)), f64c(2.0))),
                                f64c(n as f64),
                            ),
                        ),
                        st2(
                            b,
                            local(i),
                            local(j),
                            n,
                            div(
                                mul(i2d(local(i)), add(i2d(local(j)), f64c(3.0))),
                                f64c(n as f64),
                            ),
                        ),
                    ],
                )],
            ),
            for_i(
                t,
                0,
                i32c(J2T),
                vec![
                    for_i(
                        i,
                        1,
                        i32c(n - 1),
                        vec![for_i(
                            j,
                            1,
                            i32c(n - 1),
                            vec![st2(b, local(i), local(j), n, five(a, &i, &j))],
                        )],
                    ),
                    for_i(
                        i,
                        1,
                        i32c(n - 1),
                        vec![for_i(
                            j,
                            1,
                            i32c(n - 1),
                            vec![st2(a, local(i), local(j), n, five(b, &i, &j))],
                        )],
                    ),
                ],
            ),
            set(cks, f64c(0.0)),
            for_i(
                i,
                0,
                i32c(n),
                vec![for_i(
                    j,
                    0,
                    i32c(n),
                    vec![set(cks, add(local(cks), ld2(a, local(i), local(j), n)))],
                )],
            ),
        ]);
    })
}

fn native_jacobi_2d() -> f64 {
    let n = J2N as usize;
    let mut a = vec![0.0f64; n * n];
    let mut b = vec![0.0f64; n * n];
    for i in 0..n {
        for j in 0..n {
            a[i * n + j] = i as f64 * (j as f64 + 2.0) / n as f64;
            b[i * n + j] = i as f64 * (j as f64 + 3.0) / n as f64;
        }
    }
    for _ in 0..J2T {
        for i in 1..n - 1 {
            for j in 1..n - 1 {
                b[i * n + j] = 0.2
                    * (a[i * n + j]
                        + a[i * n + j - 1]
                        + a[i * n + j + 1]
                        + a[(i + 1) * n + j]
                        + a[(i - 1) * n + j]);
            }
        }
        for i in 1..n - 1 {
            for j in 1..n - 1 {
                a[i * n + j] = 0.2
                    * (b[i * n + j]
                        + b[i * n + j - 1]
                        + b[i * n + j + 1]
                        + b[(i + 1) * n + j]
                        + b[(i - 1) * n + j]);
            }
        }
    }
    a.iter().sum()
}

// ------------------------------------------------------------- seidel-2d

const SN: i32 = 40;
const ST: i32 = 8;

pub(super) fn seidel_2d() -> Kernel {
    Kernel {
        name: "seidel-2d",
        build: build_seidel,
        native: native_seidel,
    }
}

fn build_seidel() -> sledge_wasm::module::Module {
    let n = SN;
    let a = A0;
    kernel_module("seidel-2d", 2, |f, cks| {
        let i = f.local(I32);
        let j = f.local(I32);
        let t = f.local(I32);
        f.extend([
            for_i(
                i,
                0,
                i32c(n),
                vec![for_i(
                    j,
                    0,
                    i32c(n),
                    vec![st2(
                        a,
                        local(i),
                        local(j),
                        n,
                        div(
                            add(mul(i2d(local(i)), add(i2d(local(j)), f64c(2.0))), f64c(2.0)),
                            f64c(n as f64),
                        ),
                    )],
                )],
            ),
            for_i(
                t,
                0,
                i32c(ST),
                vec![for_i(
                    i,
                    1,
                    i32c(n - 1),
                    vec![for_i(
                        j,
                        1,
                        i32c(n - 1),
                        vec![st2(
                            a,
                            local(i),
                            local(j),
                            n,
                            div(
                                add(
                                    add(
                                        add(
                                            add(
                                                add(
                                                    add(
                                                        add(
                                                            add(
                                                                ld2(
                                                                    a,
                                                                    sub(local(i), i32c(1)),
                                                                    sub(local(j), i32c(1)),
                                                                    n,
                                                                ),
                                                                ld2(
                                                                    a,
                                                                    sub(local(i), i32c(1)),
                                                                    local(j),
                                                                    n,
                                                                ),
                                                            ),
                                                            ld2(
                                                                a,
                                                                sub(local(i), i32c(1)),
                                                                add(local(j), i32c(1)),
                                                                n,
                                                            ),
                                                        ),
                                                        ld2(a, local(i), sub(local(j), i32c(1)), n),
                                                    ),
                                                    ld2(a, local(i), local(j), n),
                                                ),
                                                ld2(a, local(i), add(local(j), i32c(1)), n),
                                            ),
                                            ld2(
                                                a,
                                                add(local(i), i32c(1)),
                                                sub(local(j), i32c(1)),
                                                n,
                                            ),
                                        ),
                                        ld2(a, add(local(i), i32c(1)), local(j), n),
                                    ),
                                    ld2(a, add(local(i), i32c(1)), add(local(j), i32c(1)), n),
                                ),
                                f64c(9.0),
                            ),
                        )],
                    )],
                )],
            ),
            set(cks, f64c(0.0)),
            for_i(
                i,
                0,
                i32c(n),
                vec![for_i(
                    j,
                    0,
                    i32c(n),
                    vec![set(cks, add(local(cks), ld2(a, local(i), local(j), n)))],
                )],
            ),
        ]);
    })
}

fn native_seidel() -> f64 {
    let n = SN as usize;
    let mut a = vec![0.0f64; n * n];
    for i in 0..n {
        for j in 0..n {
            a[i * n + j] = (i as f64 * (j as f64 + 2.0) + 2.0) / n as f64;
        }
    }
    for _ in 0..ST {
        for i in 1..n - 1 {
            for j in 1..n - 1 {
                a[i * n + j] = (a[(i - 1) * n + j - 1]
                    + a[(i - 1) * n + j]
                    + a[(i - 1) * n + j + 1]
                    + a[i * n + j - 1]
                    + a[i * n + j]
                    + a[i * n + j + 1]
                    + a[(i + 1) * n + j - 1]
                    + a[(i + 1) * n + j]
                    + a[(i + 1) * n + j + 1])
                    / 9.0;
            }
        }
    }
    a.iter().sum()
}

// --------------------------------------------------------------- fdtd-2d

const FX: i32 = 36;
const FY: i32 = 30;
const FT: i32 = 12;

pub(super) fn fdtd_2d() -> Kernel {
    Kernel {
        name: "fdtd-2d",
        build: build_fdtd,
        native: native_fdtd,
    }
}

fn build_fdtd() -> sledge_wasm::module::Module {
    let (nx, ny) = (FX, FY);
    let ex = A0;
    let ey = A0 + 8 * nx * ny;
    let hz = ey + 8 * nx * ny;
    kernel_module("fdtd-2d", 2, |f, cks| {
        let i = f.local(I32);
        let j = f.local(I32);
        let t = f.local(I32);
        f.extend([
            for_i(
                i,
                0,
                i32c(nx),
                vec![for_i(
                    j,
                    0,
                    i32c(ny),
                    vec![
                        st2(
                            ex,
                            local(i),
                            local(j),
                            ny,
                            div(
                                mul(i2d(local(i)), add(i2d(local(j)), f64c(1.0))),
                                f64c(nx as f64),
                            ),
                        ),
                        st2(
                            ey,
                            local(i),
                            local(j),
                            ny,
                            div(
                                mul(i2d(local(i)), add(i2d(local(j)), f64c(2.0))),
                                f64c(ny as f64),
                            ),
                        ),
                        st2(
                            hz,
                            local(i),
                            local(j),
                            ny,
                            div(
                                mul(i2d(local(i)), add(i2d(local(j)), f64c(3.0))),
                                f64c(nx as f64),
                            ),
                        ),
                    ],
                )],
            ),
            for_i(
                t,
                0,
                i32c(FT),
                vec![
                    for_i(
                        j,
                        0,
                        i32c(ny),
                        vec![st2(ey, i32c(0), local(j), ny, i2d(local(t)))],
                    ),
                    for_i(
                        i,
                        1,
                        i32c(nx),
                        vec![for_i(
                            j,
                            0,
                            i32c(ny),
                            vec![st2(
                                ey,
                                local(i),
                                local(j),
                                ny,
                                sub(
                                    ld2(ey, local(i), local(j), ny),
                                    mul(
                                        f64c(0.5),
                                        sub(
                                            ld2(hz, local(i), local(j), ny),
                                            ld2(hz, sub(local(i), i32c(1)), local(j), ny),
                                        ),
                                    ),
                                ),
                            )],
                        )],
                    ),
                    for_i(
                        i,
                        0,
                        i32c(nx),
                        vec![for_i(
                            j,
                            1,
                            i32c(ny),
                            vec![st2(
                                ex,
                                local(i),
                                local(j),
                                ny,
                                sub(
                                    ld2(ex, local(i), local(j), ny),
                                    mul(
                                        f64c(0.5),
                                        sub(
                                            ld2(hz, local(i), local(j), ny),
                                            ld2(hz, local(i), sub(local(j), i32c(1)), ny),
                                        ),
                                    ),
                                ),
                            )],
                        )],
                    ),
                    for_i(
                        i,
                        0,
                        i32c(nx - 1),
                        vec![for_i(
                            j,
                            0,
                            i32c(ny - 1),
                            vec![st2(
                                hz,
                                local(i),
                                local(j),
                                ny,
                                sub(
                                    ld2(hz, local(i), local(j), ny),
                                    mul(
                                        f64c(0.7),
                                        sub(
                                            add(
                                                sub(
                                                    ld2(ex, local(i), add(local(j), i32c(1)), ny),
                                                    ld2(ex, local(i), local(j), ny),
                                                ),
                                                ld2(ey, add(local(i), i32c(1)), local(j), ny),
                                            ),
                                            ld2(ey, local(i), local(j), ny),
                                        ),
                                    ),
                                ),
                            )],
                        )],
                    ),
                ],
            ),
            set(cks, f64c(0.0)),
            for_i(
                i,
                0,
                i32c(nx),
                vec![for_i(
                    j,
                    0,
                    i32c(ny),
                    vec![set(
                        cks,
                        add(
                            local(cks),
                            add(
                                add(
                                    ld2(ex, local(i), local(j), ny),
                                    ld2(ey, local(i), local(j), ny),
                                ),
                                ld2(hz, local(i), local(j), ny),
                            ),
                        ),
                    )],
                )],
            ),
        ]);
    })
}

fn native_fdtd() -> f64 {
    let (nx, ny) = (FX as usize, FY as usize);
    let mut ex = vec![0.0f64; nx * ny];
    let mut ey = vec![0.0f64; nx * ny];
    let mut hz = vec![0.0f64; nx * ny];
    for i in 0..nx {
        for j in 0..ny {
            ex[i * ny + j] = i as f64 * (j as f64 + 1.0) / nx as f64;
            ey[i * ny + j] = i as f64 * (j as f64 + 2.0) / ny as f64;
            hz[i * ny + j] = i as f64 * (j as f64 + 3.0) / nx as f64;
        }
    }
    for t in 0..FT {
        for j in 0..ny {
            ey[j] = t as f64;
        }
        for i in 1..nx {
            for j in 0..ny {
                ey[i * ny + j] -= 0.5 * (hz[i * ny + j] - hz[(i - 1) * ny + j]);
            }
        }
        for i in 0..nx {
            for j in 1..ny {
                ex[i * ny + j] -= 0.5 * (hz[i * ny + j] - hz[i * ny + j - 1]);
            }
        }
        for i in 0..nx - 1 {
            for j in 0..ny - 1 {
                hz[i * ny + j] -= 0.7
                    * (ex[i * ny + j + 1] - ex[i * ny + j] + ey[(i + 1) * ny + j] - ey[i * ny + j]);
            }
        }
    }
    let mut cks = 0.0;
    for i in 0..nx * ny {
        cks += ex[i] + ey[i] + hz[i];
    }
    cks
}

// --------------------------------------------------------------- heat-3d

const HN: i32 = 14;
const HT: i32 = 10;

pub(super) fn heat_3d() -> Kernel {
    Kernel {
        name: "heat-3d",
        build: build_heat,
        native: native_heat,
    }
}

fn build_heat() -> sledge_wasm::module::Module {
    let n = HN;
    let a = A0;
    let b = A0 + 8 * n * n * n;
    kernel_module("heat-3d", 2, |f, cks| {
        let i = f.local(I32);
        let j = f.local(I32);
        let k = f.local(I32);
        let t = f.local(I32);
        let at = |base: i32, iv: Expr, jv: Expr, kv: Expr| {
            load(
                sledge_guestc::Scalar::F64,
                add(
                    i32c(base),
                    mul(add(mul(add(mul(iv, i32c(n)), jv), i32c(n)), kv), i32c(8)),
                ),
                0,
            )
        };
        let st_at = |base: i32, iv: Expr, jv: Expr, kv: Expr, v: Expr| {
            store(
                sledge_guestc::Scalar::F64,
                add(
                    i32c(base),
                    mul(add(mul(add(mul(iv, i32c(n)), jv), i32c(n)), kv), i32c(8)),
                ),
                0,
                v,
            )
        };
        let stencil = |src: i32,
                       i: &sledge_guestc::Local,
                       j: &sledge_guestc::Local,
                       k: &sledge_guestc::Local| {
            add(
                add(
                    mul(
                        f64c(0.125),
                        sub(
                            add(
                                at(src, add(local(*i), i32c(1)), local(*j), local(*k)),
                                at(src, sub(local(*i), i32c(1)), local(*j), local(*k)),
                            ),
                            mul(f64c(2.0), at(src, local(*i), local(*j), local(*k))),
                        ),
                    ),
                    mul(
                        f64c(0.125),
                        sub(
                            add(
                                at(src, local(*i), add(local(*j), i32c(1)), local(*k)),
                                at(src, local(*i), sub(local(*j), i32c(1)), local(*k)),
                            ),
                            mul(f64c(2.0), at(src, local(*i), local(*j), local(*k))),
                        ),
                    ),
                ),
                add(
                    mul(
                        f64c(0.125),
                        sub(
                            add(
                                at(src, local(*i), local(*j), add(local(*k), i32c(1))),
                                at(src, local(*i), local(*j), sub(local(*k), i32c(1))),
                            ),
                            mul(f64c(2.0), at(src, local(*i), local(*j), local(*k))),
                        ),
                    ),
                    at(src, local(*i), local(*j), local(*k)),
                ),
            )
        };
        f.extend([
            for_i(
                i,
                0,
                i32c(n),
                vec![for_i(
                    j,
                    0,
                    i32c(n),
                    vec![for_i(
                        k,
                        0,
                        i32c(n),
                        vec![
                            st_at(
                                a,
                                local(i),
                                local(j),
                                local(k),
                                div(
                                    i2d(add(
                                        add(mul(local(i), local(j)), add(local(j), local(k))),
                                        i32c(10),
                                    )),
                                    f64c(n as f64),
                                ),
                            ),
                            st_at(
                                b,
                                local(i),
                                local(j),
                                local(k),
                                div(
                                    i2d(add(
                                        add(mul(local(i), local(j)), add(local(j), local(k))),
                                        i32c(10),
                                    )),
                                    f64c(n as f64),
                                ),
                            ),
                        ],
                    )],
                )],
            ),
            for_i(
                t,
                0,
                i32c(HT),
                vec![
                    for_i(
                        i,
                        1,
                        i32c(n - 1),
                        vec![for_i(
                            j,
                            1,
                            i32c(n - 1),
                            vec![for_i(
                                k,
                                1,
                                i32c(n - 1),
                                vec![st_at(
                                    b,
                                    local(i),
                                    local(j),
                                    local(k),
                                    stencil(a, &i, &j, &k),
                                )],
                            )],
                        )],
                    ),
                    for_i(
                        i,
                        1,
                        i32c(n - 1),
                        vec![for_i(
                            j,
                            1,
                            i32c(n - 1),
                            vec![for_i(
                                k,
                                1,
                                i32c(n - 1),
                                vec![st_at(
                                    a,
                                    local(i),
                                    local(j),
                                    local(k),
                                    stencil(b, &i, &j, &k),
                                )],
                            )],
                        )],
                    ),
                ],
            ),
            set(cks, f64c(0.0)),
            for_i(
                i,
                0,
                i32c(n),
                vec![for_i(
                    j,
                    0,
                    i32c(n),
                    vec![for_i(
                        k,
                        0,
                        i32c(n),
                        vec![set(
                            cks,
                            add(local(cks), at(a, local(i), local(j), local(k))),
                        )],
                    )],
                )],
            ),
        ]);
    })
}

fn native_heat() -> f64 {
    let n = HN as usize;
    let mut a = vec![0.0f64; n * n * n];
    let mut b = vec![0.0f64; n * n * n];
    let idx = |i: usize, j: usize, k: usize| (i * n + j) * n + k;
    for i in 0..n {
        for j in 0..n {
            for k in 0..n {
                let v = ((i * j + j + k + 10) as f64) / n as f64;
                a[idx(i, j, k)] = v;
                b[idx(i, j, k)] = v;
            }
        }
    }
    let stencil = |s: &[f64], i: usize, j: usize, k: usize| {
        (0.125 * (s[idx(i + 1, j, k)] + s[idx(i - 1, j, k)] - 2.0 * s[idx(i, j, k)])
            + 0.125 * (s[idx(i, j + 1, k)] + s[idx(i, j - 1, k)] - 2.0 * s[idx(i, j, k)]))
            + (0.125 * (s[idx(i, j, k + 1)] + s[idx(i, j, k - 1)] - 2.0 * s[idx(i, j, k)])
                + s[idx(i, j, k)])
    };
    for _ in 0..HT {
        for i in 1..n - 1 {
            for j in 1..n - 1 {
                for k in 1..n - 1 {
                    b[idx(i, j, k)] = stencil(&a, i, j, k);
                }
            }
        }
        for i in 1..n - 1 {
            for j in 1..n - 1 {
                for k in 1..n - 1 {
                    a[idx(i, j, k)] = stencil(&b, i, j, k);
                }
            }
        }
    }
    a.iter().sum()
}

// ------------------------------------------------------------------- adi

const AN: i32 = 24;
const AT: i32 = 6;

pub(super) fn adi() -> Kernel {
    Kernel {
        name: "adi",
        build: build_adi,
        native: native_adi,
    }
}

// ADI (alternating direction implicit) with Thomas-algorithm sweeps.
fn adi_consts() -> (f64, f64, f64, f64, f64, f64) {
    let n = AN as f64;
    let t = AT as f64;
    let dx = 1.0 / n;
    let dy = 1.0 / n;
    let dt = 1.0 / t;
    let b1 = 2.0;
    let b2 = 1.0;
    let mul1 = b1 * dt / (dx * dx);
    let mul2 = b2 * dt / (dy * dy);
    (
        -mul1 / 2.0, // a
        1.0 + mul1,  // b
        -mul1 / 2.0, // c
        -mul2 / 2.0, // d
        1.0 + mul2,  // e
        -mul2 / 2.0, // f
    )
}

fn build_adi() -> sledge_wasm::module::Module {
    let n = AN;
    let u = A0;
    let v = A0 + 8 * n * n;
    let p = v + 8 * n * n;
    let q = p + 8 * n * n;
    let (ca, cb, cc, cd, ce, cf) = adi_consts();
    kernel_module("adi", 2, |f, cks| {
        let i = f.local(I32);
        let j = f.local(I32);
        let t = f.local(I32);
        f.extend([
            for_i(
                i,
                0,
                i32c(n),
                vec![for_i(
                    j,
                    0,
                    i32c(n),
                    vec![
                        st2(
                            u,
                            local(i),
                            local(j),
                            n,
                            div(
                                i2d(add(add(local(i), local(j)), i32c(n))),
                                f64c(n as f64 * 3.0),
                            ),
                        ),
                        st2(v, local(i), local(j), n, f64c(0.0)),
                        st2(p, local(i), local(j), n, f64c(0.0)),
                        st2(q, local(i), local(j), n, f64c(0.0)),
                    ],
                )],
            ),
            for_i(
                t,
                1,
                add(i32c(AT), i32c(1)),
                vec![
                    // Column sweep (implicit in y).
                    for_i(
                        i,
                        1,
                        i32c(n - 1),
                        vec![
                            st2(v, i32c(0), local(i), n, f64c(1.0)),
                            st2(p, local(i), i32c(0), n, f64c(0.0)),
                            st2(q, local(i), i32c(0), n, ld2(v, i32c(0), local(i), n)),
                            for_i(
                                j,
                                1,
                                i32c(n - 1),
                                vec![
                                    st2(
                                        p,
                                        local(i),
                                        local(j),
                                        n,
                                        div(
                                            neg(f64c(cc)),
                                            add(
                                                mul(
                                                    f64c(ca),
                                                    ld2(p, local(i), sub(local(j), i32c(1)), n),
                                                ),
                                                f64c(cb),
                                            ),
                                        ),
                                    ),
                                    st2(
                                        q,
                                        local(i),
                                        local(j),
                                        n,
                                        div(
                                            sub(
                                                sub(
                                                    add(
                                                        mul(
                                                            neg(f64c(cd)),
                                                            ld2(
                                                                u,
                                                                local(j),
                                                                sub(local(i), i32c(1)),
                                                                n,
                                                            ),
                                                        ),
                                                        mul(
                                                            add(
                                                                f64c(1.0),
                                                                mul(f64c(2.0), f64c(cd)),
                                                            ),
                                                            ld2(u, local(j), local(i), n),
                                                        ),
                                                    ),
                                                    mul(
                                                        f64c(cf),
                                                        ld2(u, local(j), add(local(i), i32c(1)), n),
                                                    ),
                                                ),
                                                mul(
                                                    f64c(ca),
                                                    ld2(q, local(i), sub(local(j), i32c(1)), n),
                                                ),
                                            ),
                                            add(
                                                mul(
                                                    f64c(ca),
                                                    ld2(p, local(i), sub(local(j), i32c(1)), n),
                                                ),
                                                f64c(cb),
                                            ),
                                        ),
                                    ),
                                ],
                            ),
                            st2(v, i32c(n - 1), local(i), n, f64c(1.0)),
                            for_loop(
                                j,
                                i32c(n - 2),
                                ge_s(local(j), i32c(1)),
                                -1,
                                vec![st2(
                                    v,
                                    local(j),
                                    local(i),
                                    n,
                                    add(
                                        mul(
                                            ld2(p, local(i), local(j), n),
                                            ld2(v, add(local(j), i32c(1)), local(i), n),
                                        ),
                                        ld2(q, local(i), local(j), n),
                                    ),
                                )],
                            ),
                        ],
                    ),
                    // Row sweep (implicit in x).
                    for_i(
                        i,
                        1,
                        i32c(n - 1),
                        vec![
                            st2(u, local(i), i32c(0), n, f64c(1.0)),
                            st2(p, local(i), i32c(0), n, f64c(0.0)),
                            st2(q, local(i), i32c(0), n, ld2(u, local(i), i32c(0), n)),
                            for_i(
                                j,
                                1,
                                i32c(n - 1),
                                vec![
                                    st2(
                                        p,
                                        local(i),
                                        local(j),
                                        n,
                                        div(
                                            neg(f64c(cf)),
                                            add(
                                                mul(
                                                    f64c(cd),
                                                    ld2(p, local(i), sub(local(j), i32c(1)), n),
                                                ),
                                                f64c(ce),
                                            ),
                                        ),
                                    ),
                                    st2(
                                        q,
                                        local(i),
                                        local(j),
                                        n,
                                        div(
                                            sub(
                                                sub(
                                                    add(
                                                        mul(
                                                            neg(f64c(ca)),
                                                            ld2(
                                                                v,
                                                                sub(local(i), i32c(1)),
                                                                local(j),
                                                                n,
                                                            ),
                                                        ),
                                                        mul(
                                                            add(
                                                                f64c(1.0),
                                                                mul(f64c(2.0), f64c(ca)),
                                                            ),
                                                            ld2(v, local(i), local(j), n),
                                                        ),
                                                    ),
                                                    mul(
                                                        f64c(cc),
                                                        ld2(v, add(local(i), i32c(1)), local(j), n),
                                                    ),
                                                ),
                                                mul(
                                                    f64c(cd),
                                                    ld2(q, local(i), sub(local(j), i32c(1)), n),
                                                ),
                                            ),
                                            add(
                                                mul(
                                                    f64c(cd),
                                                    ld2(p, local(i), sub(local(j), i32c(1)), n),
                                                ),
                                                f64c(ce),
                                            ),
                                        ),
                                    ),
                                ],
                            ),
                            st2(u, local(i), i32c(n - 1), n, f64c(1.0)),
                            for_loop(
                                j,
                                i32c(n - 2),
                                ge_s(local(j), i32c(1)),
                                -1,
                                vec![st2(
                                    u,
                                    local(i),
                                    local(j),
                                    n,
                                    add(
                                        mul(
                                            ld2(p, local(i), local(j), n),
                                            ld2(u, local(i), add(local(j), i32c(1)), n),
                                        ),
                                        ld2(q, local(i), local(j), n),
                                    ),
                                )],
                            ),
                        ],
                    ),
                ],
            ),
            set(cks, f64c(0.0)),
            for_i(
                i,
                0,
                i32c(n),
                vec![for_i(
                    j,
                    0,
                    i32c(n),
                    vec![set(cks, add(local(cks), ld2(u, local(i), local(j), n)))],
                )],
            ),
        ]);
    })
}

fn native_adi() -> f64 {
    let n = AN as usize;
    let (ca, cb, cc, cd, ce, cf) = adi_consts();
    let mut u = vec![0.0f64; n * n];
    let mut v = vec![0.0f64; n * n];
    let mut p = vec![0.0f64; n * n];
    let mut q = vec![0.0f64; n * n];
    for i in 0..n {
        for j in 0..n {
            u[i * n + j] = ((i + j + n) as f64) / (n as f64 * 3.0);
        }
    }
    for _t in 1..=AT as usize {
        for i in 1..n - 1 {
            v[i] = 1.0; // v[0][i]
            p[i * n] = 0.0;
            q[i * n] = v[i];
            for j in 1..n - 1 {
                p[i * n + j] = -cc / (ca * p[i * n + j - 1] + cb);
                q[i * n + j] = (-cd * u[j * n + i - 1] + (1.0 + 2.0 * cd) * u[j * n + i]
                    - cf * u[j * n + i + 1]
                    - ca * q[i * n + j - 1])
                    / (ca * p[i * n + j - 1] + cb);
            }
            v[(n - 1) * n + i] = 1.0;
            for j in (1..=n - 2).rev() {
                v[j * n + i] = p[i * n + j] * v[(j + 1) * n + i] + q[i * n + j];
            }
        }
        for i in 1..n - 1 {
            u[i * n] = 1.0;
            p[i * n] = 0.0;
            q[i * n] = u[i * n];
            for j in 1..n - 1 {
                p[i * n + j] = -cf / (cd * p[i * n + j - 1] + ce);
                q[i * n + j] = (-ca * v[(i - 1) * n + j] + (1.0 + 2.0 * ca) * v[i * n + j]
                    - cc * v[(i + 1) * n + j]
                    - cd * q[i * n + j - 1])
                    / (cd * p[i * n + j - 1] + ce);
            }
            u[i * n + n - 1] = 1.0;
            for j in (1..=n - 2).rev() {
                u[i * n + j] = p[i * n + j] * u[i * n + j + 1] + q[i * n + j];
            }
        }
    }
    u.iter().sum()
}
