//! The ping function: no computation, replies with a single byte.
//! Used for the paper's Figure 6 (throughput/latency vs. concurrency).

use crate::abi::import_env_response_only;
use sledge_guestc::dsl::*;
use sledge_guestc::{FuncBuilder, ModuleBuilder, Scalar};
use sledge_wasm::module::Module;
use sledge_wasm::types::ValType;

/// Build the ping guest module.
pub fn module() -> Module {
    let mut mb = ModuleBuilder::new("ping");
    mb.memory(1, Some(1));
    let env = import_env_response_only(&mut mb);
    let mut f = FuncBuilder::new(&[], Some(ValType::I32));
    f.extend([
        store(Scalar::U8, i32c(0), 0, i32c(b'.' as i32)),
        exec(call(env.response_write, vec![i32c(0), i32c(1)])),
        ret(Some(i32c(0))),
    ]);
    let main = mb.add_func("main", f);
    mb.export_func(main, "main");
    mb.build().expect("ping module")
}

/// Native reference implementation (what a Nuclio shell function would run).
pub fn native(_body: &[u8]) -> Vec<u8> {
    vec![b'.']
}

/// A representative request body.
pub fn sample_input() -> Vec<u8> {
    Vec::new()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::run_guest;

    #[test]
    fn guest_matches_native() {
        let out = run_guest(&module(), b"");
        assert_eq!(out, native(b""));
    }
}
