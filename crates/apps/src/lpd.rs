//! LPD: license-plate detection — the reproduction of the paper's SOD
//! license-plate workload (read an image containing a plate, find a bounding
//! box around it, return the image with the box drawn).
//!
//! Algorithm (a classical edge-density detector, the computational class of
//! SOD's pipeline): RGB → grayscale, Sobel gradient magnitude, binarize,
//! sliding-window vertical-edge-density score over plate-shaped windows,
//! pick the best window, draw its rectangle into a copy of the input.
//!
//! Request layout: `u32 width | u32 height | RGB24 pixels`.
//! Response layout: the same image with a red box drawn.

use crate::abi::{import_env, read_request, write_response};
use sledge_guestc::dsl::*;
use sledge_guestc::{FuncBuilder, ModuleBuilder, Scalar};
use sledge_wasm::module::Module;
use sledge_wasm::types::ValType;

/// Plate window width (pixels).
const WIN_W: i32 = 40;
/// Plate window height.
const WIN_H: i32 = 12;
/// Window scan stride.
const STRIDE: i32 = 4;
/// Gradient binarization threshold.
const THRESH: i32 = 96;

const RX: i32 = 262144; // input image
const GRAY: i32 = 655360; // grayscale u8 plane
const EDGE: i32 = 786432; // binarized edges u8 plane
const OUT_META: i32 = 64; // best (score, x, y) scratch

/// Build the LPD guest module.
pub fn module() -> Module {
    let mut mb = ModuleBuilder::new("lpd");
    mb.memory(18, Some(32));
    let env = import_env(&mut mb);

    use ValType::I32;
    let mut f = FuncBuilder::new(&[], Some(I32));
    let len = f.local(I32);
    let w = f.local(I32);
    let h = f.local(I32);
    let x = f.local(I32);
    let y = f.local(I32);
    let gx = f.local(I32);
    let gy = f.local(I32);
    let mag = f.local(I32);
    let score = f.local(I32);
    let best = f.local(I32);
    let bx = f.local(I32);
    let by = f.local(I32);
    let dx = f.local(I32);
    let dy = f.local(I32);

    // gray[y][x]
    let g_at = |yy: Expr, xx: Expr, wl: sledge_guestc::Local| {
        load(Scalar::U8, add(i32c(GRAY), add(mul(yy, local(wl)), xx)), 0)
    };
    // src pixel channel
    let px_at = |yy: Expr, xx: Expr, cc: i32, wl: sledge_guestc::Local| {
        load(
            Scalar::U8,
            add(
                i32c(RX + 8),
                add(mul(add(mul(yy, local(wl)), xx), i32c(3)), i32c(cc)),
            ),
            0,
        )
    };
    // address of output pixel channel
    let out_px = |yy: Expr, xx: Expr, cc: i32, wl: sledge_guestc::Local| {
        add(
            i32c(RX + 8),
            add(mul(add(mul(yy, local(wl)), xx), i32c(3)), i32c(cc)),
        )
    };

    let mut body = read_request(&env, RX, len);
    body.extend([
        set(w, load(Scalar::I32, i32c(RX), 0)),
        set(h, load(Scalar::I32, i32c(RX), 4)),
        // Grayscale: (r*77 + g*151 + b*28) >> 8.
        for_loop(
            y,
            i32c(0),
            lt_s(local(y), local(h)),
            1,
            vec![for_loop(
                x,
                i32c(0),
                lt_s(local(x), local(w)),
                1,
                vec![store(
                    Scalar::U8,
                    add(i32c(GRAY), add(mul(local(y), local(w)), local(x))),
                    0,
                    shr_u(
                        add(
                            add(
                                mul(px_at(local(y), local(x), 0, w), i32c(77)),
                                mul(px_at(local(y), local(x), 1, w), i32c(151)),
                            ),
                            mul(px_at(local(y), local(x), 2, w), i32c(28)),
                        ),
                        i32c(8),
                    ),
                )],
            )],
        ),
        // Sobel + binarize into EDGE (borders zero).
        for_loop(
            y,
            i32c(1),
            lt_s(local(y), sub(local(h), i32c(1))),
            1,
            vec![for_loop(
                x,
                i32c(1),
                lt_s(local(x), sub(local(w), i32c(1))),
                1,
                vec![
                    set(
                        gx,
                        sub(
                            add(
                                add(
                                    g_at(sub(local(y), i32c(1)), add(local(x), i32c(1)), w),
                                    mul(g_at(local(y), add(local(x), i32c(1)), w), i32c(2)),
                                ),
                                g_at(add(local(y), i32c(1)), add(local(x), i32c(1)), w),
                            ),
                            add(
                                add(
                                    g_at(sub(local(y), i32c(1)), sub(local(x), i32c(1)), w),
                                    mul(g_at(local(y), sub(local(x), i32c(1)), w), i32c(2)),
                                ),
                                g_at(add(local(y), i32c(1)), sub(local(x), i32c(1)), w),
                            ),
                        ),
                    ),
                    set(
                        gy,
                        sub(
                            add(
                                add(
                                    g_at(add(local(y), i32c(1)), sub(local(x), i32c(1)), w),
                                    mul(g_at(add(local(y), i32c(1)), local(x), w), i32c(2)),
                                ),
                                g_at(add(local(y), i32c(1)), add(local(x), i32c(1)), w),
                            ),
                            add(
                                add(
                                    g_at(sub(local(y), i32c(1)), sub(local(x), i32c(1)), w),
                                    mul(g_at(sub(local(y), i32c(1)), local(x), w), i32c(2)),
                                ),
                                g_at(sub(local(y), i32c(1)), add(local(x), i32c(1)), w),
                            ),
                        ),
                    ),
                    // |gx| + |gy|, with a bias toward vertical strokes (|gx|),
                    // characteristic of plate glyphs.
                    set(
                        mag,
                        add(
                            mul(
                                select(
                                    lt_s(local(gx), i32c(0)),
                                    sub(i32c(0), local(gx)),
                                    local(gx),
                                ),
                                i32c(2),
                            ),
                            select(lt_s(local(gy), i32c(0)), sub(i32c(0), local(gy)), local(gy)),
                        ),
                    ),
                    store(
                        Scalar::U8,
                        add(i32c(EDGE), add(mul(local(y), local(w)), local(x))),
                        0,
                        select(gt_s(local(mag), i32c(THRESH)), i32c(1), i32c(0)),
                    ),
                ],
            )],
        ),
        // Sliding window scan.
        set(best, i32c(-1)),
        set(bx, i32c(0)),
        set(by, i32c(0)),
        for_loop(
            y,
            i32c(1),
            lt_s(local(y), sub(local(h), i32c(WIN_H + 1))),
            STRIDE,
            vec![for_loop(
                x,
                i32c(1),
                lt_s(local(x), sub(local(w), i32c(WIN_W + 1))),
                STRIDE,
                vec![
                    set(score, i32c(0)),
                    for_loop(
                        dy,
                        i32c(0),
                        lt_s(local(dy), i32c(WIN_H)),
                        1,
                        vec![for_loop(
                            dx,
                            i32c(0),
                            lt_s(local(dx), i32c(WIN_W)),
                            1,
                            vec![set(
                                score,
                                add(
                                    local(score),
                                    load(
                                        Scalar::U8,
                                        add(
                                            i32c(EDGE),
                                            add(
                                                mul(add(local(y), local(dy)), local(w)),
                                                add(local(x), local(dx)),
                                            ),
                                        ),
                                        0,
                                    ),
                                ),
                            )],
                        )],
                    ),
                    if_(
                        gt_s(local(score), local(best)),
                        vec![
                            set(best, local(score)),
                            set(bx, local(x)),
                            set(by, local(y)),
                        ],
                    ),
                ],
            )],
        ),
        store(Scalar::I32, i32c(OUT_META), 0, local(best)),
        // Draw the box (red) into the input copy: horizontal edges...
        for_loop(
            dx,
            i32c(0),
            lt_s(local(dx), i32c(WIN_W)),
            1,
            vec![
                store(
                    Scalar::U8,
                    out_px(local(by), add(local(bx), local(dx)), 0, w),
                    0,
                    i32c(255),
                ),
                store(
                    Scalar::U8,
                    out_px(local(by), add(local(bx), local(dx)), 1, w),
                    0,
                    i32c(0),
                ),
                store(
                    Scalar::U8,
                    out_px(local(by), add(local(bx), local(dx)), 2, w),
                    0,
                    i32c(0),
                ),
                store(
                    Scalar::U8,
                    out_px(
                        add(local(by), i32c(WIN_H - 1)),
                        add(local(bx), local(dx)),
                        0,
                        w,
                    ),
                    0,
                    i32c(255),
                ),
                store(
                    Scalar::U8,
                    out_px(
                        add(local(by), i32c(WIN_H - 1)),
                        add(local(bx), local(dx)),
                        1,
                        w,
                    ),
                    0,
                    i32c(0),
                ),
                store(
                    Scalar::U8,
                    out_px(
                        add(local(by), i32c(WIN_H - 1)),
                        add(local(bx), local(dx)),
                        2,
                        w,
                    ),
                    0,
                    i32c(0),
                ),
            ],
        ),
        // ...and vertical edges.
        for_loop(
            dy,
            i32c(0),
            lt_s(local(dy), i32c(WIN_H)),
            1,
            vec![
                store(
                    Scalar::U8,
                    out_px(add(local(by), local(dy)), local(bx), 0, w),
                    0,
                    i32c(255),
                ),
                store(
                    Scalar::U8,
                    out_px(add(local(by), local(dy)), local(bx), 1, w),
                    0,
                    i32c(0),
                ),
                store(
                    Scalar::U8,
                    out_px(add(local(by), local(dy)), local(bx), 2, w),
                    0,
                    i32c(0),
                ),
                store(
                    Scalar::U8,
                    out_px(
                        add(local(by), local(dy)),
                        add(local(bx), i32c(WIN_W - 1)),
                        0,
                        w,
                    ),
                    0,
                    i32c(255),
                ),
                store(
                    Scalar::U8,
                    out_px(
                        add(local(by), local(dy)),
                        add(local(bx), i32c(WIN_W - 1)),
                        1,
                        w,
                    ),
                    0,
                    i32c(0),
                ),
                store(
                    Scalar::U8,
                    out_px(
                        add(local(by), local(dy)),
                        add(local(bx), i32c(WIN_W - 1)),
                        2,
                        w,
                    ),
                    0,
                    i32c(0),
                ),
            ],
        ),
        write_response(
            &env,
            i32c(RX),
            add(i32c(8), mul(mul(local(w), local(h)), i32c(3))),
        ),
        ret(Some(i32c(0))),
    ]);
    f.extend(body);
    let main = mb.add_func("main", f);
    mb.export_func(main, "main");
    mb.build().expect("lpd module")
}

use sledge_guestc::Expr;

// ------------------------------------------------------------------ native

/// Native reference; identical pipeline and arithmetic.
pub fn native(body: &[u8]) -> Vec<u8> {
    if body.len() < 8 {
        return Vec::new();
    }
    let w = u32::from_le_bytes(body[0..4].try_into().expect("4 bytes")) as usize;
    let h = u32::from_le_bytes(body[4..8].try_into().expect("4 bytes")) as usize;
    let mut out = body.to_vec();
    let px = |b: &[u8], y: usize, x: usize, c: usize| b[8 + (y * w + x) * 3 + c] as i32;

    let mut gray = vec![0u8; w * h];
    for y in 0..h {
        for x in 0..w {
            let v =
                (px(body, y, x, 0) * 77 + px(body, y, x, 1) * 151 + px(body, y, x, 2) * 28) >> 8;
            gray[y * w + x] = v as u8;
        }
    }
    let g = |y: usize, x: usize| gray[y * w + x] as i32;
    let mut edge = vec![0u8; w * h];
    for y in 1..h - 1 {
        for x in 1..w - 1 {
            let gx = (g(y - 1, x + 1) + 2 * g(y, x + 1) + g(y + 1, x + 1))
                - (g(y - 1, x - 1) + 2 * g(y, x - 1) + g(y + 1, x - 1));
            let gy = (g(y + 1, x - 1) + 2 * g(y + 1, x) + g(y + 1, x + 1))
                - (g(y - 1, x - 1) + 2 * g(y - 1, x) + g(y - 1, x + 1));
            let mag = 2 * gx.abs() + gy.abs();
            edge[y * w + x] = u8::from(mag > THRESH);
        }
    }
    let (mut best, mut bx, mut by) = (-1i32, 0usize, 0usize);
    let (win_w, win_h, stride) = (WIN_W as usize, WIN_H as usize, STRIDE as usize);
    let mut y = 1;
    while y < h.saturating_sub(win_h + 1) {
        let mut x = 1;
        while x < w.saturating_sub(win_w + 1) {
            let mut score = 0i32;
            for dy in 0..win_h {
                for dx in 0..win_w {
                    score += edge[(y + dy) * w + x + dx] as i32;
                }
            }
            if score > best {
                best = score;
                bx = x;
                by = y;
            }
            x += stride;
        }
        y += stride;
    }
    // Draw the box.
    let mut set_px = |y: usize, x: usize, rgb: [u8; 3]| {
        let o = 8 + (y * w + x) * 3;
        out[o..o + 3].copy_from_slice(&rgb);
    };
    for dx in 0..win_w {
        set_px(by, bx + dx, [255, 0, 0]);
        set_px(by + win_h - 1, bx + dx, [255, 0, 0]);
    }
    for dy in 0..win_h {
        set_px(by + dy, bx, [255, 0, 0]);
        set_px(by + dy, bx + win_w - 1, [255, 0, 0]);
    }
    out
}

/// Where the native detector put the box (for tests).
pub fn detect_native(body: &[u8]) -> (usize, usize) {
    let out = native(body);
    let w = u32::from_le_bytes(body[0..4].try_into().expect("4 bytes")) as usize;
    let h = u32::from_le_bytes(body[4..8].try_into().expect("4 bytes")) as usize;
    for y in 0..h {
        for x in 0..w {
            let o = 8 + (y * w + x) * 3;
            if out[o] == 255 && out[o + 1] == 0 && out[o + 2] == 0 {
                return (x, y);
            }
        }
    }
    (0, 0)
}

/// Deterministic synthetic road scene with a license plate: a dark car body
/// with a bright plate region containing vertical glyph strokes at
/// `(plate_x, plate_y)`.
pub fn synth_scene(w: usize, h: usize, plate_x: usize, plate_y: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + w * h * 3);
    out.extend_from_slice(&(w as u32).to_le_bytes());
    out.extend_from_slice(&(h as u32).to_le_bytes());
    for y in 0..h {
        for x in 0..w {
            // Background: smooth gradient (low edge energy).
            let mut rgb = [(40 + y / 3) as u8, (45 + y / 3) as u8, (50 + x / 7) as u8];
            let in_plate = x >= plate_x
                && x < plate_x + WIN_W as usize - 4
                && y >= plate_y
                && y < plate_y + WIN_H as usize - 2;
            if in_plate {
                // White plate with black vertical strokes every 4 px.
                let stroke = (x - plate_x) % 4 < 1;
                let v = if stroke { 10 } else { 240 };
                rgb = [v, v, v];
            }
            out.extend_from_slice(&rgb);
        }
    }
    out
}

/// A representative input: 160x120 scene (≈ 57.6 KB RGB, the class of the
/// paper's 96.6 KB JPEG) with the plate at (92, 70).
pub fn sample_input() -> Vec<u8> {
    synth_scene(160, 120, 92, 70)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{run_guest, run_guest_all_configs};

    #[test]
    fn native_finds_the_plate() {
        let img = synth_scene(160, 120, 92, 70);
        let (x, y) = detect_native(&img);
        assert!((x as i32 - 92).abs() <= STRIDE + 2, "x = {x}");
        assert!((y as i32 - 70).abs() <= STRIDE + 2, "y = {y}");
    }

    #[test]
    fn native_tracks_plate_position() {
        for (px, py) in [(20, 16), (60, 40), (100, 90)] {
            let img = synth_scene(160, 120, px, py);
            let (x, y) = detect_native(&img);
            assert!(
                (x as i32 - px as i32).abs() <= STRIDE + 2,
                "{px},{py} → {x},{y}"
            );
            assert!(
                (y as i32 - py as i32).abs() <= STRIDE + 2,
                "{px},{py} → {x},{y}"
            );
        }
    }

    #[test]
    fn guest_matches_native() {
        let m = module();
        let img = synth_scene(96, 64, 30, 24);
        let got = run_guest(&m, &img);
        assert_eq!(got, native(&img));
    }

    #[test]
    fn all_configs_agree_small() {
        let m = module();
        let img = synth_scene(80, 60, 20, 20);
        let out = run_guest_all_configs(&m, &img);
        assert_eq!(out, native(&img));
    }
}
