//! Sledge: a serverless-first, lightweight Wasm runtime for the Edge — a
//! from-scratch Rust reproduction of the Middleware '20 paper.
//!
//! This umbrella crate re-exports the full stack:
//!
//! * [`wasm`] — WebAssembly 1.0 binary format: encoder, decoder, validator.
//! * [`guestc`] — the guest-language DSL that compiles to Wasm (the "C →
//!   Wasm" stage tenants would run).
//! * [`engine`] — the aWsm ahead-of-time translation + execution engine
//!   with configurable bounds checks and preemptible sandboxes.
//! * [`runtime`] — the Sledge serverless runtime: listener core,
//!   work-stealing load balancing, preemptive round-robin worker scheduling,
//!   HTTP front end.
//! * [`apps`] — the paper's evaluated applications and the PolyBench suite,
//!   each in both guest and native form.
//! * [`baseline`] — the Nuclio-style process-per-invocation comparison
//!   system.
//! * [`deque`] / [`http`] — the work-stealing and HTTP substrates.
//!
//! See `examples/` for runnable entry points and DESIGN.md / EXPERIMENTS.md
//! for the reproduction methodology.
//!
//! # Examples
//!
//! ```
//! use sledge::runtime::{Runtime, RuntimeConfig, FunctionConfig, Outcome};
//!
//! let rt = Runtime::new(RuntimeConfig { workers: 2, ..Default::default() });
//! let id = rt.register_module(
//!     FunctionConfig::new("ping"),
//!     &sledge::apps::ping::module(),
//! )?;
//! let done = rt.invoke(id, Vec::new()).wait().unwrap();
//! assert!(matches!(done.outcome, Outcome::Success(_)));
//! rt.shutdown();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub use awsm as engine;
pub use sledge_apps as apps;
pub use sledge_baseline as baseline;
pub use sledge_core as runtime;
pub use sledge_deque as deque;
pub use sledge_guestc as guestc;
pub use sledge_http as http;
pub use sledge_wasm as wasm;
